#!/usr/bin/env bash
# Deprecation gate for the sweep entry point.
#
# `run_sweep` is a deprecated thin wrapper over `run_sweep_on`; every
# consumer routes through an explicit executor now, and this check keeps
# it that way: any new `run_sweep(` call site in crates/ or tests/ fails
# CI. The one legitimate caller — the determinism test pinning the
# wrapper's equivalence to `run_sweep_on` — opts out with a
# `deprecation-ok` comment on the call line or the line directly above.
#
# Run from anywhere: `tools/deprecation-check.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS=: read -r file line text; do
  case "$text" in
    *"fn run_sweep("*) continue ;;   # the wrapper's own definition
    *deprecation-ok*) continue ;;    # same-line opt-out
  esac
  prev=""
  if [ "$line" -gt 1 ]; then
    prev=$(sed -n "$((line - 1))p" "$file")
  fi
  case "$prev" in
    *deprecation-ok*) continue ;;    # opt-out on the line above
  esac
  echo "DEPRECATED CALL  $file:$line:$text" >&2
  echo "  migrate to run_sweep_on(&executor, ...), or mark the site 'deprecation-ok'" >&2
  fail=1
done < <(grep -rn "run_sweep(" crates tests --include='*.rs' || true)

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "deprecation-check: no unmigrated run_sweep( call sites"
