#!/usr/bin/env bash
# Repo-internal markdown link check over README.md and docs/.
#
# Verifies that every relative link target exists, and that every
# `file.md#anchor` fragment matches a real heading in the target file
# (GitHub slug rules: lowercase, punctuation dropped, spaces to
# hyphens). External http(s)/mailto links are not fetched — this guards
# the repo's own link graph, nothing more.
#
# Run from anywhere: `tools/linkcheck.sh`. Exits non-zero on the first
# pass if any link is broken, listing every failure.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

slug() {
  printf '%s' "$1" |
    tr '[:upper:]' '[:lower:]' |
    sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

# Headings of a markdown file as GitHub anchor slugs, code fences
# stripped so console/rust snippets cannot fake a heading.
anchors_of() {
  awk '/^```/ { fence = !fence; next } !fence' "$1" |
    sed -n 's/^#\{1,6\} \(.*\)$/\1/p' |
    while IFS= read -r heading; do
      slug "$heading"
      echo
    done
}

check_anchor() { # file slug context
  # No `grep -q`: its early exit would SIGPIPE `anchors_of` and, under
  # pipefail, make every *found* anchor look broken.
  if [ -z "$(anchors_of "$1" | grep -Fx "$2" || true)" ]; then
    echo "BROKEN ANCHOR  $3 -> $1#$2" >&2
    fail=1
  fi
}

for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  # Every `](target)` in the file, code fences stripped, one per line.
  targets=$(awk '/^```/ { fence = !fence; next } !fence' "$doc" |
    grep -oE '\]\([^)]+\)' | sed -e 's/^](//' -e 's/)$//' || true)
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
    http://* | https://* | mailto:*) continue ;;
    "#"*)
      check_anchor "$doc" "${target#\#}" "$doc"
      continue
      ;;
    esac
    path=${target%%#*}
    resolved="$dir/$path"
    if [ ! -e "$resolved" ]; then
      echo "BROKEN LINK    $doc -> $target ($resolved missing)" >&2
      fail=1
      continue
    fi
    case "$target" in
    *#*) check_anchor "$resolved" "${target#*#}" "$doc" ;;
    esac
  done <<EOF
$targets
EOF
done

if [ "$fail" -ne 0 ]; then
  echo "linkcheck: broken links found" >&2
  exit 1
fi
echo "linkcheck: all relative links and anchors resolve"
