//! # mcm — multi-channel memories for video recording
//!
//! A complete, from-scratch reproduction of *"A case for multi-channel
//! memories in video recording"* (E. Aho, J. Nikara, P. A. Tuominen,
//! K. Kuusilinna — DATE 2009, Nokia Research Center): a transaction-level
//! simulator for multi-channel mobile DDR SDRAM subsystems driven by the
//! paper's HD video-recording load model.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | discrete-event kernel, time/clock arithmetic, statistics |
//! | [`dram`] | the next-generation mobile DDR SDRAM device model |
//! | [`ctrl`] | the per-channel memory controller |
//! | [`channel`] | Table II interleaving, the M-channel subsystem, clusters |
//! | [`fault`] | seed-driven fault injection and graceful degradation |
//! | [`load`] | the Fig. 1 / Table I video-recording load model |
//! | [`power`] | equation (1) interface power, XDR comparison |
//! | [`verify`] | conformance checks and lints (`mcm check`, `MCMxxx` rules) |
//! | [`analyze`] | static feasibility analysis (`mcm lint`, `MCM4xx` rules) |
//! | [`obs`] | observability: counters, histograms, timelines, trace export |
//! | [`core`] | experiments, figures, analyses |
//! | [`sweep`] | parallel design-space sweeps with a disk result cache |
//!
//! # Quickstart
//!
//! ```
//! use mcm::prelude::*;
//!
//! // The paper's headline configuration: full-HD 1080p30 recording on a
//! // 4-channel, 400 MHz multi-channel memory.
//! let exp = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
//! // Doctest-sized prefix; drop the op limit for full runs.
//! let outcome = exp
//!     .run_with(&RunOptions::default().with_op_limit(20_000))
//!     .unwrap();
//! assert!(outcome.frame().unwrap().verdict.is_real_time());
//! ```

#![warn(missing_docs)]

// The run/sweep API surface, re-exported at the root so downstream code
// can write `mcm::RunOptions` without spelling out the member crate.
pub use mcm_core::{
    CoreError, ExecutionPolicy, Experiment, ExperimentBuilder, FrameResult, Parallelism,
    RunOptions, RunOutcome,
};
#[allow(deprecated)]
pub use mcm_sweep::run_sweep;
pub use mcm_sweep::{run_sweep_on, RayonExecutor, SweepOptions, SweepResult, SweepSpec};

pub use mcm_analyze as analyze;
pub use mcm_channel as channel;
pub use mcm_core as core;
pub use mcm_ctrl as ctrl;
pub use mcm_dram as dram;
pub use mcm_fault as fault;
pub use mcm_load as load;
pub use mcm_obs as obs;
pub use mcm_power as power;
pub use mcm_sim as sim;
pub use mcm_sweep as sweep;
pub use mcm_verify as verify;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use mcm_analyze::{analyze_experiment, AnalysisVerdict};
    pub use mcm_channel::{
        ClusteredMemory, InterleaveMap, MasterTransaction, MemoryConfig, MemorySubsystem,
    };
    pub use mcm_core::{
        ChunkPolicy, CoreError, ExecutionPolicy, Experiment, ExperimentBuilder, FrameResult,
        Pacing, Parallelism, RealTimeVerdict, RunOptions, RunOutcome,
    };
    pub use mcm_ctrl::{
        AccessOp, ChannelRequest, Controller, ControllerConfig, PagePolicy, PowerDownPolicy,
    };
    pub use mcm_dram::{
        AddressMapping, BankCluster, ClusterConfig, DramCommand, Geometry, IddValues, TimingParams,
    };
    pub use mcm_fault::{DegradePolicy, DegradeSummary, FaultPlan, FaultSpec};
    pub use mcm_load::{
        CodecProfile, FrameFormat, FrameLayout, FrameTraffic, H264Level, HdOperatingPoint,
        LayoutOptions, LoadModel, PixelFormat, RefFrames, Stage, StochasticParams, UseCase,
        UseCaseMode, Workload,
    };
    pub use mcm_obs::{NullRecorder, ObsConfig, ObsReport, ObsSummary, Recorder, StatsRecorder};
    pub use mcm_power::{BondingTechnique, InterfacePowerModel, PowerSummary, XdrReference};
    pub use mcm_sim::{ClockDomain, Frequency, QueueKind, SimTime};
    #[allow(deprecated)]
    pub use mcm_sweep::run_sweep;
    pub use mcm_sweep::{
        run_sweep_on, ParallelRunner, PointOutcome, RayonExecutor, SweepOptions, SweepResult,
        SweepSpec,
    };
    pub use mcm_verify::{Diagnostic, Report, Severity, TraceAuditOptions};
}
