/root/repo/target/release/deps/mcm-1eb26791807de730.d: crates/cli/src/main.rs

/root/repo/target/release/deps/mcm-1eb26791807de730: crates/cli/src/main.rs

crates/cli/src/main.rs:
