/root/repo/target/release/deps/mcm_power-15f7aae537c14c1c.d: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

/root/repo/target/release/deps/libmcm_power-15f7aae537c14c1c.rlib: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

/root/repo/target/release/deps/libmcm_power-15f7aae537c14c1c.rmeta: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

crates/power/src/lib.rs:
crates/power/src/interface.rs:
crates/power/src/report.rs:
crates/power/src/xdr.rs:
