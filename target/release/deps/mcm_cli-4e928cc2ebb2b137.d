/root/repo/target/release/deps/mcm_cli-4e928cc2ebb2b137.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmcm_cli-4e928cc2ebb2b137.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmcm_cli-4e928cc2ebb2b137.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
