/root/repo/target/release/deps/mcm-34d4a9f9f8e99674.d: src/lib.rs

/root/repo/target/release/deps/libmcm-34d4a9f9f8e99674.rlib: src/lib.rs

/root/repo/target/release/deps/libmcm-34d4a9f9f8e99674.rmeta: src/lib.rs

src/lib.rs:
