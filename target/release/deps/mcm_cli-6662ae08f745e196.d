/root/repo/target/release/deps/mcm_cli-6662ae08f745e196.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmcm_cli-6662ae08f745e196.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmcm_cli-6662ae08f745e196.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
