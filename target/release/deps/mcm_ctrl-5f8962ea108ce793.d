/root/repo/target/release/deps/mcm_ctrl-5f8962ea108ce793.d: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

/root/repo/target/release/deps/libmcm_ctrl-5f8962ea108ce793.rlib: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

/root/repo/target/release/deps/libmcm_ctrl-5f8962ea108ce793.rmeta: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/config.rs:
crates/ctrl/src/controller.rs:
crates/ctrl/src/error.rs:
crates/ctrl/src/request.rs:
