/root/repo/target/release/deps/mcm-f830c3df057c1b15.d: src/lib.rs

/root/repo/target/release/deps/libmcm-f830c3df057c1b15.rlib: src/lib.rs

/root/repo/target/release/deps/libmcm-f830c3df057c1b15.rmeta: src/lib.rs

src/lib.rs:
