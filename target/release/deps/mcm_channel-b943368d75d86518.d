/root/repo/target/release/deps/mcm_channel-b943368d75d86518.d: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

/root/repo/target/release/deps/libmcm_channel-b943368d75d86518.rlib: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

/root/repo/target/release/deps/libmcm_channel-b943368d75d86518.rmeta: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

crates/channel/src/lib.rs:
crates/channel/src/cluster.rs:
crates/channel/src/error.rs:
crates/channel/src/interleave.rs:
crates/channel/src/subsystem.rs:
