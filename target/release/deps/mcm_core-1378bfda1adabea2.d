/root/repo/target/release/deps/mcm_core-1378bfda1adabea2.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

/root/repo/target/release/deps/libmcm_core-1378bfda1adabea2.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

/root/repo/target/release/deps/libmcm_core-1378bfda1adabea2.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/builder.rs:
crates/core/src/charts.rs:
crates/core/src/error.rs:
crates/core/src/eventsim.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/profile.rs:
crates/core/src/runner.rs:
crates/core/src/steady.rs:
crates/core/src/tracerun.rs:
