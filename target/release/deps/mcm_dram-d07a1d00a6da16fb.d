/root/repo/target/release/deps/mcm_dram-d07a1d00a6da16fb.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

/root/repo/target/release/deps/libmcm_dram-d07a1d00a6da16fb.rlib: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

/root/repo/target/release/deps/libmcm_dram-d07a1d00a6da16fb.rmeta: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/datasheet.rs:
crates/dram/src/device.rs:
crates/dram/src/error.rs:
crates/dram/src/params.rs:
crates/dram/src/power.rs:
crates/dram/src/timeline.rs:
crates/dram/src/validate.rs:
