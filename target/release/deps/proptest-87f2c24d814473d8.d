/root/repo/target/release/deps/proptest-87f2c24d814473d8.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-87f2c24d814473d8.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-87f2c24d814473d8.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
