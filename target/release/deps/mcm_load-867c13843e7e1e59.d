/root/repo/target/release/deps/mcm_load-867c13843e7e1e59.d: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

/root/repo/target/release/deps/libmcm_load-867c13843e7e1e59.rlib: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

/root/repo/target/release/deps/libmcm_load-867c13843e7e1e59.rmeta: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

crates/load/src/lib.rs:
crates/load/src/buffers.rs:
crates/load/src/error.rs:
crates/load/src/formats.rs:
crates/load/src/levels.rs:
crates/load/src/stages.rs:
crates/load/src/tracefile.rs:
crates/load/src/traffic.rs:
crates/load/src/usecase.rs:
