/root/repo/target/release/deps/mcm-44237933b2c6cd35.d: crates/cli/src/main.rs

/root/repo/target/release/deps/mcm-44237933b2c6cd35: crates/cli/src/main.rs

crates/cli/src/main.rs:
