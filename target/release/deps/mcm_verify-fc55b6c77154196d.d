/root/repo/target/release/deps/mcm_verify-fc55b6c77154196d.d: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

/root/repo/target/release/deps/libmcm_verify-fc55b6c77154196d.rlib: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

/root/repo/target/release/deps/libmcm_verify-fc55b6c77154196d.rmeta: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

crates/verify/src/lib.rs:
crates/verify/src/channels.rs:
crates/verify/src/config.rs:
crates/verify/src/diag.rs:
crates/verify/src/trace.rs:
