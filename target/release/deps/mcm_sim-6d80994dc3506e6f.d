/root/repo/target/release/deps/mcm_sim-6d80994dc3506e6f.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmcm_sim-6d80994dc3506e6f.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmcm_sim-6d80994dc3506e6f.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
