/root/repo/target/release/deps/serde_json-c71d01bb1f67f6cf.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c71d01bb1f67f6cf.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c71d01bb1f67f6cf.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
