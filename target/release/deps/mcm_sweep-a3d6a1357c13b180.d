/root/repo/target/release/deps/mcm_sweep-a3d6a1357c13b180.d: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/libmcm_sweep-a3d6a1357c13b180.rlib: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/libmcm_sweep-a3d6a1357c13b180.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cache.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/error.rs:
crates/sweep/src/spec.rs:
