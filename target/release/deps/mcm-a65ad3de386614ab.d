/root/repo/target/release/deps/mcm-a65ad3de386614ab.d: src/lib.rs

/root/repo/target/release/deps/libmcm-a65ad3de386614ab.rlib: src/lib.rs

/root/repo/target/release/deps/libmcm-a65ad3de386614ab.rmeta: src/lib.rs

src/lib.rs:
