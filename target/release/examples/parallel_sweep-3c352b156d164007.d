/root/repo/target/release/examples/parallel_sweep-3c352b156d164007.d: examples/parallel_sweep.rs

/root/repo/target/release/examples/parallel_sweep-3c352b156d164007: examples/parallel_sweep.rs

examples/parallel_sweep.rs:
