/root/repo/target/debug/examples/event_driven-f92a1fd318902c0b.d: examples/event_driven.rs

/root/repo/target/debug/examples/event_driven-f92a1fd318902c0b: examples/event_driven.rs

examples/event_driven.rs:
