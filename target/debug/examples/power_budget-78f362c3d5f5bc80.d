/root/repo/target/debug/examples/power_budget-78f362c3d5f5bc80.d: examples/power_budget.rs Cargo.toml

/root/repo/target/debug/examples/libpower_budget-78f362c3d5f5bc80.rmeta: examples/power_budget.rs Cargo.toml

examples/power_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
