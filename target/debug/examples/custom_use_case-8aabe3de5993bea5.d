/root/repo/target/debug/examples/custom_use_case-8aabe3de5993bea5.d: examples/custom_use_case.rs

/root/repo/target/debug/examples/custom_use_case-8aabe3de5993bea5: examples/custom_use_case.rs

examples/custom_use_case.rs:
