/root/repo/target/debug/examples/quickstart-41ebe834b97ed390.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-41ebe834b97ed390: examples/quickstart.rs

examples/quickstart.rs:
