/root/repo/target/debug/examples/event_driven-fc514f14b2a3d787.d: examples/event_driven.rs

/root/repo/target/debug/examples/event_driven-fc514f14b2a3d787: examples/event_driven.rs

examples/event_driven.rs:
