/root/repo/target/debug/examples/parallel_sweep-2e171bbf6c7cdbf7.d: examples/parallel_sweep.rs

/root/repo/target/debug/examples/parallel_sweep-2e171bbf6c7cdbf7: examples/parallel_sweep.rs

examples/parallel_sweep.rs:
