/root/repo/target/debug/examples/custom_use_case-37a1f29b3d917eb0.d: examples/custom_use_case.rs

/root/repo/target/debug/examples/custom_use_case-37a1f29b3d917eb0: examples/custom_use_case.rs

examples/custom_use_case.rs:
