/root/repo/target/debug/examples/channel_clusters-6dd19a75f9bf5019.d: examples/channel_clusters.rs Cargo.toml

/root/repo/target/debug/examples/libchannel_clusters-6dd19a75f9bf5019.rmeta: examples/channel_clusters.rs Cargo.toml

examples/channel_clusters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
