/root/repo/target/debug/examples/event_driven-08f7e512f1e62713.d: examples/event_driven.rs

/root/repo/target/debug/examples/event_driven-08f7e512f1e62713: examples/event_driven.rs

examples/event_driven.rs:
