/root/repo/target/debug/examples/quickstart-cf8961d6fb0066f1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cf8961d6fb0066f1: examples/quickstart.rs

examples/quickstart.rs:
