/root/repo/target/debug/examples/parallel_sweep-d4f2d79e65c59a67.d: examples/parallel_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_sweep-d4f2d79e65c59a67.rmeta: examples/parallel_sweep.rs Cargo.toml

examples/parallel_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
