/root/repo/target/debug/examples/power_budget-5b0a7ac4c35616b0.d: examples/power_budget.rs

/root/repo/target/debug/examples/power_budget-5b0a7ac4c35616b0: examples/power_budget.rs

examples/power_budget.rs:
