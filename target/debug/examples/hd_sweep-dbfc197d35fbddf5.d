/root/repo/target/debug/examples/hd_sweep-dbfc197d35fbddf5.d: examples/hd_sweep.rs

/root/repo/target/debug/examples/hd_sweep-dbfc197d35fbddf5: examples/hd_sweep.rs

examples/hd_sweep.rs:
