/root/repo/target/debug/examples/quickstart-0afd8676e8208b9d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0afd8676e8208b9d: examples/quickstart.rs

examples/quickstart.rs:
