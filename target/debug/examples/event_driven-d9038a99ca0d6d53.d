/root/repo/target/debug/examples/event_driven-d9038a99ca0d6d53.d: examples/event_driven.rs Cargo.toml

/root/repo/target/debug/examples/libevent_driven-d9038a99ca0d6d53.rmeta: examples/event_driven.rs Cargo.toml

examples/event_driven.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
