/root/repo/target/debug/examples/quickstart-d685e0810b0874ef.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d685e0810b0874ef.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
