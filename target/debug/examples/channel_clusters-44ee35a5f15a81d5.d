/root/repo/target/debug/examples/channel_clusters-44ee35a5f15a81d5.d: examples/channel_clusters.rs

/root/repo/target/debug/examples/channel_clusters-44ee35a5f15a81d5: examples/channel_clusters.rs

examples/channel_clusters.rs:
