/root/repo/target/debug/examples/custom_use_case-f2faae0a9512c6fe.d: examples/custom_use_case.rs

/root/repo/target/debug/examples/custom_use_case-f2faae0a9512c6fe: examples/custom_use_case.rs

examples/custom_use_case.rs:
