/root/repo/target/debug/examples/channel_clusters-b6dd1fdd4929680c.d: examples/channel_clusters.rs Cargo.toml

/root/repo/target/debug/examples/libchannel_clusters-b6dd1fdd4929680c.rmeta: examples/channel_clusters.rs Cargo.toml

examples/channel_clusters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
