/root/repo/target/debug/examples/custom_use_case-82295264efc739d7.d: examples/custom_use_case.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_use_case-82295264efc739d7.rmeta: examples/custom_use_case.rs Cargo.toml

examples/custom_use_case.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
