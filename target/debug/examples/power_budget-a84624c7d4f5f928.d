/root/repo/target/debug/examples/power_budget-a84624c7d4f5f928.d: examples/power_budget.rs

/root/repo/target/debug/examples/power_budget-a84624c7d4f5f928: examples/power_budget.rs

examples/power_budget.rs:
