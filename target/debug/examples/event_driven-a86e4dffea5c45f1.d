/root/repo/target/debug/examples/event_driven-a86e4dffea5c45f1.d: examples/event_driven.rs Cargo.toml

/root/repo/target/debug/examples/libevent_driven-a86e4dffea5c45f1.rmeta: examples/event_driven.rs Cargo.toml

examples/event_driven.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
