/root/repo/target/debug/examples/dbg_sweep-32920f54c6f6fef4.d: crates/sweep/examples/dbg_sweep.rs

/root/repo/target/debug/examples/dbg_sweep-32920f54c6f6fef4: crates/sweep/examples/dbg_sweep.rs

crates/sweep/examples/dbg_sweep.rs:
