/root/repo/target/debug/examples/hd_sweep-1bf70bcc3fdebf53.d: examples/hd_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libhd_sweep-1bf70bcc3fdebf53.rmeta: examples/hd_sweep.rs Cargo.toml

examples/hd_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
