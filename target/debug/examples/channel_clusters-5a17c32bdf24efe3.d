/root/repo/target/debug/examples/channel_clusters-5a17c32bdf24efe3.d: examples/channel_clusters.rs

/root/repo/target/debug/examples/channel_clusters-5a17c32bdf24efe3: examples/channel_clusters.rs

examples/channel_clusters.rs:
