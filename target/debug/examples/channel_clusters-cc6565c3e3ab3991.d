/root/repo/target/debug/examples/channel_clusters-cc6565c3e3ab3991.d: examples/channel_clusters.rs

/root/repo/target/debug/examples/channel_clusters-cc6565c3e3ab3991: examples/channel_clusters.rs

examples/channel_clusters.rs:
