/root/repo/target/debug/examples/custom_use_case-70808e55e7cab01e.d: examples/custom_use_case.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_use_case-70808e55e7cab01e.rmeta: examples/custom_use_case.rs Cargo.toml

examples/custom_use_case.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
