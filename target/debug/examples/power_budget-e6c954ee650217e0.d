/root/repo/target/debug/examples/power_budget-e6c954ee650217e0.d: examples/power_budget.rs

/root/repo/target/debug/examples/power_budget-e6c954ee650217e0: examples/power_budget.rs

examples/power_budget.rs:
