/root/repo/target/debug/examples/hd_sweep-d24f73059b40ead9.d: examples/hd_sweep.rs

/root/repo/target/debug/examples/hd_sweep-d24f73059b40ead9: examples/hd_sweep.rs

examples/hd_sweep.rs:
