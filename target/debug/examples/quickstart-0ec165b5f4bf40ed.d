/root/repo/target/debug/examples/quickstart-0ec165b5f4bf40ed.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0ec165b5f4bf40ed.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
