/root/repo/target/debug/deps/ext_stacking-eccfb2285d4ffc48.d: crates/bench/src/bin/ext_stacking.rs Cargo.toml

/root/repo/target/debug/deps/libext_stacking-eccfb2285d4ffc48.rmeta: crates/bench/src/bin/ext_stacking.rs Cargo.toml

crates/bench/src/bin/ext_stacking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
