/root/repo/target/debug/deps/ext_interference-4e67da412bb4f4a1.d: crates/bench/src/bin/ext_interference.rs

/root/repo/target/debug/deps/ext_interference-4e67da412bb4f4a1: crates/bench/src/bin/ext_interference.rs

crates/bench/src/bin/ext_interference.rs:
