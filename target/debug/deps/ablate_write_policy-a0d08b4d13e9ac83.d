/root/repo/target/debug/deps/ablate_write_policy-a0d08b4d13e9ac83.d: crates/bench/src/bin/ablate_write_policy.rs

/root/repo/target/debug/deps/ablate_write_policy-a0d08b4d13e9ac83: crates/bench/src/bin/ablate_write_policy.rs

crates/bench/src/bin/ablate_write_policy.rs:
