/root/repo/target/debug/deps/mcm_sim-2d392875fe6da4da.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/mcm_sim-2d392875fe6da4da: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
