/root/repo/target/debug/deps/mcm-8bbf905151a953e3.d: src/lib.rs

/root/repo/target/debug/deps/mcm-8bbf905151a953e3: src/lib.rs

src/lib.rs:
