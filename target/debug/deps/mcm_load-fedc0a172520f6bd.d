/root/repo/target/debug/deps/mcm_load-fedc0a172520f6bd.d: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

/root/repo/target/debug/deps/mcm_load-fedc0a172520f6bd: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

crates/load/src/lib.rs:
crates/load/src/buffers.rs:
crates/load/src/error.rs:
crates/load/src/formats.rs:
crates/load/src/levels.rs:
crates/load/src/stages.rs:
crates/load/src/tracefile.rs:
crates/load/src/traffic.rs:
crates/load/src/usecase.rs:
