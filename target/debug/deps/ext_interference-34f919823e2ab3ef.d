/root/repo/target/debug/deps/ext_interference-34f919823e2ab3ef.d: crates/bench/src/bin/ext_interference.rs Cargo.toml

/root/repo/target/debug/deps/libext_interference-34f919823e2ab3ef.rmeta: crates/bench/src/bin/ext_interference.rs Cargo.toml

crates/bench/src/bin/ext_interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
