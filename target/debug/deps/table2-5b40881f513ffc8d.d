/root/repo/target/debug/deps/table2-5b40881f513ffc8d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-5b40881f513ffc8d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
