/root/repo/target/debug/deps/fig4-4ffcc45f3837f6e8.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4ffcc45f3837f6e8: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
