/root/repo/target/debug/deps/table1-77fae34e37921f9f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-77fae34e37921f9f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
