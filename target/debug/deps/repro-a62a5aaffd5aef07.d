/root/repo/target/debug/deps/repro-a62a5aaffd5aef07.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a62a5aaffd5aef07: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
