/root/repo/target/debug/deps/xdr-d516f316f50d8d86.d: crates/bench/src/bin/xdr.rs Cargo.toml

/root/repo/target/debug/deps/libxdr-d516f316f50d8d86.rmeta: crates/bench/src/bin/xdr.rs Cargo.toml

crates/bench/src/bin/xdr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
