/root/repo/target/debug/deps/mcm_dram-e6c9ba87ea8fb79f.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

/root/repo/target/debug/deps/libmcm_dram-e6c9ba87ea8fb79f.rlib: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

/root/repo/target/debug/deps/libmcm_dram-e6c9ba87ea8fb79f.rmeta: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/datasheet.rs:
crates/dram/src/device.rs:
crates/dram/src/error.rs:
crates/dram/src/params.rs:
crates/dram/src/power.rs:
crates/dram/src/timeline.rs:
crates/dram/src/validate.rs:
