/root/repo/target/debug/deps/power_breakdown-9a186aa396ffea5e.d: crates/bench/src/bin/power_breakdown.rs

/root/repo/target/debug/deps/power_breakdown-9a186aa396ffea5e: crates/bench/src/bin/power_breakdown.rs

crates/bench/src/bin/power_breakdown.rs:
