/root/repo/target/debug/deps/xdr-52abee096bdf21ff.d: crates/bench/src/bin/xdr.rs Cargo.toml

/root/repo/target/debug/deps/libxdr-52abee096bdf21ff.rmeta: crates/bench/src/bin/xdr.rs Cargo.toml

crates/bench/src/bin/xdr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
