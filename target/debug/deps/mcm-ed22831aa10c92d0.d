/root/repo/target/debug/deps/mcm-ed22831aa10c92d0.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmcm-ed22831aa10c92d0.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
