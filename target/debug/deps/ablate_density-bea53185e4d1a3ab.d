/root/repo/target/debug/deps/ablate_density-bea53185e4d1a3ab.d: crates/bench/src/bin/ablate_density.rs

/root/repo/target/debug/deps/ablate_density-bea53185e4d1a3ab: crates/bench/src/bin/ablate_density.rs

crates/bench/src/bin/ablate_density.rs:
