/root/repo/target/debug/deps/ablate_chunk-206f165b4853909d.d: crates/bench/src/bin/ablate_chunk.rs

/root/repo/target/debug/deps/ablate_chunk-206f165b4853909d: crates/bench/src/bin/ablate_chunk.rs

crates/bench/src/bin/ablate_chunk.rs:
