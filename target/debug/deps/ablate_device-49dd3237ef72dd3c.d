/root/repo/target/debug/deps/ablate_device-49dd3237ef72dd3c.d: crates/bench/src/bin/ablate_device.rs Cargo.toml

/root/repo/target/debug/deps/libablate_device-49dd3237ef72dd3c.rmeta: crates/bench/src/bin/ablate_device.rs Cargo.toml

crates/bench/src/bin/ablate_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
