/root/repo/target/debug/deps/repro-2acbad7ee34e1d62.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-2acbad7ee34e1d62: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
