/root/repo/target/debug/deps/table2-fd717d3273d9fef7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-fd717d3273d9fef7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
