/root/repo/target/debug/deps/mcm_cli-0bb5b02c166ad899.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmcm_cli-0bb5b02c166ad899.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmcm_cli-0bb5b02c166ad899.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
