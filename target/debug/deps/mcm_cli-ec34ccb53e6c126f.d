/root/repo/target/debug/deps/mcm_cli-ec34ccb53e6c126f.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mcm_cli-ec34ccb53e6c126f: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
