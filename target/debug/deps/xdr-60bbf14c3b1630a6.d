/root/repo/target/debug/deps/xdr-60bbf14c3b1630a6.d: crates/bench/src/bin/xdr.rs

/root/repo/target/debug/deps/xdr-60bbf14c3b1630a6: crates/bench/src/bin/xdr.rs

crates/bench/src/bin/xdr.rs:
