/root/repo/target/debug/deps/fig4-77666880fe20f024.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-77666880fe20f024: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
