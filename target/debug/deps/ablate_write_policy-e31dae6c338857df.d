/root/repo/target/debug/deps/ablate_write_policy-e31dae6c338857df.d: crates/bench/src/bin/ablate_write_policy.rs

/root/repo/target/debug/deps/ablate_write_policy-e31dae6c338857df: crates/bench/src/bin/ablate_write_policy.rs

crates/bench/src/bin/ablate_write_policy.rs:
