/root/repo/target/debug/deps/table2-e2afcae932fb0037.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-e2afcae932fb0037: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
