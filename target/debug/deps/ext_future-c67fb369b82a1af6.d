/root/repo/target/debug/deps/ext_future-c67fb369b82a1af6.d: crates/bench/src/bin/ext_future.rs

/root/repo/target/debug/deps/ext_future-c67fb369b82a1af6: crates/bench/src/bin/ext_future.rs

crates/bench/src/bin/ext_future.rs:
