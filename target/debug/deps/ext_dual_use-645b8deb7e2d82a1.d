/root/repo/target/debug/deps/ext_dual_use-645b8deb7e2d82a1.d: crates/bench/src/bin/ext_dual_use.rs

/root/repo/target/debug/deps/ext_dual_use-645b8deb7e2d82a1: crates/bench/src/bin/ext_dual_use.rs

crates/bench/src/bin/ext_dual_use.rs:
