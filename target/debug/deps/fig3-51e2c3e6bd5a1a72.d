/root/repo/target/debug/deps/fig3-51e2c3e6bd5a1a72.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-51e2c3e6bd5a1a72: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
