/root/repo/target/debug/deps/mcm_load-f83b8fa4860a0dd8.d: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

/root/repo/target/debug/deps/libmcm_load-f83b8fa4860a0dd8.rlib: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

/root/repo/target/debug/deps/libmcm_load-f83b8fa4860a0dd8.rmeta: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs

crates/load/src/lib.rs:
crates/load/src/buffers.rs:
crates/load/src/error.rs:
crates/load/src/formats.rs:
crates/load/src/levels.rs:
crates/load/src/stages.rs:
crates/load/src/tracefile.rs:
crates/load/src/traffic.rs:
crates/load/src/usecase.rs:
