/root/repo/target/debug/deps/ablate_interleave-f192330dc982f13a.d: crates/bench/src/bin/ablate_interleave.rs

/root/repo/target/debug/deps/ablate_interleave-f192330dc982f13a: crates/bench/src/bin/ablate_interleave.rs

crates/bench/src/bin/ablate_interleave.rs:
