/root/repo/target/debug/deps/ablate_page_policy-03c46ae47cbdde5c.d: crates/bench/src/bin/ablate_page_policy.rs

/root/repo/target/debug/deps/ablate_page_policy-03c46ae47cbdde5c: crates/bench/src/bin/ablate_page_policy.rs

crates/bench/src/bin/ablate_page_policy.rs:
