/root/repo/target/debug/deps/ablate_chunk-85caf2451adb75b0.d: crates/bench/src/bin/ablate_chunk.rs

/root/repo/target/debug/deps/ablate_chunk-85caf2451adb75b0: crates/bench/src/bin/ablate_chunk.rs

crates/bench/src/bin/ablate_chunk.rs:
