/root/repo/target/debug/deps/mcm_cli-f72b2510ff35efa3.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_cli-f72b2510ff35efa3.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
