/root/repo/target/debug/deps/extensions-1883ab7caed34420.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-1883ab7caed34420: tests/extensions.rs

tests/extensions.rs:
