/root/repo/target/debug/deps/ext_headroom-a9567191d785fe1a.d: crates/bench/src/bin/ext_headroom.rs

/root/repo/target/debug/deps/ext_headroom-a9567191d785fe1a: crates/bench/src/bin/ext_headroom.rs

crates/bench/src/bin/ext_headroom.rs:
