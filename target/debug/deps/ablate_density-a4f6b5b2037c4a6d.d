/root/repo/target/debug/deps/ablate_density-a4f6b5b2037c4a6d.d: crates/bench/src/bin/ablate_density.rs

/root/repo/target/debug/deps/ablate_density-a4f6b5b2037c4a6d: crates/bench/src/bin/ablate_density.rs

crates/bench/src/bin/ablate_density.rs:
