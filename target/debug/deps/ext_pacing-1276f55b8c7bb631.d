/root/repo/target/debug/deps/ext_pacing-1276f55b8c7bb631.d: crates/bench/src/bin/ext_pacing.rs Cargo.toml

/root/repo/target/debug/deps/libext_pacing-1276f55b8c7bb631.rmeta: crates/bench/src/bin/ext_pacing.rs Cargo.toml

crates/bench/src/bin/ext_pacing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
