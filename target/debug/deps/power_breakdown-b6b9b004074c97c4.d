/root/repo/target/debug/deps/power_breakdown-b6b9b004074c97c4.d: crates/bench/src/bin/power_breakdown.rs

/root/repo/target/debug/deps/power_breakdown-b6b9b004074c97c4: crates/bench/src/bin/power_breakdown.rs

crates/bench/src/bin/power_breakdown.rs:
