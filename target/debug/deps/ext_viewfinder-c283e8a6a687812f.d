/root/repo/target/debug/deps/ext_viewfinder-c283e8a6a687812f.d: crates/bench/src/bin/ext_viewfinder.rs

/root/repo/target/debug/deps/ext_viewfinder-c283e8a6a687812f: crates/bench/src/bin/ext_viewfinder.rs

crates/bench/src/bin/ext_viewfinder.rs:
