/root/repo/target/debug/deps/ablate_write_policy-afc9311c98a7b620.d: crates/bench/src/bin/ablate_write_policy.rs

/root/repo/target/debug/deps/ablate_write_policy-afc9311c98a7b620: crates/bench/src/bin/ablate_write_policy.rs

crates/bench/src/bin/ablate_write_policy.rs:
