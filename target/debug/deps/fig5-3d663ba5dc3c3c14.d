/root/repo/target/debug/deps/fig5-3d663ba5dc3c3c14.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-3d663ba5dc3c3c14: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
