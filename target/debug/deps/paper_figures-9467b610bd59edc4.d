/root/repo/target/debug/deps/paper_figures-9467b610bd59edc4.d: crates/bench/benches/paper_figures.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_figures-9467b610bd59edc4.rmeta: crates/bench/benches/paper_figures.rs Cargo.toml

crates/bench/benches/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
