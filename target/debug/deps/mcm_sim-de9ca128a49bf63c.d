/root/repo/target/debug/deps/mcm_sim-de9ca128a49bf63c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmcm_sim-de9ca128a49bf63c.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmcm_sim-de9ca128a49bf63c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
