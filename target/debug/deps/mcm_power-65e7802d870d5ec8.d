/root/repo/target/debug/deps/mcm_power-65e7802d870d5ec8.d: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

/root/repo/target/debug/deps/libmcm_power-65e7802d870d5ec8.rlib: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

/root/repo/target/debug/deps/libmcm_power-65e7802d870d5ec8.rmeta: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

crates/power/src/lib.rs:
crates/power/src/interface.rs:
crates/power/src/report.rs:
crates/power/src/xdr.rs:
