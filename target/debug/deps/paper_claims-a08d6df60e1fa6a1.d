/root/repo/target/debug/deps/paper_claims-a08d6df60e1fa6a1.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-a08d6df60e1fa6a1: tests/paper_claims.rs

tests/paper_claims.rs:
