/root/repo/target/debug/deps/xdr-bf0f24a785d2f460.d: crates/bench/src/bin/xdr.rs

/root/repo/target/debug/deps/xdr-bf0f24a785d2f460: crates/bench/src/bin/xdr.rs

crates/bench/src/bin/xdr.rs:
