/root/repo/target/debug/deps/ablate_chunk-d1383bd621892e61.d: crates/bench/src/bin/ablate_chunk.rs

/root/repo/target/debug/deps/ablate_chunk-d1383bd621892e61: crates/bench/src/bin/ablate_chunk.rs

crates/bench/src/bin/ablate_chunk.rs:
