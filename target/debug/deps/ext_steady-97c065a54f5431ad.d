/root/repo/target/debug/deps/ext_steady-97c065a54f5431ad.d: crates/bench/src/bin/ext_steady.rs

/root/repo/target/debug/deps/ext_steady-97c065a54f5431ad: crates/bench/src/bin/ext_steady.rs

crates/bench/src/bin/ext_steady.rs:
