/root/repo/target/debug/deps/ablate_mapping-1b12fd8d39ba25d1.d: crates/bench/src/bin/ablate_mapping.rs

/root/repo/target/debug/deps/ablate_mapping-1b12fd8d39ba25d1: crates/bench/src/bin/ablate_mapping.rs

crates/bench/src/bin/ablate_mapping.rs:
