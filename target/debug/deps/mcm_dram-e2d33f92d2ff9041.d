/root/repo/target/debug/deps/mcm_dram-e2d33f92d2ff9041.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

/root/repo/target/debug/deps/mcm_dram-e2d33f92d2ff9041: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/datasheet.rs:
crates/dram/src/device.rs:
crates/dram/src/error.rs:
crates/dram/src/params.rs:
crates/dram/src/power.rs:
crates/dram/src/timeline.rs:
crates/dram/src/validate.rs:
