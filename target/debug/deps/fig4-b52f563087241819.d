/root/repo/target/debug/deps/fig4-b52f563087241819.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-b52f563087241819: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
