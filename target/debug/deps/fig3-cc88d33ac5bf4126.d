/root/repo/target/debug/deps/fig3-cc88d33ac5bf4126.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-cc88d33ac5bf4126.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
