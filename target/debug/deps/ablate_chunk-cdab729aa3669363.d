/root/repo/target/debug/deps/ablate_chunk-cdab729aa3669363.d: crates/bench/src/bin/ablate_chunk.rs Cargo.toml

/root/repo/target/debug/deps/libablate_chunk-cdab729aa3669363.rmeta: crates/bench/src/bin/ablate_chunk.rs Cargo.toml

crates/bench/src/bin/ablate_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
