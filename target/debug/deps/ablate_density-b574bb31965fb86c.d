/root/repo/target/debug/deps/ablate_density-b574bb31965fb86c.d: crates/bench/src/bin/ablate_density.rs

/root/repo/target/debug/deps/ablate_density-b574bb31965fb86c: crates/bench/src/bin/ablate_density.rs

crates/bench/src/bin/ablate_density.rs:
