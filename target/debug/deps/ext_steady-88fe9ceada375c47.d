/root/repo/target/debug/deps/ext_steady-88fe9ceada375c47.d: crates/bench/src/bin/ext_steady.rs Cargo.toml

/root/repo/target/debug/deps/libext_steady-88fe9ceada375c47.rmeta: crates/bench/src/bin/ext_steady.rs Cargo.toml

crates/bench/src/bin/ext_steady.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
