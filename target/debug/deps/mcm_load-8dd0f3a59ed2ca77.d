/root/repo/target/debug/deps/mcm_load-8dd0f3a59ed2ca77.d: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_load-8dd0f3a59ed2ca77.rmeta: crates/load/src/lib.rs crates/load/src/buffers.rs crates/load/src/error.rs crates/load/src/formats.rs crates/load/src/levels.rs crates/load/src/stages.rs crates/load/src/tracefile.rs crates/load/src/traffic.rs crates/load/src/usecase.rs Cargo.toml

crates/load/src/lib.rs:
crates/load/src/buffers.rs:
crates/load/src/error.rs:
crates/load/src/formats.rs:
crates/load/src/levels.rs:
crates/load/src/stages.rs:
crates/load/src/tracefile.rs:
crates/load/src/traffic.rs:
crates/load/src/usecase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
