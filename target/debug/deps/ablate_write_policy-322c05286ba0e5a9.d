/root/repo/target/debug/deps/ablate_write_policy-322c05286ba0e5a9.d: crates/bench/src/bin/ablate_write_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablate_write_policy-322c05286ba0e5a9.rmeta: crates/bench/src/bin/ablate_write_policy.rs Cargo.toml

crates/bench/src/bin/ablate_write_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
