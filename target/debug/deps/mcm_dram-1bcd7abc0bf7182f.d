/root/repo/target/debug/deps/mcm_dram-1bcd7abc0bf7182f.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_dram-1bcd7abc0bf7182f.rmeta: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/datasheet.rs crates/dram/src/device.rs crates/dram/src/error.rs crates/dram/src/params.rs crates/dram/src/power.rs crates/dram/src/timeline.rs crates/dram/src/validate.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/datasheet.rs:
crates/dram/src/device.rs:
crates/dram/src/error.rs:
crates/dram/src/params.rs:
crates/dram/src/power.rs:
crates/dram/src/timeline.rs:
crates/dram/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
