/root/repo/target/debug/deps/paper_claims-ca30edebf9bd52bc.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ca30edebf9bd52bc: tests/paper_claims.rs

tests/paper_claims.rs:
