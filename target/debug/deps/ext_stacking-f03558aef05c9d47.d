/root/repo/target/debug/deps/ext_stacking-f03558aef05c9d47.d: crates/bench/src/bin/ext_stacking.rs

/root/repo/target/debug/deps/ext_stacking-f03558aef05c9d47: crates/bench/src/bin/ext_stacking.rs

crates/bench/src/bin/ext_stacking.rs:
