/root/repo/target/debug/deps/mcm_channel-07d44345d4685f84.d: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_channel-07d44345d4685f84.rmeta: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/cluster.rs:
crates/channel/src/error.rs:
crates/channel/src/interleave.rs:
crates/channel/src/subsystem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
