/root/repo/target/debug/deps/profile-fc0029500e48da18.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-fc0029500e48da18: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
