/root/repo/target/debug/deps/full_stack-b6b83f0ee4175b7f.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-b6b83f0ee4175b7f: tests/full_stack.rs

tests/full_stack.rs:
