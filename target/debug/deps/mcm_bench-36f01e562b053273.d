/root/repo/target/debug/deps/mcm_bench-36f01e562b053273.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-36f01e562b053273.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-36f01e562b053273.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
