/root/repo/target/debug/deps/ext_mlp-73922b16d67670e6.d: crates/bench/src/bin/ext_mlp.rs

/root/repo/target/debug/deps/ext_mlp-73922b16d67670e6: crates/bench/src/bin/ext_mlp.rs

crates/bench/src/bin/ext_mlp.rs:
