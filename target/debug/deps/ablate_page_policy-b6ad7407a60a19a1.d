/root/repo/target/debug/deps/ablate_page_policy-b6ad7407a60a19a1.d: crates/bench/src/bin/ablate_page_policy.rs

/root/repo/target/debug/deps/ablate_page_policy-b6ad7407a60a19a1: crates/bench/src/bin/ablate_page_policy.rs

crates/bench/src/bin/ablate_page_policy.rs:
