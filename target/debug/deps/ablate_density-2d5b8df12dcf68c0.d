/root/repo/target/debug/deps/ablate_density-2d5b8df12dcf68c0.d: crates/bench/src/bin/ablate_density.rs

/root/repo/target/debug/deps/ablate_density-2d5b8df12dcf68c0: crates/bench/src/bin/ablate_density.rs

crates/bench/src/bin/ablate_density.rs:
