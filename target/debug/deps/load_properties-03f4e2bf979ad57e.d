/root/repo/target/debug/deps/load_properties-03f4e2bf979ad57e.d: crates/load/tests/load_properties.rs Cargo.toml

/root/repo/target/debug/deps/libload_properties-03f4e2bf979ad57e.rmeta: crates/load/tests/load_properties.rs Cargo.toml

crates/load/tests/load_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
