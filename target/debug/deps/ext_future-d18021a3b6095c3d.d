/root/repo/target/debug/deps/ext_future-d18021a3b6095c3d.d: crates/bench/src/bin/ext_future.rs

/root/repo/target/debug/deps/ext_future-d18021a3b6095c3d: crates/bench/src/bin/ext_future.rs

crates/bench/src/bin/ext_future.rs:
