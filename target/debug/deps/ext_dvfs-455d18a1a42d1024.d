/root/repo/target/debug/deps/ext_dvfs-455d18a1a42d1024.d: crates/bench/src/bin/ext_dvfs.rs

/root/repo/target/debug/deps/ext_dvfs-455d18a1a42d1024: crates/bench/src/bin/ext_dvfs.rs

crates/bench/src/bin/ext_dvfs.rs:
