/root/repo/target/debug/deps/ext_dual_use-b9976e85523e86af.d: crates/bench/src/bin/ext_dual_use.rs Cargo.toml

/root/repo/target/debug/deps/libext_dual_use-b9976e85523e86af.rmeta: crates/bench/src/bin/ext_dual_use.rs Cargo.toml

crates/bench/src/bin/ext_dual_use.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
