/root/repo/target/debug/deps/fig5-4ec01e9fbcd2b565.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-4ec01e9fbcd2b565: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
