/root/repo/target/debug/deps/extensions-c83d6b43743f5783.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-c83d6b43743f5783: tests/extensions.rs

tests/extensions.rs:
