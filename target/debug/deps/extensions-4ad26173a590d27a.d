/root/repo/target/debug/deps/extensions-4ad26173a590d27a.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-4ad26173a590d27a.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
