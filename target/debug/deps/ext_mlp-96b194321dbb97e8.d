/root/repo/target/debug/deps/ext_mlp-96b194321dbb97e8.d: crates/bench/src/bin/ext_mlp.rs Cargo.toml

/root/repo/target/debug/deps/libext_mlp-96b194321dbb97e8.rmeta: crates/bench/src/bin/ext_mlp.rs Cargo.toml

crates/bench/src/bin/ext_mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
