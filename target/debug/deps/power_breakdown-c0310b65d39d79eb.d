/root/repo/target/debug/deps/power_breakdown-c0310b65d39d79eb.d: crates/bench/src/bin/power_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libpower_breakdown-c0310b65d39d79eb.rmeta: crates/bench/src/bin/power_breakdown.rs Cargo.toml

crates/bench/src/bin/power_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
