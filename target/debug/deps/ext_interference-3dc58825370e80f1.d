/root/repo/target/debug/deps/ext_interference-3dc58825370e80f1.d: crates/bench/src/bin/ext_interference.rs

/root/repo/target/debug/deps/ext_interference-3dc58825370e80f1: crates/bench/src/bin/ext_interference.rs

crates/bench/src/bin/ext_interference.rs:
