/root/repo/target/debug/deps/mcm_core-cb5c380a85a3da0d.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

/root/repo/target/debug/deps/libmcm_core-cb5c380a85a3da0d.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

/root/repo/target/debug/deps/libmcm_core-cb5c380a85a3da0d.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/builder.rs:
crates/core/src/charts.rs:
crates/core/src/error.rs:
crates/core/src/eventsim.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/profile.rs:
crates/core/src/runner.rs:
crates/core/src/steady.rs:
crates/core/src/tracerun.rs:
