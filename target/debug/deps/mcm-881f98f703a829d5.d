/root/repo/target/debug/deps/mcm-881f98f703a829d5.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmcm-881f98f703a829d5.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
