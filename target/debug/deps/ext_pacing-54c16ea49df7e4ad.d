/root/repo/target/debug/deps/ext_pacing-54c16ea49df7e4ad.d: crates/bench/src/bin/ext_pacing.rs

/root/repo/target/debug/deps/ext_pacing-54c16ea49df7e4ad: crates/bench/src/bin/ext_pacing.rs

crates/bench/src/bin/ext_pacing.rs:
