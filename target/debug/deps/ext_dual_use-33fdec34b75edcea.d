/root/repo/target/debug/deps/ext_dual_use-33fdec34b75edcea.d: crates/bench/src/bin/ext_dual_use.rs Cargo.toml

/root/repo/target/debug/deps/libext_dual_use-33fdec34b75edcea.rmeta: crates/bench/src/bin/ext_dual_use.rs Cargo.toml

crates/bench/src/bin/ext_dual_use.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
