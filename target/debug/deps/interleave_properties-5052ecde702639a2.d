/root/repo/target/debug/deps/interleave_properties-5052ecde702639a2.d: crates/channel/tests/interleave_properties.rs Cargo.toml

/root/repo/target/debug/deps/libinterleave_properties-5052ecde702639a2.rmeta: crates/channel/tests/interleave_properties.rs Cargo.toml

crates/channel/tests/interleave_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
