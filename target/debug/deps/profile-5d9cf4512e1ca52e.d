/root/repo/target/debug/deps/profile-5d9cf4512e1ca52e.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-5d9cf4512e1ca52e.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
