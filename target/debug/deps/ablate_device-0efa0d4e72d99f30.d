/root/repo/target/debug/deps/ablate_device-0efa0d4e72d99f30.d: crates/bench/src/bin/ablate_device.rs

/root/repo/target/debug/deps/ablate_device-0efa0d4e72d99f30: crates/bench/src/bin/ablate_device.rs

crates/bench/src/bin/ablate_device.rs:
