/root/repo/target/debug/deps/ext_viewfinder-5562f5c5515b2b85.d: crates/bench/src/bin/ext_viewfinder.rs

/root/repo/target/debug/deps/ext_viewfinder-5562f5c5515b2b85: crates/bench/src/bin/ext_viewfinder.rs

crates/bench/src/bin/ext_viewfinder.rs:
