/root/repo/target/debug/deps/power_breakdown-df05ccae87a71f64.d: crates/bench/src/bin/power_breakdown.rs

/root/repo/target/debug/deps/power_breakdown-df05ccae87a71f64: crates/bench/src/bin/power_breakdown.rs

crates/bench/src/bin/power_breakdown.rs:
