/root/repo/target/debug/deps/scheduler_properties-9be7ac1ae3da04bb.d: crates/ctrl/tests/scheduler_properties.rs

/root/repo/target/debug/deps/scheduler_properties-9be7ac1ae3da04bb: crates/ctrl/tests/scheduler_properties.rs

crates/ctrl/tests/scheduler_properties.rs:
