/root/repo/target/debug/deps/ablate_power_down-c2923c40917c50b5.d: crates/bench/src/bin/ablate_power_down.rs

/root/repo/target/debug/deps/ablate_power_down-c2923c40917c50b5: crates/bench/src/bin/ablate_power_down.rs

crates/bench/src/bin/ablate_power_down.rs:
