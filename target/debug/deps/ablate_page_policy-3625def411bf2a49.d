/root/repo/target/debug/deps/ablate_page_policy-3625def411bf2a49.d: crates/bench/src/bin/ablate_page_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablate_page_policy-3625def411bf2a49.rmeta: crates/bench/src/bin/ablate_page_policy.rs Cargo.toml

crates/bench/src/bin/ablate_page_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
