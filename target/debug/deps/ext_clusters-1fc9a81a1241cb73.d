/root/repo/target/debug/deps/ext_clusters-1fc9a81a1241cb73.d: crates/bench/src/bin/ext_clusters.rs Cargo.toml

/root/repo/target/debug/deps/libext_clusters-1fc9a81a1241cb73.rmeta: crates/bench/src/bin/ext_clusters.rs Cargo.toml

crates/bench/src/bin/ext_clusters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
