/root/repo/target/debug/deps/ablate_interleave-59e0473c1ddf623d.d: crates/bench/src/bin/ablate_interleave.rs Cargo.toml

/root/repo/target/debug/deps/libablate_interleave-59e0473c1ddf623d.rmeta: crates/bench/src/bin/ablate_interleave.rs Cargo.toml

crates/bench/src/bin/ablate_interleave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
