/root/repo/target/debug/deps/mcm_channel-dddc1f018897c143.d: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

/root/repo/target/debug/deps/libmcm_channel-dddc1f018897c143.rlib: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

/root/repo/target/debug/deps/libmcm_channel-dddc1f018897c143.rmeta: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

crates/channel/src/lib.rs:
crates/channel/src/cluster.rs:
crates/channel/src/error.rs:
crates/channel/src/interleave.rs:
crates/channel/src/subsystem.rs:
