/root/repo/target/debug/deps/mutation-7ff7f7dc81088aa8.d: crates/verify/tests/mutation.rs

/root/repo/target/debug/deps/mutation-7ff7f7dc81088aa8: crates/verify/tests/mutation.rs

crates/verify/tests/mutation.rs:
