/root/repo/target/debug/deps/mcm-7b6c1bdda14b2388.d: src/lib.rs

/root/repo/target/debug/deps/libmcm-7b6c1bdda14b2388.rlib: src/lib.rs

/root/repo/target/debug/deps/libmcm-7b6c1bdda14b2388.rmeta: src/lib.rs

src/lib.rs:
