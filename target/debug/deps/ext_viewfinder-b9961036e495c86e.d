/root/repo/target/debug/deps/ext_viewfinder-b9961036e495c86e.d: crates/bench/src/bin/ext_viewfinder.rs Cargo.toml

/root/repo/target/debug/deps/libext_viewfinder-b9961036e495c86e.rmeta: crates/bench/src/bin/ext_viewfinder.rs Cargo.toml

crates/bench/src/bin/ext_viewfinder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
