/root/repo/target/debug/deps/mcm-78fafaf7ef76ade3.d: src/lib.rs

/root/repo/target/debug/deps/libmcm-78fafaf7ef76ade3.rlib: src/lib.rs

/root/repo/target/debug/deps/libmcm-78fafaf7ef76ade3.rmeta: src/lib.rs

src/lib.rs:
