/root/repo/target/debug/deps/dram_ops-ac45b03c9e274e14.d: crates/bench/benches/dram_ops.rs Cargo.toml

/root/repo/target/debug/deps/libdram_ops-ac45b03c9e274e14.rmeta: crates/bench/benches/dram_ops.rs Cargo.toml

crates/bench/benches/dram_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
