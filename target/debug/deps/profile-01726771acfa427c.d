/root/repo/target/debug/deps/profile-01726771acfa427c.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-01726771acfa427c: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
