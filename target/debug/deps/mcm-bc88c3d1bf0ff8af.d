/root/repo/target/debug/deps/mcm-bc88c3d1bf0ff8af.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mcm-bc88c3d1bf0ff8af: crates/cli/src/main.rs

crates/cli/src/main.rs:
