/root/repo/target/debug/deps/repro-8dffade1780c7b22.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-8dffade1780c7b22: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
