/root/repo/target/debug/deps/ablate_power_down-53cf8407ece722c7.d: crates/bench/src/bin/ablate_power_down.rs

/root/repo/target/debug/deps/ablate_power_down-53cf8407ece722c7: crates/bench/src/bin/ablate_power_down.rs

crates/bench/src/bin/ablate_power_down.rs:
