/root/repo/target/debug/deps/fig4-9645e481f2fa6617.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-9645e481f2fa6617: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
