/root/repo/target/debug/deps/ext_interference-e12fd93e994d52d8.d: crates/bench/src/bin/ext_interference.rs

/root/repo/target/debug/deps/ext_interference-e12fd93e994d52d8: crates/bench/src/bin/ext_interference.rs

crates/bench/src/bin/ext_interference.rs:
