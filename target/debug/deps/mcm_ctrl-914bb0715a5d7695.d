/root/repo/target/debug/deps/mcm_ctrl-914bb0715a5d7695.d: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

/root/repo/target/debug/deps/libmcm_ctrl-914bb0715a5d7695.rlib: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

/root/repo/target/debug/deps/libmcm_ctrl-914bb0715a5d7695.rmeta: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/config.rs:
crates/ctrl/src/controller.rs:
crates/ctrl/src/error.rs:
crates/ctrl/src/request.rs:
