/root/repo/target/debug/deps/proptest-c090770bd6fdedc8.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-c090770bd6fdedc8: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
