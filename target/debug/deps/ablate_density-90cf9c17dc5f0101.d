/root/repo/target/debug/deps/ablate_density-90cf9c17dc5f0101.d: crates/bench/src/bin/ablate_density.rs Cargo.toml

/root/repo/target/debug/deps/libablate_density-90cf9c17dc5f0101.rmeta: crates/bench/src/bin/ablate_density.rs Cargo.toml

crates/bench/src/bin/ablate_density.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
