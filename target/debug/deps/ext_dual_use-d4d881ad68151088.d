/root/repo/target/debug/deps/ext_dual_use-d4d881ad68151088.d: crates/bench/src/bin/ext_dual_use.rs

/root/repo/target/debug/deps/ext_dual_use-d4d881ad68151088: crates/bench/src/bin/ext_dual_use.rs

crates/bench/src/bin/ext_dual_use.rs:
