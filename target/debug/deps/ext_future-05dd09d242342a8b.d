/root/repo/target/debug/deps/ext_future-05dd09d242342a8b.d: crates/bench/src/bin/ext_future.rs

/root/repo/target/debug/deps/ext_future-05dd09d242342a8b: crates/bench/src/bin/ext_future.rs

crates/bench/src/bin/ext_future.rs:
