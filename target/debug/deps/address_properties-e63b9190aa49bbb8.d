/root/repo/target/debug/deps/address_properties-e63b9190aa49bbb8.d: crates/dram/tests/address_properties.rs Cargo.toml

/root/repo/target/debug/deps/libaddress_properties-e63b9190aa49bbb8.rmeta: crates/dram/tests/address_properties.rs Cargo.toml

crates/dram/tests/address_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
