/root/repo/target/debug/deps/ext_dvfs-88c06748e0e7b41d.d: crates/bench/src/bin/ext_dvfs.rs Cargo.toml

/root/repo/target/debug/deps/libext_dvfs-88c06748e0e7b41d.rmeta: crates/bench/src/bin/ext_dvfs.rs Cargo.toml

crates/bench/src/bin/ext_dvfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
