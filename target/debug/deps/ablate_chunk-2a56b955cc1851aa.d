/root/repo/target/debug/deps/ablate_chunk-2a56b955cc1851aa.d: crates/bench/src/bin/ablate_chunk.rs

/root/repo/target/debug/deps/ablate_chunk-2a56b955cc1851aa: crates/bench/src/bin/ablate_chunk.rs

crates/bench/src/bin/ablate_chunk.rs:
