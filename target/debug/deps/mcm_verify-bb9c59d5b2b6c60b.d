/root/repo/target/debug/deps/mcm_verify-bb9c59d5b2b6c60b.d: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_verify-bb9c59d5b2b6c60b.rmeta: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/channels.rs:
crates/verify/src/config.rs:
crates/verify/src/diag.rs:
crates/verify/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
