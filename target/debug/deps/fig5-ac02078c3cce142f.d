/root/repo/target/debug/deps/fig5-ac02078c3cce142f.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-ac02078c3cce142f: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
