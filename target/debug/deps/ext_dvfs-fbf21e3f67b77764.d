/root/repo/target/debug/deps/ext_dvfs-fbf21e3f67b77764.d: crates/bench/src/bin/ext_dvfs.rs

/root/repo/target/debug/deps/ext_dvfs-fbf21e3f67b77764: crates/bench/src/bin/ext_dvfs.rs

crates/bench/src/bin/ext_dvfs.rs:
