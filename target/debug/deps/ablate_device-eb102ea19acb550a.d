/root/repo/target/debug/deps/ablate_device-eb102ea19acb550a.d: crates/bench/src/bin/ablate_device.rs

/root/repo/target/debug/deps/ablate_device-eb102ea19acb550a: crates/bench/src/bin/ablate_device.rs

crates/bench/src/bin/ablate_device.rs:
