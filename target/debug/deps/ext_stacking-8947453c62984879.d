/root/repo/target/debug/deps/ext_stacking-8947453c62984879.d: crates/bench/src/bin/ext_stacking.rs

/root/repo/target/debug/deps/ext_stacking-8947453c62984879: crates/bench/src/bin/ext_stacking.rs

crates/bench/src/bin/ext_stacking.rs:
