/root/repo/target/debug/deps/ablate_mapping-51a02b1d65c3675d.d: crates/bench/src/bin/ablate_mapping.rs

/root/repo/target/debug/deps/ablate_mapping-51a02b1d65c3675d: crates/bench/src/bin/ablate_mapping.rs

crates/bench/src/bin/ablate_mapping.rs:
