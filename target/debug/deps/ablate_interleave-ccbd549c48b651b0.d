/root/repo/target/debug/deps/ablate_interleave-ccbd549c48b651b0.d: crates/bench/src/bin/ablate_interleave.rs Cargo.toml

/root/repo/target/debug/deps/libablate_interleave-ccbd549c48b651b0.rmeta: crates/bench/src/bin/ablate_interleave.rs Cargo.toml

crates/bench/src/bin/ablate_interleave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
