/root/repo/target/debug/deps/fig5-a8c199f27e42f5ba.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-a8c199f27e42f5ba: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
