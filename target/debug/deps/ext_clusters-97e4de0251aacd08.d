/root/repo/target/debug/deps/ext_clusters-97e4de0251aacd08.d: crates/bench/src/bin/ext_clusters.rs

/root/repo/target/debug/deps/ext_clusters-97e4de0251aacd08: crates/bench/src/bin/ext_clusters.rs

crates/bench/src/bin/ext_clusters.rs:
