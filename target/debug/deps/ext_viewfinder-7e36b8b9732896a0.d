/root/repo/target/debug/deps/ext_viewfinder-7e36b8b9732896a0.d: crates/bench/src/bin/ext_viewfinder.rs

/root/repo/target/debug/deps/ext_viewfinder-7e36b8b9732896a0: crates/bench/src/bin/ext_viewfinder.rs

crates/bench/src/bin/ext_viewfinder.rs:
