/root/repo/target/debug/deps/ablate_mapping-f8594c8160ffe555.d: crates/bench/src/bin/ablate_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libablate_mapping-f8594c8160ffe555.rmeta: crates/bench/src/bin/ablate_mapping.rs Cargo.toml

crates/bench/src/bin/ablate_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
