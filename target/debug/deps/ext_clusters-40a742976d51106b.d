/root/repo/target/debug/deps/ext_clusters-40a742976d51106b.d: crates/bench/src/bin/ext_clusters.rs

/root/repo/target/debug/deps/ext_clusters-40a742976d51106b: crates/bench/src/bin/ext_clusters.rs

crates/bench/src/bin/ext_clusters.rs:
