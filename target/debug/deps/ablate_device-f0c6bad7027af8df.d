/root/repo/target/debug/deps/ablate_device-f0c6bad7027af8df.d: crates/bench/src/bin/ablate_device.rs Cargo.toml

/root/repo/target/debug/deps/libablate_device-f0c6bad7027af8df.rmeta: crates/bench/src/bin/ablate_device.rs Cargo.toml

crates/bench/src/bin/ablate_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
