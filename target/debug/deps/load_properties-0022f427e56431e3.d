/root/repo/target/debug/deps/load_properties-0022f427e56431e3.d: crates/load/tests/load_properties.rs

/root/repo/target/debug/deps/load_properties-0022f427e56431e3: crates/load/tests/load_properties.rs

crates/load/tests/load_properties.rs:
