/root/repo/target/debug/deps/ablate_chunk-28551dbfd000396a.d: crates/bench/src/bin/ablate_chunk.rs Cargo.toml

/root/repo/target/debug/deps/libablate_chunk-28551dbfd000396a.rmeta: crates/bench/src/bin/ablate_chunk.rs Cargo.toml

crates/bench/src/bin/ablate_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
