/root/repo/target/debug/deps/ablate_page_policy-b69236196dc11c63.d: crates/bench/src/bin/ablate_page_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablate_page_policy-b69236196dc11c63.rmeta: crates/bench/src/bin/ablate_page_policy.rs Cargo.toml

crates/bench/src/bin/ablate_page_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
