/root/repo/target/debug/deps/mcm-b5abbd14aeb2118d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mcm-b5abbd14aeb2118d: crates/cli/src/main.rs

crates/cli/src/main.rs:
