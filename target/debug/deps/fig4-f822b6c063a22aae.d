/root/repo/target/debug/deps/fig4-f822b6c063a22aae.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-f822b6c063a22aae: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
