/root/repo/target/debug/deps/profile-63e625b7dae1ef2b.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-63e625b7dae1ef2b: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
