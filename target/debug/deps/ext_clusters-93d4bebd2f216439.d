/root/repo/target/debug/deps/ext_clusters-93d4bebd2f216439.d: crates/bench/src/bin/ext_clusters.rs

/root/repo/target/debug/deps/ext_clusters-93d4bebd2f216439: crates/bench/src/bin/ext_clusters.rs

crates/bench/src/bin/ext_clusters.rs:
