/root/repo/target/debug/deps/power_breakdown-c4aee389ddbc6026.d: crates/bench/src/bin/power_breakdown.rs

/root/repo/target/debug/deps/power_breakdown-c4aee389ddbc6026: crates/bench/src/bin/power_breakdown.rs

crates/bench/src/bin/power_breakdown.rs:
