/root/repo/target/debug/deps/ext_dvfs-b46def7a1a0cf75b.d: crates/bench/src/bin/ext_dvfs.rs

/root/repo/target/debug/deps/ext_dvfs-b46def7a1a0cf75b: crates/bench/src/bin/ext_dvfs.rs

crates/bench/src/bin/ext_dvfs.rs:
