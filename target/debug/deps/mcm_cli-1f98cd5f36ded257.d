/root/repo/target/debug/deps/mcm_cli-1f98cd5f36ded257.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mcm_cli-1f98cd5f36ded257: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
