/root/repo/target/debug/deps/ext_viewfinder-3291c9a916cd859b.d: crates/bench/src/bin/ext_viewfinder.rs Cargo.toml

/root/repo/target/debug/deps/libext_viewfinder-3291c9a916cd859b.rmeta: crates/bench/src/bin/ext_viewfinder.rs Cargo.toml

crates/bench/src/bin/ext_viewfinder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
