/root/repo/target/debug/deps/ablate_page_policy-9be4b05c941ebed3.d: crates/bench/src/bin/ablate_page_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablate_page_policy-9be4b05c941ebed3.rmeta: crates/bench/src/bin/ablate_page_policy.rs Cargo.toml

crates/bench/src/bin/ablate_page_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
