/root/repo/target/debug/deps/ablate_interleave-fbb931743737fef7.d: crates/bench/src/bin/ablate_interleave.rs

/root/repo/target/debug/deps/ablate_interleave-fbb931743737fef7: crates/bench/src/bin/ablate_interleave.rs

crates/bench/src/bin/ablate_interleave.rs:
