/root/repo/target/debug/deps/ablate_page_policy-63638be2cf4f10f0.d: crates/bench/src/bin/ablate_page_policy.rs

/root/repo/target/debug/deps/ablate_page_policy-63638be2cf4f10f0: crates/bench/src/bin/ablate_page_policy.rs

crates/bench/src/bin/ablate_page_policy.rs:
