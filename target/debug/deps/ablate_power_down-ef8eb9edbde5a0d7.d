/root/repo/target/debug/deps/ablate_power_down-ef8eb9edbde5a0d7.d: crates/bench/src/bin/ablate_power_down.rs

/root/repo/target/debug/deps/ablate_power_down-ef8eb9edbde5a0d7: crates/bench/src/bin/ablate_power_down.rs

crates/bench/src/bin/ablate_power_down.rs:
