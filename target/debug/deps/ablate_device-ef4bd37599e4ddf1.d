/root/repo/target/debug/deps/ablate_device-ef4bd37599e4ddf1.d: crates/bench/src/bin/ablate_device.rs Cargo.toml

/root/repo/target/debug/deps/libablate_device-ef4bd37599e4ddf1.rmeta: crates/bench/src/bin/ablate_device.rs Cargo.toml

crates/bench/src/bin/ablate_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
