/root/repo/target/debug/deps/ablate_mapping-a1106a556c3c67ac.d: crates/bench/src/bin/ablate_mapping.rs

/root/repo/target/debug/deps/ablate_mapping-a1106a556c3c67ac: crates/bench/src/bin/ablate_mapping.rs

crates/bench/src/bin/ablate_mapping.rs:
