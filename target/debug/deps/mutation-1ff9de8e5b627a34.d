/root/repo/target/debug/deps/mutation-1ff9de8e5b627a34.d: crates/verify/tests/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libmutation-1ff9de8e5b627a34.rmeta: crates/verify/tests/mutation.rs Cargo.toml

crates/verify/tests/mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
