/root/repo/target/debug/deps/repro-95612376a5a688cf.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-95612376a5a688cf: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
