/root/repo/target/debug/deps/table2-ca451e5d4fa272eb.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ca451e5d4fa272eb: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
