/root/repo/target/debug/deps/fig3-5f8092fe0455f57c.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5f8092fe0455f57c: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
