/root/repo/target/debug/deps/ext_headroom-34aaa236acb04c40.d: crates/bench/src/bin/ext_headroom.rs

/root/repo/target/debug/deps/ext_headroom-34aaa236acb04c40: crates/bench/src/bin/ext_headroom.rs

crates/bench/src/bin/ext_headroom.rs:
