/root/repo/target/debug/deps/ext_headroom-3877886635708ca9.d: crates/bench/src/bin/ext_headroom.rs Cargo.toml

/root/repo/target/debug/deps/libext_headroom-3877886635708ca9.rmeta: crates/bench/src/bin/ext_headroom.rs Cargo.toml

crates/bench/src/bin/ext_headroom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
