/root/repo/target/debug/deps/mcm_power-8a7e24cdc69c74f3.d: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

/root/repo/target/debug/deps/mcm_power-8a7e24cdc69c74f3: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs

crates/power/src/lib.rs:
crates/power/src/interface.rs:
crates/power/src/report.rs:
crates/power/src/xdr.rs:
