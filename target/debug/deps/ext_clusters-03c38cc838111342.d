/root/repo/target/debug/deps/ext_clusters-03c38cc838111342.d: crates/bench/src/bin/ext_clusters.rs

/root/repo/target/debug/deps/ext_clusters-03c38cc838111342: crates/bench/src/bin/ext_clusters.rs

crates/bench/src/bin/ext_clusters.rs:
