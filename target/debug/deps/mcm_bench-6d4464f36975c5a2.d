/root/repo/target/debug/deps/mcm_bench-6d4464f36975c5a2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mcm_bench-6d4464f36975c5a2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
