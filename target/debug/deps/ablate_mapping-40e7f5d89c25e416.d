/root/repo/target/debug/deps/ablate_mapping-40e7f5d89c25e416.d: crates/bench/src/bin/ablate_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libablate_mapping-40e7f5d89c25e416.rmeta: crates/bench/src/bin/ablate_mapping.rs Cargo.toml

crates/bench/src/bin/ablate_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
