/root/repo/target/debug/deps/ext_mlp-4d42192143c8d764.d: crates/bench/src/bin/ext_mlp.rs

/root/repo/target/debug/deps/ext_mlp-4d42192143c8d764: crates/bench/src/bin/ext_mlp.rs

crates/bench/src/bin/ext_mlp.rs:
