/root/repo/target/debug/deps/table1-d7ab004b0f094dbc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d7ab004b0f094dbc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
