/root/repo/target/debug/deps/ext_headroom-38ad7a161da29c4d.d: crates/bench/src/bin/ext_headroom.rs

/root/repo/target/debug/deps/ext_headroom-38ad7a161da29c4d: crates/bench/src/bin/ext_headroom.rs

crates/bench/src/bin/ext_headroom.rs:
