/root/repo/target/debug/deps/ablate_power_down-3a5ede391969efd3.d: crates/bench/src/bin/ablate_power_down.rs Cargo.toml

/root/repo/target/debug/deps/libablate_power_down-3a5ede391969efd3.rmeta: crates/bench/src/bin/ablate_power_down.rs Cargo.toml

crates/bench/src/bin/ablate_power_down.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
