/root/repo/target/debug/deps/ext_stacking-1765c0495b8b1d49.d: crates/bench/src/bin/ext_stacking.rs

/root/repo/target/debug/deps/ext_stacking-1765c0495b8b1d49: crates/bench/src/bin/ext_stacking.rs

crates/bench/src/bin/ext_stacking.rs:
