/root/repo/target/debug/deps/ablate_device-95c8887e99967a30.d: crates/bench/src/bin/ablate_device.rs

/root/repo/target/debug/deps/ablate_device-95c8887e99967a30: crates/bench/src/bin/ablate_device.rs

crates/bench/src/bin/ablate_device.rs:
