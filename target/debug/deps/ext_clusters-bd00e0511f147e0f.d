/root/repo/target/debug/deps/ext_clusters-bd00e0511f147e0f.d: crates/bench/src/bin/ext_clusters.rs

/root/repo/target/debug/deps/ext_clusters-bd00e0511f147e0f: crates/bench/src/bin/ext_clusters.rs

crates/bench/src/bin/ext_clusters.rs:
