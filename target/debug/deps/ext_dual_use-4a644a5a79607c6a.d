/root/repo/target/debug/deps/ext_dual_use-4a644a5a79607c6a.d: crates/bench/src/bin/ext_dual_use.rs

/root/repo/target/debug/deps/ext_dual_use-4a644a5a79607c6a: crates/bench/src/bin/ext_dual_use.rs

crates/bench/src/bin/ext_dual_use.rs:
