/root/repo/target/debug/deps/mcm-4e48c314d1d699d4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcm-4e48c314d1d699d4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
