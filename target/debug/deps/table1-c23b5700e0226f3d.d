/root/repo/target/debug/deps/table1-c23b5700e0226f3d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c23b5700e0226f3d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
