/root/repo/target/debug/deps/ext_viewfinder-73b98f962a540ba7.d: crates/bench/src/bin/ext_viewfinder.rs

/root/repo/target/debug/deps/ext_viewfinder-73b98f962a540ba7: crates/bench/src/bin/ext_viewfinder.rs

crates/bench/src/bin/ext_viewfinder.rs:
