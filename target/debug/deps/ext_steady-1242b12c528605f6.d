/root/repo/target/debug/deps/ext_steady-1242b12c528605f6.d: crates/bench/src/bin/ext_steady.rs

/root/repo/target/debug/deps/ext_steady-1242b12c528605f6: crates/bench/src/bin/ext_steady.rs

crates/bench/src/bin/ext_steady.rs:
