/root/repo/target/debug/deps/ext_steady-60008be8cfe4e90c.d: crates/bench/src/bin/ext_steady.rs

/root/repo/target/debug/deps/ext_steady-60008be8cfe4e90c: crates/bench/src/bin/ext_steady.rs

crates/bench/src/bin/ext_steady.rs:
