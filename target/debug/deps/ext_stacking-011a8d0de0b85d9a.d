/root/repo/target/debug/deps/ext_stacking-011a8d0de0b85d9a.d: crates/bench/src/bin/ext_stacking.rs

/root/repo/target/debug/deps/ext_stacking-011a8d0de0b85d9a: crates/bench/src/bin/ext_stacking.rs

crates/bench/src/bin/ext_stacking.rs:
