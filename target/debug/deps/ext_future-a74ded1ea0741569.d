/root/repo/target/debug/deps/ext_future-a74ded1ea0741569.d: crates/bench/src/bin/ext_future.rs

/root/repo/target/debug/deps/ext_future-a74ded1ea0741569: crates/bench/src/bin/ext_future.rs

crates/bench/src/bin/ext_future.rs:
