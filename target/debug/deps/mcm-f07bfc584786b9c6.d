/root/repo/target/debug/deps/mcm-f07bfc584786b9c6.d: src/lib.rs

/root/repo/target/debug/deps/libmcm-f07bfc584786b9c6.rlib: src/lib.rs

/root/repo/target/debug/deps/libmcm-f07bfc584786b9c6.rmeta: src/lib.rs

src/lib.rs:
