/root/repo/target/debug/deps/ext_dual_use-9dcca39bc8ab7ae6.d: crates/bench/src/bin/ext_dual_use.rs

/root/repo/target/debug/deps/ext_dual_use-9dcca39bc8ab7ae6: crates/bench/src/bin/ext_dual_use.rs

crates/bench/src/bin/ext_dual_use.rs:
