/root/repo/target/debug/deps/mcm_sweep-5bcc7597fe09e482.d: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/mcm_sweep-5bcc7597fe09e482: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cache.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/error.rs:
crates/sweep/src/spec.rs:
