/root/repo/target/debug/deps/ext_headroom-8f3928edf875dbca.d: crates/bench/src/bin/ext_headroom.rs

/root/repo/target/debug/deps/ext_headroom-8f3928edf875dbca: crates/bench/src/bin/ext_headroom.rs

crates/bench/src/bin/ext_headroom.rs:
