/root/repo/target/debug/deps/ablate_interleave-f36a5664d700a1b1.d: crates/bench/src/bin/ablate_interleave.rs

/root/repo/target/debug/deps/ablate_interleave-f36a5664d700a1b1: crates/bench/src/bin/ablate_interleave.rs

crates/bench/src/bin/ablate_interleave.rs:
