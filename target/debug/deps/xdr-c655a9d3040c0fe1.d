/root/repo/target/debug/deps/xdr-c655a9d3040c0fe1.d: crates/bench/src/bin/xdr.rs

/root/repo/target/debug/deps/xdr-c655a9d3040c0fe1: crates/bench/src/bin/xdr.rs

crates/bench/src/bin/xdr.rs:
