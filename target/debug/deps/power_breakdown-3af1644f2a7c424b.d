/root/repo/target/debug/deps/power_breakdown-3af1644f2a7c424b.d: crates/bench/src/bin/power_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libpower_breakdown-3af1644f2a7c424b.rmeta: crates/bench/src/bin/power_breakdown.rs Cargo.toml

crates/bench/src/bin/power_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
