/root/repo/target/debug/deps/mcm_bench-b55622cc06d611c0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mcm_bench-b55622cc06d611c0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
