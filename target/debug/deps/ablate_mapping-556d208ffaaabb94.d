/root/repo/target/debug/deps/ablate_mapping-556d208ffaaabb94.d: crates/bench/src/bin/ablate_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libablate_mapping-556d208ffaaabb94.rmeta: crates/bench/src/bin/ablate_mapping.rs Cargo.toml

crates/bench/src/bin/ablate_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
