/root/repo/target/debug/deps/profile-87fb03c84f7fb397.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-87fb03c84f7fb397.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
