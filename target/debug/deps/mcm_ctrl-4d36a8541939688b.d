/root/repo/target/debug/deps/mcm_ctrl-4d36a8541939688b.d: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_ctrl-4d36a8541939688b.rmeta: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs Cargo.toml

crates/ctrl/src/lib.rs:
crates/ctrl/src/config.rs:
crates/ctrl/src/controller.rs:
crates/ctrl/src/error.rs:
crates/ctrl/src/request.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
