/root/repo/target/debug/deps/xdr-6d861179fef3809e.d: crates/bench/src/bin/xdr.rs

/root/repo/target/debug/deps/xdr-6d861179fef3809e: crates/bench/src/bin/xdr.rs

crates/bench/src/bin/xdr.rs:
