/root/repo/target/debug/deps/kernel_properties-972dffdb4e70e36f.d: crates/sim/tests/kernel_properties.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_properties-972dffdb4e70e36f.rmeta: crates/sim/tests/kernel_properties.rs Cargo.toml

crates/sim/tests/kernel_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
