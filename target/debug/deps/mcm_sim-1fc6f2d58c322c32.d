/root/repo/target/debug/deps/mcm_sim-1fc6f2d58c322c32.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_sim-1fc6f2d58c322c32.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
