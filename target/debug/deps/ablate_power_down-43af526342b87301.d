/root/repo/target/debug/deps/ablate_power_down-43af526342b87301.d: crates/bench/src/bin/ablate_power_down.rs

/root/repo/target/debug/deps/ablate_power_down-43af526342b87301: crates/bench/src/bin/ablate_power_down.rs

crates/bench/src/bin/ablate_power_down.rs:
