/root/repo/target/debug/deps/ext_future-984214df81767d34.d: crates/bench/src/bin/ext_future.rs Cargo.toml

/root/repo/target/debug/deps/libext_future-984214df81767d34.rmeta: crates/bench/src/bin/ext_future.rs Cargo.toml

crates/bench/src/bin/ext_future.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
