/root/repo/target/debug/deps/mcm-43acfabe9a7d2e00.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcm-43acfabe9a7d2e00.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
