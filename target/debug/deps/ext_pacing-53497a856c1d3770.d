/root/repo/target/debug/deps/ext_pacing-53497a856c1d3770.d: crates/bench/src/bin/ext_pacing.rs

/root/repo/target/debug/deps/ext_pacing-53497a856c1d3770: crates/bench/src/bin/ext_pacing.rs

crates/bench/src/bin/ext_pacing.rs:
