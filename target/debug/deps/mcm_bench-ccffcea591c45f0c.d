/root/repo/target/debug/deps/mcm_bench-ccffcea591c45f0c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mcm_bench-ccffcea591c45f0c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
