/root/repo/target/debug/deps/ext_stacking-5a7017b53d8c5209.d: crates/bench/src/bin/ext_stacking.rs Cargo.toml

/root/repo/target/debug/deps/libext_stacking-5a7017b53d8c5209.rmeta: crates/bench/src/bin/ext_stacking.rs Cargo.toml

crates/bench/src/bin/ext_stacking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
