/root/repo/target/debug/deps/fig3-30fac555b9330fc0.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-30fac555b9330fc0: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
