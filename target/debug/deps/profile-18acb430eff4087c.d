/root/repo/target/debug/deps/profile-18acb430eff4087c.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-18acb430eff4087c: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
