/root/repo/target/debug/deps/repro-a2f3d7d45514e898.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a2f3d7d45514e898: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
