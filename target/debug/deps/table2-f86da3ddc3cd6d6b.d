/root/repo/target/debug/deps/table2-f86da3ddc3cd6d6b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-f86da3ddc3cd6d6b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
