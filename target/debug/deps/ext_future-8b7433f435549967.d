/root/repo/target/debug/deps/ext_future-8b7433f435549967.d: crates/bench/src/bin/ext_future.rs

/root/repo/target/debug/deps/ext_future-8b7433f435549967: crates/bench/src/bin/ext_future.rs

crates/bench/src/bin/ext_future.rs:
