/root/repo/target/debug/deps/mcm_sweep-ba88b4c52a425b68.d: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/libmcm_sweep-ba88b4c52a425b68.rlib: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/libmcm_sweep-ba88b4c52a425b68.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cache.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/error.rs:
crates/sweep/src/spec.rs:
