/root/repo/target/debug/deps/profile-efcedb3fc45e66ce.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-efcedb3fc45e66ce: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
