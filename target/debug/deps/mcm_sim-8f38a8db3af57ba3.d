/root/repo/target/debug/deps/mcm_sim-8f38a8db3af57ba3.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_sim-8f38a8db3af57ba3.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
