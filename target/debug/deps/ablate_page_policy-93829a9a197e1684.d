/root/repo/target/debug/deps/ablate_page_policy-93829a9a197e1684.d: crates/bench/src/bin/ablate_page_policy.rs

/root/repo/target/debug/deps/ablate_page_policy-93829a9a197e1684: crates/bench/src/bin/ablate_page_policy.rs

crates/bench/src/bin/ablate_page_policy.rs:
