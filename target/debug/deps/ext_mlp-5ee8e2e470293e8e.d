/root/repo/target/debug/deps/ext_mlp-5ee8e2e470293e8e.d: crates/bench/src/bin/ext_mlp.rs

/root/repo/target/debug/deps/ext_mlp-5ee8e2e470293e8e: crates/bench/src/bin/ext_mlp.rs

crates/bench/src/bin/ext_mlp.rs:
