/root/repo/target/debug/deps/mcm_core-f98425db7834c7b4.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

/root/repo/target/debug/deps/mcm_core-f98425db7834c7b4: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/charts.rs:
crates/core/src/error.rs:
crates/core/src/eventsim.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/profile.rs:
crates/core/src/steady.rs:
crates/core/src/tracerun.rs:
