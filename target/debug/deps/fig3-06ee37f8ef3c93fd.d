/root/repo/target/debug/deps/fig3-06ee37f8ef3c93fd.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-06ee37f8ef3c93fd: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
