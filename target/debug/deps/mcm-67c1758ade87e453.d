/root/repo/target/debug/deps/mcm-67c1758ade87e453.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmcm-67c1758ade87e453.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
