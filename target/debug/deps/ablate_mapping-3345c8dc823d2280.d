/root/repo/target/debug/deps/ablate_mapping-3345c8dc823d2280.d: crates/bench/src/bin/ablate_mapping.rs

/root/repo/target/debug/deps/ablate_mapping-3345c8dc823d2280: crates/bench/src/bin/ablate_mapping.rs

crates/bench/src/bin/ablate_mapping.rs:
