/root/repo/target/debug/deps/mcm_bench-6ccdc5e95f543a69.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_bench-6ccdc5e95f543a69.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
