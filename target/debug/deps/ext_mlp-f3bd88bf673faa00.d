/root/repo/target/debug/deps/ext_mlp-f3bd88bf673faa00.d: crates/bench/src/bin/ext_mlp.rs Cargo.toml

/root/repo/target/debug/deps/libext_mlp-f3bd88bf673faa00.rmeta: crates/bench/src/bin/ext_mlp.rs Cargo.toml

crates/bench/src/bin/ext_mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
