/root/repo/target/debug/deps/mcm_bench-bfd0b5985920fc97.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-bfd0b5985920fc97.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-bfd0b5985920fc97.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
