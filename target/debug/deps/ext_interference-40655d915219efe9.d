/root/repo/target/debug/deps/ext_interference-40655d915219efe9.d: crates/bench/src/bin/ext_interference.rs

/root/repo/target/debug/deps/ext_interference-40655d915219efe9: crates/bench/src/bin/ext_interference.rs

crates/bench/src/bin/ext_interference.rs:
