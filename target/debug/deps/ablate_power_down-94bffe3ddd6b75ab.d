/root/repo/target/debug/deps/ablate_power_down-94bffe3ddd6b75ab.d: crates/bench/src/bin/ablate_power_down.rs Cargo.toml

/root/repo/target/debug/deps/libablate_power_down-94bffe3ddd6b75ab.rmeta: crates/bench/src/bin/ablate_power_down.rs Cargo.toml

crates/bench/src/bin/ablate_power_down.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
