/root/repo/target/debug/deps/extensions-eaa201f922cd970f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-eaa201f922cd970f: tests/extensions.rs

tests/extensions.rs:
