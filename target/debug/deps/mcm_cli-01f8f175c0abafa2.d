/root/repo/target/debug/deps/mcm_cli-01f8f175c0abafa2.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/mcm_cli-01f8f175c0abafa2: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
