/root/repo/target/debug/deps/mcm_verify-481860a467463c85.d: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

/root/repo/target/debug/deps/libmcm_verify-481860a467463c85.rlib: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

/root/repo/target/debug/deps/libmcm_verify-481860a467463c85.rmeta: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

crates/verify/src/lib.rs:
crates/verify/src/channels.rs:
crates/verify/src/config.rs:
crates/verify/src/diag.rs:
crates/verify/src/trace.rs:
