/root/repo/target/debug/deps/mcm_ctrl-3ebd42e880169b08.d: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

/root/repo/target/debug/deps/mcm_ctrl-3ebd42e880169b08: crates/ctrl/src/lib.rs crates/ctrl/src/config.rs crates/ctrl/src/controller.rs crates/ctrl/src/error.rs crates/ctrl/src/request.rs

crates/ctrl/src/lib.rs:
crates/ctrl/src/config.rs:
crates/ctrl/src/controller.rs:
crates/ctrl/src/error.rs:
crates/ctrl/src/request.rs:
