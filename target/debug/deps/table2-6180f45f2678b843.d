/root/repo/target/debug/deps/table2-6180f45f2678b843.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-6180f45f2678b843.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
