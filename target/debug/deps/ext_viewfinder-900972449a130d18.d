/root/repo/target/debug/deps/ext_viewfinder-900972449a130d18.d: crates/bench/src/bin/ext_viewfinder.rs

/root/repo/target/debug/deps/ext_viewfinder-900972449a130d18: crates/bench/src/bin/ext_viewfinder.rs

crates/bench/src/bin/ext_viewfinder.rs:
