/root/repo/target/debug/deps/ext_clusters-81ed3dc317c50cfd.d: crates/bench/src/bin/ext_clusters.rs Cargo.toml

/root/repo/target/debug/deps/libext_clusters-81ed3dc317c50cfd.rmeta: crates/bench/src/bin/ext_clusters.rs Cargo.toml

crates/bench/src/bin/ext_clusters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
