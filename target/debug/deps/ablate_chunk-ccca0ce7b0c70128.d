/root/repo/target/debug/deps/ablate_chunk-ccca0ce7b0c70128.d: crates/bench/src/bin/ablate_chunk.rs Cargo.toml

/root/repo/target/debug/deps/libablate_chunk-ccca0ce7b0c70128.rmeta: crates/bench/src/bin/ablate_chunk.rs Cargo.toml

crates/bench/src/bin/ablate_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
