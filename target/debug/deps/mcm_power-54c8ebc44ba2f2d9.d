/root/repo/target/debug/deps/mcm_power-54c8ebc44ba2f2d9.d: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_power-54c8ebc44ba2f2d9.rmeta: crates/power/src/lib.rs crates/power/src/interface.rs crates/power/src/report.rs crates/power/src/xdr.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/interface.rs:
crates/power/src/report.rs:
crates/power/src/xdr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
