/root/repo/target/debug/deps/full_stack-a2e14e7bba68fdd5.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-a2e14e7bba68fdd5: tests/full_stack.rs

tests/full_stack.rs:
