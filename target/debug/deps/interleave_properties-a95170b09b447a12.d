/root/repo/target/debug/deps/interleave_properties-a95170b09b447a12.d: crates/channel/tests/interleave_properties.rs

/root/repo/target/debug/deps/interleave_properties-a95170b09b447a12: crates/channel/tests/interleave_properties.rs

crates/channel/tests/interleave_properties.rs:
