/root/repo/target/debug/deps/kernel_properties-5ca4f33ee917676f.d: crates/sim/tests/kernel_properties.rs

/root/repo/target/debug/deps/kernel_properties-5ca4f33ee917676f: crates/sim/tests/kernel_properties.rs

crates/sim/tests/kernel_properties.rs:
