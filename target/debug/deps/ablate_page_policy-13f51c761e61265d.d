/root/repo/target/debug/deps/ablate_page_policy-13f51c761e61265d.d: crates/bench/src/bin/ablate_page_policy.rs

/root/repo/target/debug/deps/ablate_page_policy-13f51c761e61265d: crates/bench/src/bin/ablate_page_policy.rs

crates/bench/src/bin/ablate_page_policy.rs:
