/root/repo/target/debug/deps/ablate_write_policy-9fb987145525d4d9.d: crates/bench/src/bin/ablate_write_policy.rs

/root/repo/target/debug/deps/ablate_write_policy-9fb987145525d4d9: crates/bench/src/bin/ablate_write_policy.rs

crates/bench/src/bin/ablate_write_policy.rs:
