/root/repo/target/debug/deps/mcm_cli-6eb2aca754d470ac.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_cli-6eb2aca754d470ac.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
