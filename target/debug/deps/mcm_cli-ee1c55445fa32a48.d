/root/repo/target/debug/deps/mcm_cli-ee1c55445fa32a48.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmcm_cli-ee1c55445fa32a48.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmcm_cli-ee1c55445fa32a48.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
