/root/repo/target/debug/deps/ablate_density-d239ad7eff7e3c9c.d: crates/bench/src/bin/ablate_density.rs Cargo.toml

/root/repo/target/debug/deps/libablate_density-d239ad7eff7e3c9c.rmeta: crates/bench/src/bin/ablate_density.rs Cargo.toml

crates/bench/src/bin/ablate_density.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
