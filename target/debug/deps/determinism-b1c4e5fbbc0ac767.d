/root/repo/target/debug/deps/determinism-b1c4e5fbbc0ac767.d: crates/sweep/tests/determinism.rs

/root/repo/target/debug/deps/determinism-b1c4e5fbbc0ac767: crates/sweep/tests/determinism.rs

crates/sweep/tests/determinism.rs:
