/root/repo/target/debug/deps/mcm-1f073a34d905064c.d: src/lib.rs

/root/repo/target/debug/deps/mcm-1f073a34d905064c: src/lib.rs

src/lib.rs:
