/root/repo/target/debug/deps/power_breakdown-f3f04b47d4a787a6.d: crates/bench/src/bin/power_breakdown.rs

/root/repo/target/debug/deps/power_breakdown-f3f04b47d4a787a6: crates/bench/src/bin/power_breakdown.rs

crates/bench/src/bin/power_breakdown.rs:
