/root/repo/target/debug/deps/ablate_mapping-3752850af5e6024b.d: crates/bench/src/bin/ablate_mapping.rs

/root/repo/target/debug/deps/ablate_mapping-3752850af5e6024b: crates/bench/src/bin/ablate_mapping.rs

crates/bench/src/bin/ablate_mapping.rs:
