/root/repo/target/debug/deps/ablate_device-a3dbf0260cd28e06.d: crates/bench/src/bin/ablate_device.rs

/root/repo/target/debug/deps/ablate_device-a3dbf0260cd28e06: crates/bench/src/bin/ablate_device.rs

crates/bench/src/bin/ablate_device.rs:
