/root/repo/target/debug/deps/profile-135fd234f82365f4.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-135fd234f82365f4.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
