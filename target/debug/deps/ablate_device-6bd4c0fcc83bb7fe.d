/root/repo/target/debug/deps/ablate_device-6bd4c0fcc83bb7fe.d: crates/bench/src/bin/ablate_device.rs Cargo.toml

/root/repo/target/debug/deps/libablate_device-6bd4c0fcc83bb7fe.rmeta: crates/bench/src/bin/ablate_device.rs Cargo.toml

crates/bench/src/bin/ablate_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
