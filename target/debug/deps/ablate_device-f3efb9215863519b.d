/root/repo/target/debug/deps/ablate_device-f3efb9215863519b.d: crates/bench/src/bin/ablate_device.rs

/root/repo/target/debug/deps/ablate_device-f3efb9215863519b: crates/bench/src/bin/ablate_device.rs

crates/bench/src/bin/ablate_device.rs:
