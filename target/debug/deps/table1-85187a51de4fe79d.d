/root/repo/target/debug/deps/table1-85187a51de4fe79d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-85187a51de4fe79d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
