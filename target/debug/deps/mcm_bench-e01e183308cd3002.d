/root/repo/target/debug/deps/mcm_bench-e01e183308cd3002.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mcm_bench-e01e183308cd3002: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
