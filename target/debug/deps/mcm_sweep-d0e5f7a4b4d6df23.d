/root/repo/target/debug/deps/mcm_sweep-d0e5f7a4b4d6df23.d: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_sweep-d0e5f7a4b4d6df23.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cache.rs crates/sweep/src/engine.rs crates/sweep/src/error.rs crates/sweep/src/spec.rs Cargo.toml

crates/sweep/src/lib.rs:
crates/sweep/src/cache.rs:
crates/sweep/src/engine.rs:
crates/sweep/src/error.rs:
crates/sweep/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
