/root/repo/target/debug/deps/ext_steady-37e10cbd60341322.d: crates/bench/src/bin/ext_steady.rs Cargo.toml

/root/repo/target/debug/deps/libext_steady-37e10cbd60341322.rmeta: crates/bench/src/bin/ext_steady.rs Cargo.toml

crates/bench/src/bin/ext_steady.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
