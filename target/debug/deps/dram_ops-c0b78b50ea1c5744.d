/root/repo/target/debug/deps/dram_ops-c0b78b50ea1c5744.d: crates/bench/benches/dram_ops.rs Cargo.toml

/root/repo/target/debug/deps/libdram_ops-c0b78b50ea1c5744.rmeta: crates/bench/benches/dram_ops.rs Cargo.toml

crates/bench/benches/dram_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
