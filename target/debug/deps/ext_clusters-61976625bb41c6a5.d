/root/repo/target/debug/deps/ext_clusters-61976625bb41c6a5.d: crates/bench/src/bin/ext_clusters.rs Cargo.toml

/root/repo/target/debug/deps/libext_clusters-61976625bb41c6a5.rmeta: crates/bench/src/bin/ext_clusters.rs Cargo.toml

crates/bench/src/bin/ext_clusters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
