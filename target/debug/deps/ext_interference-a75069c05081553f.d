/root/repo/target/debug/deps/ext_interference-a75069c05081553f.d: crates/bench/src/bin/ext_interference.rs

/root/repo/target/debug/deps/ext_interference-a75069c05081553f: crates/bench/src/bin/ext_interference.rs

crates/bench/src/bin/ext_interference.rs:
