/root/repo/target/debug/deps/mcm-2edf25610dc9769c.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mcm-2edf25610dc9769c: crates/cli/src/main.rs

crates/cli/src/main.rs:
