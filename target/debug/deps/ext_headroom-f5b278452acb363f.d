/root/repo/target/debug/deps/ext_headroom-f5b278452acb363f.d: crates/bench/src/bin/ext_headroom.rs

/root/repo/target/debug/deps/ext_headroom-f5b278452acb363f: crates/bench/src/bin/ext_headroom.rs

crates/bench/src/bin/ext_headroom.rs:
