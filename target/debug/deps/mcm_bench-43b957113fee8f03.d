/root/repo/target/debug/deps/mcm_bench-43b957113fee8f03.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-43b957113fee8f03.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-43b957113fee8f03.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
