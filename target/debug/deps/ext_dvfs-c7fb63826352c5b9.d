/root/repo/target/debug/deps/ext_dvfs-c7fb63826352c5b9.d: crates/bench/src/bin/ext_dvfs.rs

/root/repo/target/debug/deps/ext_dvfs-c7fb63826352c5b9: crates/bench/src/bin/ext_dvfs.rs

crates/bench/src/bin/ext_dvfs.rs:
