/root/repo/target/debug/deps/address_properties-3f58f292182c0c3f.d: crates/dram/tests/address_properties.rs

/root/repo/target/debug/deps/address_properties-3f58f292182c0c3f: crates/dram/tests/address_properties.rs

crates/dram/tests/address_properties.rs:
