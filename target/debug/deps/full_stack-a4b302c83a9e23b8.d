/root/repo/target/debug/deps/full_stack-a4b302c83a9e23b8.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-a4b302c83a9e23b8: tests/full_stack.rs

tests/full_stack.rs:
