/root/repo/target/debug/deps/ext_mlp-0094d112a670aa69.d: crates/bench/src/bin/ext_mlp.rs

/root/repo/target/debug/deps/ext_mlp-0094d112a670aa69: crates/bench/src/bin/ext_mlp.rs

crates/bench/src/bin/ext_mlp.rs:
