/root/repo/target/debug/deps/table1-2b6e7a30309bba6a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-2b6e7a30309bba6a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
