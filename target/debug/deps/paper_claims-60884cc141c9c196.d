/root/repo/target/debug/deps/paper_claims-60884cc141c9c196.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-60884cc141c9c196: tests/paper_claims.rs

tests/paper_claims.rs:
