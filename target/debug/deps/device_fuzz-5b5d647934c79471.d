/root/repo/target/debug/deps/device_fuzz-5b5d647934c79471.d: crates/dram/tests/device_fuzz.rs

/root/repo/target/debug/deps/device_fuzz-5b5d647934c79471: crates/dram/tests/device_fuzz.rs

crates/dram/tests/device_fuzz.rs:
