/root/repo/target/debug/deps/ext_pacing-e5c62e0fadf510fc.d: crates/bench/src/bin/ext_pacing.rs

/root/repo/target/debug/deps/ext_pacing-e5c62e0fadf510fc: crates/bench/src/bin/ext_pacing.rs

crates/bench/src/bin/ext_pacing.rs:
