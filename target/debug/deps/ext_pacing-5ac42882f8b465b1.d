/root/repo/target/debug/deps/ext_pacing-5ac42882f8b465b1.d: crates/bench/src/bin/ext_pacing.rs

/root/repo/target/debug/deps/ext_pacing-5ac42882f8b465b1: crates/bench/src/bin/ext_pacing.rs

crates/bench/src/bin/ext_pacing.rs:
