/root/repo/target/debug/deps/mcm_channel-13c91ed6afd8a342.d: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

/root/repo/target/debug/deps/mcm_channel-13c91ed6afd8a342: crates/channel/src/lib.rs crates/channel/src/cluster.rs crates/channel/src/error.rs crates/channel/src/interleave.rs crates/channel/src/subsystem.rs

crates/channel/src/lib.rs:
crates/channel/src/cluster.rs:
crates/channel/src/error.rs:
crates/channel/src/interleave.rs:
crates/channel/src/subsystem.rs:
