/root/repo/target/debug/deps/xdr-e8a6f37064da99a9.d: crates/bench/src/bin/xdr.rs

/root/repo/target/debug/deps/xdr-e8a6f37064da99a9: crates/bench/src/bin/xdr.rs

crates/bench/src/bin/xdr.rs:
