/root/repo/target/debug/deps/ext_steady-45dcd4770c1123a4.d: crates/bench/src/bin/ext_steady.rs

/root/repo/target/debug/deps/ext_steady-45dcd4770c1123a4: crates/bench/src/bin/ext_steady.rs

crates/bench/src/bin/ext_steady.rs:
