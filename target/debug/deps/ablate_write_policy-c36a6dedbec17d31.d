/root/repo/target/debug/deps/ablate_write_policy-c36a6dedbec17d31.d: crates/bench/src/bin/ablate_write_policy.rs

/root/repo/target/debug/deps/ablate_write_policy-c36a6dedbec17d31: crates/bench/src/bin/ablate_write_policy.rs

crates/bench/src/bin/ablate_write_policy.rs:
