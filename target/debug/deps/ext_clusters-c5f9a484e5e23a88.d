/root/repo/target/debug/deps/ext_clusters-c5f9a484e5e23a88.d: crates/bench/src/bin/ext_clusters.rs Cargo.toml

/root/repo/target/debug/deps/libext_clusters-c5f9a484e5e23a88.rmeta: crates/bench/src/bin/ext_clusters.rs Cargo.toml

crates/bench/src/bin/ext_clusters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
