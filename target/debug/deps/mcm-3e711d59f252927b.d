/root/repo/target/debug/deps/mcm-3e711d59f252927b.d: src/lib.rs

/root/repo/target/debug/deps/mcm-3e711d59f252927b: src/lib.rs

src/lib.rs:
