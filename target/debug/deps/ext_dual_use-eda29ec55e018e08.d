/root/repo/target/debug/deps/ext_dual_use-eda29ec55e018e08.d: crates/bench/src/bin/ext_dual_use.rs

/root/repo/target/debug/deps/ext_dual_use-eda29ec55e018e08: crates/bench/src/bin/ext_dual_use.rs

crates/bench/src/bin/ext_dual_use.rs:
