/root/repo/target/debug/deps/mcm-f32b132d94e09997.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/mcm-f32b132d94e09997: crates/cli/src/main.rs

crates/cli/src/main.rs:
