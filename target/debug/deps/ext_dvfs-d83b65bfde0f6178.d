/root/repo/target/debug/deps/ext_dvfs-d83b65bfde0f6178.d: crates/bench/src/bin/ext_dvfs.rs Cargo.toml

/root/repo/target/debug/deps/libext_dvfs-d83b65bfde0f6178.rmeta: crates/bench/src/bin/ext_dvfs.rs Cargo.toml

crates/bench/src/bin/ext_dvfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
