/root/repo/target/debug/deps/ext_mlp-a70411d88ae2e2db.d: crates/bench/src/bin/ext_mlp.rs

/root/repo/target/debug/deps/ext_mlp-a70411d88ae2e2db: crates/bench/src/bin/ext_mlp.rs

crates/bench/src/bin/ext_mlp.rs:
