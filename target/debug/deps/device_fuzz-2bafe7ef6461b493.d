/root/repo/target/debug/deps/device_fuzz-2bafe7ef6461b493.d: crates/dram/tests/device_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libdevice_fuzz-2bafe7ef6461b493.rmeta: crates/dram/tests/device_fuzz.rs Cargo.toml

crates/dram/tests/device_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
