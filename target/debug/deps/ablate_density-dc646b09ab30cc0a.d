/root/repo/target/debug/deps/ablate_density-dc646b09ab30cc0a.d: crates/bench/src/bin/ablate_density.rs

/root/repo/target/debug/deps/ablate_density-dc646b09ab30cc0a: crates/bench/src/bin/ablate_density.rs

crates/bench/src/bin/ablate_density.rs:
