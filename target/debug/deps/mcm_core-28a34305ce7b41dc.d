/root/repo/target/debug/deps/mcm_core-28a34305ce7b41dc.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs Cargo.toml

/root/repo/target/debug/deps/libmcm_core-28a34305ce7b41dc.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/builder.rs:
crates/core/src/charts.rs:
crates/core/src/error.rs:
crates/core/src/eventsim.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/profile.rs:
crates/core/src/runner.rs:
crates/core/src/steady.rs:
crates/core/src/tracerun.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
