/root/repo/target/debug/deps/ablate_chunk-dc75500f5cc58031.d: crates/bench/src/bin/ablate_chunk.rs

/root/repo/target/debug/deps/ablate_chunk-dc75500f5cc58031: crates/bench/src/bin/ablate_chunk.rs

crates/bench/src/bin/ablate_chunk.rs:
