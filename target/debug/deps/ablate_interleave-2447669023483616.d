/root/repo/target/debug/deps/ablate_interleave-2447669023483616.d: crates/bench/src/bin/ablate_interleave.rs

/root/repo/target/debug/deps/ablate_interleave-2447669023483616: crates/bench/src/bin/ablate_interleave.rs

crates/bench/src/bin/ablate_interleave.rs:
