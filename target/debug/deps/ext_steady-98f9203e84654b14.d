/root/repo/target/debug/deps/ext_steady-98f9203e84654b14.d: crates/bench/src/bin/ext_steady.rs

/root/repo/target/debug/deps/ext_steady-98f9203e84654b14: crates/bench/src/bin/ext_steady.rs

crates/bench/src/bin/ext_steady.rs:
