/root/repo/target/debug/deps/mcm-1c232aa6be596a31.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmcm-1c232aa6be596a31.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
