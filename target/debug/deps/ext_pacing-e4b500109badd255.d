/root/repo/target/debug/deps/ext_pacing-e4b500109badd255.d: crates/bench/src/bin/ext_pacing.rs

/root/repo/target/debug/deps/ext_pacing-e4b500109badd255: crates/bench/src/bin/ext_pacing.rs

crates/bench/src/bin/ext_pacing.rs:
