/root/repo/target/debug/deps/mcm_bench-0990d006bdc306f2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-0990d006bdc306f2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmcm_bench-0990d006bdc306f2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
