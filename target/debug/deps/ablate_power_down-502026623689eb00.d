/root/repo/target/debug/deps/ablate_power_down-502026623689eb00.d: crates/bench/src/bin/ablate_power_down.rs

/root/repo/target/debug/deps/ablate_power_down-502026623689eb00: crates/bench/src/bin/ablate_power_down.rs

crates/bench/src/bin/ablate_power_down.rs:
