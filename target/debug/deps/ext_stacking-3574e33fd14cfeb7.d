/root/repo/target/debug/deps/ext_stacking-3574e33fd14cfeb7.d: crates/bench/src/bin/ext_stacking.rs Cargo.toml

/root/repo/target/debug/deps/libext_stacking-3574e33fd14cfeb7.rmeta: crates/bench/src/bin/ext_stacking.rs Cargo.toml

crates/bench/src/bin/ext_stacking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
