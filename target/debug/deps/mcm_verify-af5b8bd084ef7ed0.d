/root/repo/target/debug/deps/mcm_verify-af5b8bd084ef7ed0.d: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

/root/repo/target/debug/deps/mcm_verify-af5b8bd084ef7ed0: crates/verify/src/lib.rs crates/verify/src/channels.rs crates/verify/src/config.rs crates/verify/src/diag.rs crates/verify/src/trace.rs

crates/verify/src/lib.rs:
crates/verify/src/channels.rs:
crates/verify/src/config.rs:
crates/verify/src/diag.rs:
crates/verify/src/trace.rs:
