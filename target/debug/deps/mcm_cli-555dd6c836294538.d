/root/repo/target/debug/deps/mcm_cli-555dd6c836294538.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmcm_cli-555dd6c836294538.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmcm_cli-555dd6c836294538.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
