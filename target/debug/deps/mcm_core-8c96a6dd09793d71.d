/root/repo/target/debug/deps/mcm_core-8c96a6dd09793d71.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

/root/repo/target/debug/deps/mcm_core-8c96a6dd09793d71: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/builder.rs crates/core/src/charts.rs crates/core/src/error.rs crates/core/src/eventsim.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/profile.rs crates/core/src/runner.rs crates/core/src/steady.rs crates/core/src/tracerun.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/builder.rs:
crates/core/src/charts.rs:
crates/core/src/error.rs:
crates/core/src/eventsim.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/profile.rs:
crates/core/src/runner.rs:
crates/core/src/steady.rs:
crates/core/src/tracerun.rs:
