/root/repo/target/debug/deps/ext_stacking-cceabe3f93670891.d: crates/bench/src/bin/ext_stacking.rs

/root/repo/target/debug/deps/ext_stacking-cceabe3f93670891: crates/bench/src/bin/ext_stacking.rs

crates/bench/src/bin/ext_stacking.rs:
