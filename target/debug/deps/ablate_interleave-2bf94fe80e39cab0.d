/root/repo/target/debug/deps/ablate_interleave-2bf94fe80e39cab0.d: crates/bench/src/bin/ablate_interleave.rs

/root/repo/target/debug/deps/ablate_interleave-2bf94fe80e39cab0: crates/bench/src/bin/ablate_interleave.rs

crates/bench/src/bin/ablate_interleave.rs:
