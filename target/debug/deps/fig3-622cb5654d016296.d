/root/repo/target/debug/deps/fig3-622cb5654d016296.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-622cb5654d016296: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
