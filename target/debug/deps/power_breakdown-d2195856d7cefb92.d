/root/repo/target/debug/deps/power_breakdown-d2195856d7cefb92.d: crates/bench/src/bin/power_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libpower_breakdown-d2195856d7cefb92.rmeta: crates/bench/src/bin/power_breakdown.rs Cargo.toml

crates/bench/src/bin/power_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
