/root/repo/target/debug/deps/ext_dvfs-ab714582bcae9dfb.d: crates/bench/src/bin/ext_dvfs.rs

/root/repo/target/debug/deps/ext_dvfs-ab714582bcae9dfb: crates/bench/src/bin/ext_dvfs.rs

crates/bench/src/bin/ext_dvfs.rs:
