/root/repo/target/debug/deps/ext_stacking-a5992b6327ff2606.d: crates/bench/src/bin/ext_stacking.rs Cargo.toml

/root/repo/target/debug/deps/libext_stacking-a5992b6327ff2606.rmeta: crates/bench/src/bin/ext_stacking.rs Cargo.toml

crates/bench/src/bin/ext_stacking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
