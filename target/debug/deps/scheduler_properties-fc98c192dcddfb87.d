/root/repo/target/debug/deps/scheduler_properties-fc98c192dcddfb87.d: crates/ctrl/tests/scheduler_properties.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler_properties-fc98c192dcddfb87.rmeta: crates/ctrl/tests/scheduler_properties.rs Cargo.toml

crates/ctrl/tests/scheduler_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
