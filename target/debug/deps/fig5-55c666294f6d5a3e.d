/root/repo/target/debug/deps/fig5-55c666294f6d5a3e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-55c666294f6d5a3e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
