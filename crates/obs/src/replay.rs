//! Buffered recorder events: capture now, replay later, merge across
//! channels deterministically.
//!
//! Parallel per-channel simulation cannot share one [`Recorder`] without
//! making the emission order depend on thread scheduling. Instead each
//! worker records into its own [`EventLog`] — a `Recorder` that keeps every
//! call as an [`ObsEvent`] value — and the coordinator replays the buffered
//! streams into the real recorder afterwards, in an order that does not
//! depend on the thread count.
//!
//! Two orderings are provided:
//!
//! * [`EventLog::replay_into`] — replays one log in capture order;
//! * [`merge_event_streams`] — merges several per-channel streams into one
//!   by `(timestamp, channel, sequence)`, the same tiebreak discipline the
//!   calendar event queue uses for simultaneous events. The merge is a
//!   stable sort over keys that identify each event independently of which
//!   slot its stream arrived in, so it is invariant under permutation of
//!   the input streams.

use std::sync::Mutex;

use crate::recorder::{CommandKind, FaultKind, Recorder, RowOutcome};

/// One buffered [`Recorder`] call, with every argument captured by value.
///
/// Variants mirror the `Recorder` trait methods one-to-one; see the trait
/// documentation for the meaning of each field.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A [`Recorder::record_command`] call.
    Command {
        /// Channel the command was issued on.
        channel: u32,
        /// Bank within the channel.
        bank: u8,
        /// Command class.
        kind: CommandKind,
        /// Issue time, picoseconds.
        at_ps: u64,
    },
    /// A [`Recorder::record_row_outcome`] call.
    RowOutcome {
        /// Channel of the access.
        channel: u32,
        /// Bank within the channel.
        bank: u8,
        /// Row-buffer outcome.
        outcome: RowOutcome,
    },
    /// A [`Recorder::record_latency`] call.
    Latency {
        /// Channel the request retired on.
        channel: u32,
        /// Arrival-to-done latency, picoseconds.
        latency_ps: u64,
    },
    /// A [`Recorder::record_queue_depth`] call.
    QueueDepth {
        /// Channel whose queue was observed.
        channel: u32,
        /// Observed depth.
        depth: u64,
    },
    /// A [`Recorder::record_bytes`] call.
    Bytes {
        /// Channel the bytes moved on.
        channel: u32,
        /// `true` for writes.
        write: bool,
        /// Bytes moved.
        bytes: u64,
        /// Completion time, picoseconds.
        at_ps: u64,
    },
    /// A [`Recorder::record_energy`] call.
    Energy {
        /// Channel the energy was spent on.
        channel: u32,
        /// Command class the energy is attributed to.
        kind: CommandKind,
        /// Event energy, picojoules.
        pj: f64,
        /// Attribution time, picoseconds.
        at_ps: u64,
    },
    /// A [`Recorder::record_background`] call.
    Background {
        /// Channel the energy accrued on.
        channel: u32,
        /// Interval start, picoseconds.
        from_ps: u64,
        /// Interval end, picoseconds.
        to_ps: u64,
        /// Background energy over the interval, picojoules.
        pj: f64,
    },
    /// A [`Recorder::record_span`] call.
    Span {
        /// Span name.
        name: String,
        /// Channel, or `None` for subsystem-wide spans.
        channel: Option<u32>,
        /// Span start, picoseconds.
        start_ps: u64,
        /// Span end, picoseconds.
        end_ps: u64,
    },
    /// A [`Recorder::record_gauge`] call.
    Gauge {
        /// Gauge name.
        name: String,
        /// Channel, or `None` for run-wide gauges.
        channel: Option<u32>,
        /// Sampled value.
        value: f64,
    },
    /// A [`Recorder::record_sim_event`] call.
    SimEvent {
        /// Events still queued behind the fired one.
        pending: u64,
        /// Fire time, picoseconds.
        at_ps: u64,
    },
    /// A [`Recorder::record_fault`] call.
    Fault {
        /// Channel the fault hit.
        channel: u32,
        /// Fault class.
        kind: FaultKind,
        /// Fault time, picoseconds.
        at_ps: u64,
    },
    /// A [`Recorder::record_tenant_op`] call.
    TenantOp {
        /// Tenant index.
        tenant: u32,
        /// `true` for writes.
        write: bool,
        /// Bytes moved on the tenant's behalf.
        bytes: u64,
    },
}

impl ObsEvent {
    /// The event's timestamp in picoseconds, where it carries one.
    ///
    /// Untimestamped events ([`ObsEvent::RowOutcome`],
    /// [`ObsEvent::Latency`], [`ObsEvent::QueueDepth`],
    /// [`ObsEvent::Gauge`], [`ObsEvent::TenantOp`]) report 0 so they sort
    /// ahead of timed events from the same channel, preserving their
    /// capture order among themselves.
    pub fn timestamp_ps(&self) -> u64 {
        match *self {
            ObsEvent::Command { at_ps, .. }
            | ObsEvent::Bytes { at_ps, .. }
            | ObsEvent::Energy { at_ps, .. }
            | ObsEvent::SimEvent { at_ps, .. }
            | ObsEvent::Fault { at_ps, .. } => at_ps,
            ObsEvent::Background { from_ps, .. } => from_ps,
            ObsEvent::Span { start_ps, .. } => start_ps,
            ObsEvent::RowOutcome { .. }
            | ObsEvent::Latency { .. }
            | ObsEvent::QueueDepth { .. }
            | ObsEvent::Gauge { .. }
            | ObsEvent::TenantOp { .. } => 0,
        }
    }

    /// The channel the event belongs to, where it has one.
    pub fn channel(&self) -> Option<u32> {
        match *self {
            ObsEvent::Command { channel, .. }
            | ObsEvent::RowOutcome { channel, .. }
            | ObsEvent::Latency { channel, .. }
            | ObsEvent::QueueDepth { channel, .. }
            | ObsEvent::Bytes { channel, .. }
            | ObsEvent::Energy { channel, .. }
            | ObsEvent::Background { channel, .. }
            | ObsEvent::Fault { channel, .. } => Some(channel),
            ObsEvent::Span { channel, .. } | ObsEvent::Gauge { channel, .. } => channel,
            ObsEvent::SimEvent { .. } | ObsEvent::TenantOp { .. } => None,
        }
    }

    /// Replays the event into `rec`, calling the matching trait method.
    pub fn replay(&self, rec: &dyn Recorder) {
        match self {
            ObsEvent::Command {
                channel,
                bank,
                kind,
                at_ps,
            } => rec.record_command(*channel, *bank, *kind, *at_ps),
            ObsEvent::RowOutcome {
                channel,
                bank,
                outcome,
            } => rec.record_row_outcome(*channel, *bank, *outcome),
            ObsEvent::Latency {
                channel,
                latency_ps,
            } => rec.record_latency(*channel, *latency_ps),
            ObsEvent::QueueDepth { channel, depth } => rec.record_queue_depth(*channel, *depth),
            ObsEvent::Bytes {
                channel,
                write,
                bytes,
                at_ps,
            } => rec.record_bytes(*channel, *write, *bytes, *at_ps),
            ObsEvent::Energy {
                channel,
                kind,
                pj,
                at_ps,
            } => rec.record_energy(*channel, *kind, *pj, *at_ps),
            ObsEvent::Background {
                channel,
                from_ps,
                to_ps,
                pj,
            } => rec.record_background(*channel, *from_ps, *to_ps, *pj),
            ObsEvent::Span {
                name,
                channel,
                start_ps,
                end_ps,
            } => rec.record_span(name, *channel, *start_ps, *end_ps),
            ObsEvent::Gauge {
                name,
                channel,
                value,
            } => rec.record_gauge(name, *channel, *value),
            ObsEvent::SimEvent { pending, at_ps } => rec.record_sim_event(*pending, *at_ps),
            ObsEvent::Fault {
                channel,
                kind,
                at_ps,
            } => rec.record_fault(*channel, *kind, *at_ps),
            ObsEvent::TenantOp {
                tenant,
                write,
                bytes,
            } => rec.record_tenant_op(*tenant, *write, *bytes),
        }
    }
}

/// A [`Recorder`] that buffers every call as an [`ObsEvent`] in capture
/// order instead of aggregating anything.
///
/// One `EventLog` per parallel worker keeps recording race-free without
/// locks on the simulator's hot path beyond the log's own mutex, which is
/// uncontended (each worker owns its log exclusively while simulating).
///
/// # Examples
///
/// ```
/// use mcm_obs::{CommandKind, EventLog, ObsEvent, Recorder, StatsRecorder};
///
/// let log = EventLog::new();
/// log.record_command(0, 0, CommandKind::Activate, 100);
/// log.record_latency(0, 22_500);
/// assert_eq!(log.len(), 2);
///
/// let stats = StatsRecorder::new();
/// log.replay_into(&stats);
/// assert_eq!(stats.report().channels[0].counters.commands.activates, 1);
/// ```
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<ObsEvent>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match self.events.lock() {
            Ok(ev) => ev.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one event.
    pub fn push(&self, event: ObsEvent) {
        match self.events.lock() {
            Ok(mut ev) => ev.push(event),
            Err(poisoned) => poisoned.into_inner().push(event),
        }
    }

    /// Drains the buffered events in capture order, leaving the log empty.
    pub fn take(&self) -> Vec<ObsEvent> {
        match self.events.lock() {
            Ok(mut ev) => std::mem::take(&mut *ev),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }

    /// Replays every buffered event into `rec` in capture order. The log
    /// keeps its contents.
    pub fn replay_into(&self, rec: &dyn Recorder) {
        match self.events.lock() {
            Ok(ev) => {
                for e in ev.iter() {
                    e.replay(rec);
                }
            }
            Err(poisoned) => {
                for e in poisoned.into_inner().iter() {
                    e.replay(rec);
                }
            }
        }
    }
}

impl Recorder for EventLog {
    fn record_command(&self, channel: u32, bank: u8, kind: CommandKind, at_ps: u64) {
        self.push(ObsEvent::Command {
            channel,
            bank,
            kind,
            at_ps,
        });
    }

    fn record_row_outcome(&self, channel: u32, bank: u8, outcome: RowOutcome) {
        self.push(ObsEvent::RowOutcome {
            channel,
            bank,
            outcome,
        });
    }

    fn record_latency(&self, channel: u32, latency_ps: u64) {
        self.push(ObsEvent::Latency {
            channel,
            latency_ps,
        });
    }

    fn record_queue_depth(&self, channel: u32, depth: u64) {
        self.push(ObsEvent::QueueDepth { channel, depth });
    }

    fn record_bytes(&self, channel: u32, write: bool, bytes: u64, at_ps: u64) {
        self.push(ObsEvent::Bytes {
            channel,
            write,
            bytes,
            at_ps,
        });
    }

    fn record_energy(&self, channel: u32, kind: CommandKind, pj: f64, at_ps: u64) {
        self.push(ObsEvent::Energy {
            channel,
            kind,
            pj,
            at_ps,
        });
    }

    fn record_background(&self, channel: u32, from_ps: u64, to_ps: u64, pj: f64) {
        self.push(ObsEvent::Background {
            channel,
            from_ps,
            to_ps,
            pj,
        });
    }

    fn record_span(&self, name: &str, channel: Option<u32>, start_ps: u64, end_ps: u64) {
        self.push(ObsEvent::Span {
            name: name.to_owned(),
            channel,
            start_ps,
            end_ps,
        });
    }

    fn record_gauge(&self, name: &str, channel: Option<u32>, value: f64) {
        self.push(ObsEvent::Gauge {
            name: name.to_owned(),
            channel,
            value,
        });
    }

    fn record_sim_event(&self, pending: u64, at_ps: u64) {
        self.push(ObsEvent::SimEvent { pending, at_ps });
    }

    fn record_fault(&self, channel: u32, kind: FaultKind, at_ps: u64) {
        self.push(ObsEvent::Fault {
            channel,
            kind,
            at_ps,
        });
    }

    fn record_tenant_op(&self, tenant: u32, write: bool, bytes: u64) {
        self.push(ObsEvent::TenantOp {
            tenant,
            write,
            bytes,
        });
    }
}

/// Merges per-channel event streams into one deterministic sequence.
///
/// Every event is keyed `(timestamp_ps, channel, sequence-in-stream)` — the
/// calendar queue's tiebreak discipline — and the streams are merged by
/// ascending key. Events without a channel sort after all channelled events
/// at the same timestamp. Because the key is derived from the event and its
/// position *within its own stream* (never from the stream's slot in
/// `streams`), the output is invariant under any permutation of the input
/// streams, provided no two streams carry the same channel.
///
/// # Examples
///
/// ```
/// use mcm_obs::{merge_event_streams, ObsEvent};
///
/// let ch0 = vec![ObsEvent::Latency { channel: 0, latency_ps: 10 }];
/// let ch1 = vec![ObsEvent::Latency { channel: 1, latency_ps: 20 }];
/// let ab = merge_event_streams(vec![ch0.clone(), ch1.clone()]);
/// let ba = merge_event_streams(vec![ch1, ch0]);
/// assert_eq!(ab, ba);
/// ```
pub fn merge_event_streams(streams: Vec<Vec<ObsEvent>>) -> Vec<ObsEvent> {
    let total = streams.iter().map(Vec::len).sum();
    let mut keyed: Vec<((u64, u64, usize), ObsEvent)> = Vec::with_capacity(total);
    for stream in streams {
        for (seq, event) in stream.into_iter().enumerate() {
            // Channel-less events tie-break after every channelled event.
            let ch = event.channel().map_or(u64::MAX, u64::from);
            keyed.push(((event.timestamp_ps(), ch, seq), event));
        }
    }
    keyed.sort_by_key(|&(key, _)| key);
    keyed.into_iter().map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatsRecorder;

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::Command {
                channel: 0,
                bank: 1,
                kind: CommandKind::Activate,
                at_ps: 100,
            },
            ObsEvent::RowOutcome {
                channel: 0,
                bank: 1,
                outcome: RowOutcome::Miss,
            },
            ObsEvent::Bytes {
                channel: 0,
                write: false,
                bytes: 64,
                at_ps: 200,
            },
            ObsEvent::Span {
                name: "txn".into(),
                channel: None,
                start_ps: 0,
                end_ps: 200,
            },
        ]
    }

    #[test]
    fn log_buffers_in_capture_order() {
        let log = EventLog::new();
        assert!(log.is_empty());
        for e in sample_events() {
            e.replay(&log);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.take(), sample_events());
        assert!(log.is_empty());
    }

    #[test]
    fn replay_matches_direct_recording() {
        let log = EventLog::new();
        let direct = StatsRecorder::new();
        for e in sample_events() {
            e.replay(&log);
            e.replay(&direct);
        }
        let replayed = StatsRecorder::new();
        log.replay_into(&replayed);
        let a = direct.report();
        let b = replayed.report();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn every_recorder_method_round_trips() {
        let log = EventLog::new();
        log.record_command(0, 0, CommandKind::Read, 1);
        log.record_row_outcome(1, 2, RowOutcome::Hit);
        log.record_latency(0, 3);
        log.record_queue_depth(0, 4);
        log.record_bytes(1, true, 64, 5);
        log.record_energy(0, CommandKind::Write, 1.5, 6);
        log.record_background(0, 0, 10, 0.25);
        log.record_span("txn", Some(1), 0, 9);
        log.record_gauge("core_mw", None, 2.0);
        log.record_sim_event(7, 8);
        log.record_fault(1, FaultKind::Stall, 9);
        log.record_tenant_op(2, false, 128);
        let events = log.take();
        assert_eq!(events.len(), 12);
        // Replaying into a second log reproduces the stream exactly.
        let copy = EventLog::new();
        for e in &events {
            e.replay(&copy);
        }
        assert_eq!(copy.take(), events);
    }

    #[test]
    fn merge_is_invariant_under_stream_permutation() {
        let ch0 = vec![
            ObsEvent::Command {
                channel: 0,
                bank: 0,
                kind: CommandKind::Activate,
                at_ps: 100,
            },
            ObsEvent::Command {
                channel: 0,
                bank: 0,
                kind: CommandKind::Read,
                at_ps: 100,
            },
            ObsEvent::Bytes {
                channel: 0,
                write: false,
                bytes: 16,
                at_ps: 300,
            },
        ];
        let ch1 = vec![
            ObsEvent::Command {
                channel: 1,
                bank: 0,
                kind: CommandKind::Activate,
                at_ps: 100,
            },
            ObsEvent::Bytes {
                channel: 1,
                write: false,
                bytes: 16,
                at_ps: 250,
            },
        ];
        let ab = merge_event_streams(vec![ch0.clone(), ch1.clone()]);
        let ba = merge_event_streams(vec![ch1.clone(), ch0.clone()]);
        assert_eq!(ab, ba);
        // Same-timestamp events order by channel, then capture sequence.
        assert_eq!(ab[0].channel(), Some(0));
        assert_eq!(ab[1].channel(), Some(0));
        assert_eq!(ab[2].channel(), Some(1));
        // Later timestamps follow regardless of channel.
        assert_eq!(ab[3].timestamp_ps(), 250);
        assert_eq!(ab[4].timestamp_ps(), 300);
    }

    #[test]
    fn merge_keeps_per_stream_capture_order() {
        // Untimestamped events (timestamp 0) from one stream must keep
        // their relative order.
        let stream = vec![
            ObsEvent::Latency {
                channel: 2,
                latency_ps: 1,
            },
            ObsEvent::Latency {
                channel: 2,
                latency_ps: 2,
            },
            ObsEvent::Latency {
                channel: 2,
                latency_ps: 3,
            },
        ];
        let merged = merge_event_streams(vec![stream.clone()]);
        assert_eq!(merged, stream);
    }
}
