//! Span capture and Chrome `trace_event` export.
//!
//! The exported JSON follows the *Trace Event Format* object form
//! (`{"traceEvents": [...]}`) with complete (`"ph": "X"`) events for spans,
//! metadata (`"ph": "M"`) events naming one track per channel, and counter
//! (`"ph": "C"`) events for the bandwidth timeline. The output loads in
//! Perfetto and `chrome://tracing` unchanged; timestamps are microseconds,
//! converted from the simulator's picosecond clock.

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::timeline::Timeline;

/// One named interval of simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span label, e.g. `"txn"` or `"frame"`.
    pub name: String,
    /// Channel the span belongs to; `None` for subsystem-wide spans.
    pub channel: Option<u32>,
    /// Start, picoseconds.
    pub start_ps: u64,
    /// End, picoseconds (`end_ps ≥ start_ps`).
    pub end_ps: u64,
}

impl SpanEvent {
    /// Span duration in picoseconds.
    pub fn duration_ps(&self) -> u64 {
        self.end_ps.saturating_sub(self.start_ps)
    }
}

/// Track id used for spans with no channel (`channel: None`).
pub const MASTER_TID: u64 = 0;

fn tid_of(channel: Option<u32>) -> u64 {
    match channel {
        None => MASTER_TID,
        Some(ch) => ch as u64 + 1,
    }
}

fn ps_to_us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Builds the Chrome `trace_event` JSON value for a set of spans plus
/// per-channel bandwidth timelines. `channels` pairs each channel id with
/// its timeline; pass an empty slice to export spans only.
pub fn chrome_trace(spans: &[SpanEvent], channels: &[(u32, &Timeline)]) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Track names first: one "process", master track 0, channels 1..N.
    events.push(json!({
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": "mcm memory subsystem"}
    }));
    events.push(json!({
        "ph": "M", "name": "thread_name", "pid": 0, "tid": MASTER_TID,
        "args": {"name": "master"}
    }));
    for &(ch, _) in channels {
        events.push(json!({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid_of(Some(ch)),
            "args": {"name": format!("channel {ch}")}
        }));
    }

    for span in spans {
        events.push(json!({
            "ph": "X",
            "name": span.name,
            "cat": "sim",
            "pid": 0,
            "tid": tid_of(span.channel),
            "ts": ps_to_us(span.start_ps),
            "dur": ps_to_us(span.end_ps.max(span.start_ps) - span.start_ps),
        }));
    }

    for &(ch, timeline) in channels {
        let width = timeline.bucket_ps();
        for (i, bucket) in timeline.buckets().iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let ts = ps_to_us(width.saturating_mul(i as u64));
            events.push(json!({
                "ph": "C",
                "name": format!("ch{ch} bytes"),
                "pid": 0,
                "tid": tid_of(Some(ch)),
                "ts": ts,
                "args": {"read": bucket.read_bytes, "write": bucket.write_bytes},
            }));
            if bucket.energy_pj != 0.0 {
                events.push(json!({
                    "ph": "C",
                    "name": format!("ch{ch} energy_pj"),
                    "pid": 0,
                    "tid": tid_of(Some(ch)),
                    "ts": ts,
                    "args": {"pj": bucket.energy_pj},
                }));
            }
        }
    }

    json!({
        "traceEvents": events,
        "displayTimeUnit": "ns",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_become_complete_events() {
        let spans = vec![
            SpanEvent {
                name: "txn".into(),
                channel: Some(0),
                start_ps: 1_000_000,
                end_ps: 3_000_000,
            },
            SpanEvent {
                name: "frame".into(),
                channel: None,
                start_ps: 0,
                end_ps: 10_000_000,
            },
        ];
        let trace = chrome_trace(&spans, &[]);
        let events = trace["traceEvents"].as_array().unwrap();
        let xs: Vec<&Value> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0]["ts"], 1.0);
        assert_eq!(xs[0]["dur"], 2.0);
        assert_eq!(xs[0]["tid"], 1);
        assert_eq!(xs[1]["tid"], MASTER_TID);
    }

    #[test]
    fn timelines_become_counter_events() {
        let mut t = Timeline::new(1_000_000);
        t.add_bytes(0, false, 64);
        t.add_bytes(2_000_000, true, 32);
        let trace = chrome_trace(&[], &[(1, &t)]);
        let events = trace["traceEvents"].as_array().unwrap();
        let cs: Vec<&Value> = events.iter().filter(|e| e["ph"] == "C").collect();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0]["args"]["read"], 64);
        assert_eq!(cs[1]["args"]["write"], 32);
        assert_eq!(cs[1]["ts"], 2.0);
    }

    #[test]
    fn every_event_has_the_required_fields() {
        let spans = vec![SpanEvent {
            name: "txn".into(),
            channel: Some(2),
            start_ps: 5,
            end_ps: 10,
        }];
        let mut t = Timeline::new(100);
        t.add_energy(0, 1.0);
        let trace = chrome_trace(&spans, &[(2, &t)]);
        for event in trace["traceEvents"].as_array().unwrap() {
            assert!(event["ph"].as_str().is_some());
            assert!(event["pid"].as_u64().is_some());
            assert!(event["tid"].as_u64().is_some());
        }
    }
}
