//! [`StatsRecorder`] — the keep-everything recorder — and its serializable
//! [`ObsReport`] output.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::counters::{BankCounters, ChannelCounters};
use crate::histogram::{HistogramSummary, LogHistogram};
use crate::recorder::{CommandKind, FaultKind, Recorder, RowOutcome};
use crate::timeline::{Timeline, TimelineBucket};
use crate::trace::{chrome_trace, SpanEvent};

/// Tuning knobs for [`StatsRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Timeline bucket width, picoseconds (default 1 µs).
    pub timeline_bucket_ps: u64,
    /// Spans kept before further spans are counted but dropped
    /// (default 100 000). Dropped spans surface in
    /// [`ObsReport::dropped_spans`] — never silently.
    pub max_spans: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            timeline_bucket_ps: 1_000_000,
            max_spans: 100_000,
        }
    }
}

/// Event-energy totals split by cause, pJ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Row activations.
    pub activate_pj: f64,
    /// Read bursts.
    pub read_pj: f64,
    /// Write bursts.
    pub write_pj: f64,
    /// Refreshes.
    pub refresh_pj: f64,
    /// Anything else attributed per-event.
    pub other_pj: f64,
    /// Background (state-residency) energy.
    pub background_pj: f64,
}

impl EnergyBreakdown {
    fn add_event(&mut self, kind: CommandKind, pj: f64) {
        match kind {
            CommandKind::Activate => self.activate_pj += pj,
            CommandKind::Read => self.read_pj += pj,
            CommandKind::Write => self.write_pj += pj,
            CommandKind::Refresh => self.refresh_pj += pj,
            _ => self.other_pj += pj,
        }
    }

    /// Event plus background total, pJ.
    pub fn total_pj(&self) -> f64 {
        self.activate_pj
            + self.read_pj
            + self.write_pj
            + self.refresh_pj
            + self.other_pj
            + self.background_pj
    }
}

#[derive(Debug)]
struct ChannelStats {
    counters: ChannelCounters,
    banks: BTreeMap<u8, BankCounters>,
    latency: LogHistogram,
    queue_depth: LogHistogram,
    energy: EnergyBreakdown,
    timeline: Timeline,
    faults: BTreeMap<FaultKind, u64>,
}

impl ChannelStats {
    fn new(bucket_ps: u64) -> ChannelStats {
        ChannelStats {
            counters: ChannelCounters::default(),
            banks: BTreeMap::new(),
            latency: LogHistogram::new(),
            queue_depth: LogHistogram::new(),
            energy: EnergyBreakdown::default(),
            timeline: Timeline::new(bucket_ps),
            faults: BTreeMap::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    channels: BTreeMap<u32, ChannelStats>,
    spans: Vec<SpanEvent>,
    dropped_spans: u64,
    gauges: Vec<GaugeSample>,
    kernel_events: u64,
    kernel_pending: LogHistogram,
    tenants: BTreeMap<u32, TenantTotals>,
}

#[derive(Debug, Default, Clone, Copy)]
struct TenantTotals {
    ops: u64,
    bytes_read: u64,
    bytes_written: u64,
}

/// A recorder that keeps everything: counters, histograms, timelines,
/// spans, and gauges, behind one mutex.
///
/// Share it via `Arc` and attach it with
/// `RunOptions::default().with_recorder(...)`; when the run finishes, call
/// [`StatsRecorder::report`] to distill an [`ObsReport`].
#[derive(Debug)]
pub struct StatsRecorder {
    config: ObsConfig,
    inner: Mutex<Inner>,
}

impl Default for StatsRecorder {
    fn default() -> Self {
        StatsRecorder::new()
    }
}

impl StatsRecorder {
    /// A recorder with [`ObsConfig::default`] settings.
    pub fn new() -> StatsRecorder {
        StatsRecorder::with_config(ObsConfig::default())
    }

    /// A recorder with explicit settings.
    pub fn with_config(config: ObsConfig) -> StatsRecorder {
        StatsRecorder {
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// Non-empty latency-histogram buckets for `channel` as
    /// `(lower_ps, upper_ps, count)` rows — the bucket detail behind the
    /// [`HistogramSummary`] percentiles, for callers that want to render
    /// the full distribution.
    pub fn latency_buckets(&self, channel: u32) -> Vec<(u64, u64, u64)> {
        let inner = self.inner.lock().unwrap();
        inner
            .channels
            .get(&channel)
            .map(|stats| stats.latency.nonzero_buckets())
            .unwrap_or_default()
    }

    fn with_channel<R>(&self, channel: u32, f: impl FnOnce(&mut ChannelStats) -> R) -> R {
        let mut inner = self.inner.lock().unwrap();
        let bucket = self.config.timeline_bucket_ps;
        let stats = inner
            .channels
            .entry(channel)
            .or_insert_with(|| ChannelStats::new(bucket));
        f(stats)
    }

    /// Distills everything recorded so far. Cheap enough to call repeatedly;
    /// the recorder keeps accumulating afterwards.
    pub fn report(&self) -> ObsReport {
        let inner = self.inner.lock().unwrap();
        let channels = inner
            .channels
            .iter()
            .map(|(&channel, stats)| ChannelObsReport {
                channel,
                counters: stats.counters.clone(),
                banks: stats
                    .banks
                    .iter()
                    .map(|(&bank, counters)| BankObsReport {
                        bank,
                        counters: counters.clone(),
                    })
                    .collect(),
                latency_ps: stats.latency.summary(),
                queue_depth: stats.queue_depth.summary(),
                energy: stats.energy,
                timeline: stats.timeline.buckets().to_vec(),
                faults: stats
                    .faults
                    .iter()
                    .map(|(&kind, &count)| FaultCount { kind, count })
                    .collect(),
            })
            .collect();
        ObsReport {
            timeline_bucket_ps: self.config.timeline_bucket_ps,
            channels,
            spans: inner.spans.clone(),
            dropped_spans: inner.dropped_spans,
            gauges: inner.gauges.clone(),
            kernel: KernelObsReport {
                events: inner.kernel_events,
                pending: inner.kernel_pending.summary(),
            },
            tenants: inner
                .tenants
                .iter()
                .map(|(&tenant, totals)| TenantObsReport {
                    tenant,
                    ops: totals.ops,
                    bytes_read: totals.bytes_read,
                    bytes_written: totals.bytes_written,
                })
                .collect(),
        }
    }
}

impl Recorder for StatsRecorder {
    fn record_command(&self, channel: u32, bank: u8, kind: CommandKind, at_ps: u64) {
        let _ = at_ps;
        self.with_channel(channel, |stats| {
            stats.counters.commands.bump(kind);
            stats.banks.entry(bank).or_default().commands.bump(kind);
        });
    }

    fn record_row_outcome(&self, channel: u32, bank: u8, outcome: RowOutcome) {
        self.with_channel(channel, |stats| {
            stats.counters.rows.bump(outcome);
            stats.banks.entry(bank).or_default().rows.bump(outcome);
        });
    }

    fn record_latency(&self, channel: u32, latency_ps: u64) {
        self.with_channel(channel, |stats| {
            stats.counters.requests += 1;
            stats.latency.record(latency_ps);
        });
    }

    fn record_queue_depth(&self, channel: u32, depth: u64) {
        self.with_channel(channel, |stats| stats.queue_depth.record(depth));
    }

    fn record_bytes(&self, channel: u32, write: bool, bytes: u64, at_ps: u64) {
        self.with_channel(channel, |stats| {
            if write {
                stats.counters.bytes_written += bytes;
            } else {
                stats.counters.bytes_read += bytes;
            }
            stats.timeline.add_bytes(at_ps, write, bytes);
        });
    }

    fn record_energy(&self, channel: u32, kind: CommandKind, pj: f64, at_ps: u64) {
        self.with_channel(channel, |stats| {
            stats.energy.add_event(kind, pj);
            stats.timeline.add_energy(at_ps, pj);
        });
    }

    fn record_background(&self, channel: u32, from_ps: u64, to_ps: u64, pj: f64) {
        self.with_channel(channel, |stats| {
            stats.energy.background_pj += pj;
            stats.timeline.add_energy_span(from_ps, to_ps, pj);
        });
    }

    fn record_span(&self, name: &str, channel: Option<u32>, start_ps: u64, end_ps: u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() >= self.config.max_spans {
            inner.dropped_spans += 1;
        } else {
            inner.spans.push(SpanEvent {
                name: name.to_string(),
                channel,
                start_ps,
                end_ps,
            });
        }
    }

    fn record_gauge(&self, name: &str, channel: Option<u32>, value: f64) {
        self.inner.lock().unwrap().gauges.push(GaugeSample {
            name: name.to_string(),
            channel,
            value,
        });
    }

    fn record_sim_event(&self, pending: u64, at_ps: u64) {
        let _ = at_ps;
        let mut inner = self.inner.lock().unwrap();
        inner.kernel_events += 1;
        inner.kernel_pending.record(pending);
    }

    fn record_fault(&self, channel: u32, kind: FaultKind, at_ps: u64) {
        let _ = at_ps;
        self.with_channel(channel, |stats| {
            *stats.faults.entry(kind).or_default() += 1;
        });
    }

    fn record_tenant_op(&self, tenant: u32, write: bool, bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        let totals = inner.tenants.entry(tenant).or_default();
        totals.ops += 1;
        if write {
            totals.bytes_written += bytes;
        } else {
            totals.bytes_read += bytes;
        }
    }
}

/// One named scalar sampled during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Gauge name, e.g. `"core_mw"`.
    pub name: String,
    /// Channel the value belongs to; `None` for run-wide gauges.
    pub channel: Option<u32>,
    /// The sampled value.
    pub value: f64,
}

/// Per-bank slice of an [`ObsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankObsReport {
    /// Bank index within the channel.
    pub bank: u8,
    /// Everything counted for the bank.
    pub counters: BankCounters,
}

/// How often one fault or degradation event fired on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCount {
    /// The fault/degradation event kind.
    pub kind: FaultKind,
    /// How many times it was recorded.
    pub count: u64,
}

/// Per-channel slice of an [`ObsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelObsReport {
    /// Channel index.
    pub channel: u32,
    /// Channel-level counters.
    pub counters: ChannelCounters,
    /// Per-bank counters, ascending bank index.
    pub banks: Vec<BankObsReport>,
    /// Request-latency summary, picoseconds.
    pub latency_ps: HistogramSummary,
    /// Write-queue-depth summary, entries.
    pub queue_depth: HistogramSummary,
    /// Energy split by cause.
    pub energy: EnergyBreakdown,
    /// Bandwidth/energy timeline buckets (width
    /// [`ObsReport::timeline_bucket_ps`]).
    pub timeline: Vec<TimelineBucket>,
    /// Fault/degradation event counts, ascending [`FaultKind`] order.
    /// Empty for healthy runs.
    pub faults: Vec<FaultCount>,
}

/// Event-kernel statistics: how hard the discrete-event engine itself
/// worked. All zeros when the run never touched the event kernel (the
/// direct-call path).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelObsReport {
    /// Events fired by the kernel.
    pub events: u64,
    /// Queue depth (events still pending) sampled at every fire.
    pub pending: HistogramSummary,
}

/// Per-tenant traffic totals for a multi-tenant workload run.
///
/// Empty for single-tenant runs: the simulator only attributes ops to
/// tenants when the workload defines tenant address spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantObsReport {
    /// Tenant index within the workload (0-based).
    pub tenant: u32,
    /// Memory operations attributed to this tenant.
    pub ops: u64,
    /// Bytes read on behalf of this tenant.
    pub bytes_read: u64,
    /// Bytes written on behalf of this tenant.
    pub bytes_written: u64,
}

/// Everything a [`StatsRecorder`] captured, in serializable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Width of every timeline bucket, picoseconds.
    pub timeline_bucket_ps: u64,
    /// Per-channel breakdowns, ascending channel index.
    pub channels: Vec<ChannelObsReport>,
    /// Captured spans, in recording order.
    pub spans: Vec<SpanEvent>,
    /// Spans discarded after [`ObsConfig::max_spans`] was hit.
    pub dropped_spans: u64,
    /// Run-wide scalars (power summaries etc.).
    pub gauges: Vec<GaugeSample>,
    /// Event-kernel statistics (zeros on the direct-call path).
    pub kernel: KernelObsReport,
    /// Per-tenant traffic totals, ascending tenant index. Empty unless
    /// the run used a multi-tenant workload.
    pub tenants: Vec<TenantObsReport>,
}

fn ps_opt_to_ns(ps: Option<u64>) -> f64 {
    ps.map(|p| p as f64 / 1e3).unwrap_or(f64::NAN)
}

impl ObsReport {
    /// Compact one-screen distillation for sweep outputs.
    pub fn summary(&self) -> ObsSummary {
        let mut s = ObsSummary::default();
        for ch in &self.channels {
            s.requests += ch.counters.requests;
            s.activates += ch.counters.commands.activates;
            s.refreshes += ch.counters.commands.refreshes;
            s.bytes_read += ch.counters.bytes_read;
            s.bytes_written += ch.counters.bytes_written;
            s.row_hits += ch.counters.rows.hits;
            s.row_total += ch.counters.rows.total();
            if let Some(p99) = ch.latency_ps.p99 {
                s.latency_p99_ns = Some(s.latency_p99_ns.unwrap_or(0.0).max(p99 as f64 / 1e3));
            }
        }
        s.dropped_spans = self.dropped_spans;
        s
    }

    /// Pretty JSON of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ObsReport is always serializable")
    }

    /// Per-channel counters and latency percentiles as CSV (one header row,
    /// one row per channel).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "channel,requests,activates,reads,writes,precharges,refreshes,\
             power_down_entries,power_down_exits,row_hits,row_misses,row_conflicts,\
             bytes_read,bytes_written,latency_p50_ns,latency_p95_ns,latency_p99_ns,\
             latency_max_ns,energy_pj\n",
        );
        for ch in &self.channels {
            let c = &ch.counters;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
                ch.channel,
                c.requests,
                c.commands.activates,
                c.commands.reads,
                c.commands.writes,
                c.commands.precharges + c.commands.precharge_alls,
                c.commands.refreshes,
                c.commands.power_down_entries,
                c.commands.power_down_exits,
                c.rows.hits,
                c.rows.misses,
                c.rows.conflicts,
                c.bytes_read,
                c.bytes_written,
                ps_opt_to_ns(ch.latency_ps.p50),
                ps_opt_to_ns(ch.latency_ps.p95),
                ps_opt_to_ns(ch.latency_ps.p99),
                ps_opt_to_ns(ch.latency_ps.max),
                ch.energy.total_pj(),
            );
        }
        out
    }

    /// Chrome `trace_event` JSON (Perfetto / `chrome://tracing` loadable).
    pub fn to_chrome_trace(&self) -> String {
        // Rebuild per-channel timelines from the report's buckets so the
        // export works on deserialized reports too.
        let timelines: Vec<(u32, Timeline)> = self
            .channels
            .iter()
            .map(|ch| {
                let mut t = Timeline::new(self.timeline_bucket_ps);
                for (i, bucket) in ch.timeline.iter().enumerate() {
                    let at = self.timeline_bucket_ps * i as u64;
                    t.add_bytes(at, false, bucket.read_bytes);
                    t.add_bytes(at, true, bucket.write_bytes);
                    t.add_energy(at, bucket.energy_pj);
                }
                (ch.channel, t)
            })
            .collect();
        let refs: Vec<(u32, &Timeline)> = timelines.iter().map(|(ch, t)| (*ch, t)).collect();
        serde_json::to_string_pretty(&chrome_trace(&self.spans, &refs))
            .expect("trace is always serializable")
    }

    /// Human-readable multi-line rendering for terminals.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for ch in &self.channels {
            let c = &ch.counters;
            let _ = writeln!(out, "channel {}", ch.channel);
            let _ = writeln!(
                out,
                "  commands   ACT {}  RD {}  WR {}  PRE {}  REF {}  PDE {}  PDX {}",
                c.commands.activates,
                c.commands.reads,
                c.commands.writes,
                c.commands.precharges + c.commands.precharge_alls,
                c.commands.refreshes,
                c.commands.power_down_entries,
                c.commands.power_down_exits,
            );
            let hit_rate = c
                .rows
                .hit_rate()
                .map(|r| format!("{:.1} %", r * 100.0))
                .unwrap_or_else(|| "n/a".into());
            let _ = writeln!(
                out,
                "  row buffer hit {}  miss {}  conflict {}  (hit rate {})",
                c.rows.hits, c.rows.misses, c.rows.conflicts, hit_rate
            );
            let _ = writeln!(
                out,
                "  traffic    {} read B, {} written B over {} requests",
                c.bytes_read, c.bytes_written, c.requests
            );
            let l = &ch.latency_ps;
            let _ = writeln!(
                out,
                "  latency    p50 {:.1} ns  p95 {:.1} ns  p99 {:.1} ns  max {:.1} ns",
                ps_opt_to_ns(l.p50),
                ps_opt_to_ns(l.p95),
                ps_opt_to_ns(l.p99),
                ps_opt_to_ns(l.max),
            );
            let q = &ch.queue_depth;
            if q.count > 0 {
                let _ = writeln!(
                    out,
                    "  queue      p50 {}  p99 {}  max {} pending writes",
                    q.p50.unwrap_or(0),
                    q.p99.unwrap_or(0),
                    q.max.unwrap_or(0),
                );
            }
            let e = &ch.energy;
            let _ = writeln!(
                out,
                "  energy     {:.1} pJ (ACT {:.1}, RD {:.1}, WR {:.1}, REF {:.1}, background {:.1})",
                e.total_pj(),
                e.activate_pj,
                e.read_pj,
                e.write_pj,
                e.refresh_pj,
                e.background_pj,
            );
            if !ch.faults.is_empty() {
                let parts: Vec<String> = ch
                    .faults
                    .iter()
                    .map(|f| format!("{} {}", f.kind.label(), f.count))
                    .collect();
                let _ = writeln!(out, "  faults     {}", parts.join("  "));
            }
        }
        if self.kernel.events > 0 {
            let _ = writeln!(
                out,
                "kernel: {} events fired, pending p50 {}  p99 {}  max {}",
                self.kernel.events,
                self.kernel.pending.p50.unwrap_or(0),
                self.kernel.pending.p99.unwrap_or(0),
                self.kernel.pending.max.unwrap_or(0),
            );
        }
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "tenant {}: {} ops, {} read B, {} written B",
                t.tenant, t.ops, t.bytes_read, t.bytes_written
            );
        }
        if !self.spans.is_empty() || self.dropped_spans > 0 {
            let _ = writeln!(
                out,
                "spans: {} captured, {} dropped",
                self.spans.len(),
                self.dropped_spans
            );
        }
        for gauge in &self.gauges {
            let scope = gauge
                .channel
                .map(|ch| format!("ch{ch} "))
                .unwrap_or_default();
            let _ = writeln!(out, "gauge {}{} = {:.3}", scope, gauge.name, gauge.value);
        }
        out
    }
}

/// One-line distillation of an [`ObsReport`] for sweep summaries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// Requests retired across all channels.
    pub requests: u64,
    /// Row activations across all channels.
    pub activates: u64,
    /// Refreshes across all channels.
    pub refreshes: u64,
    /// Bytes read across all channels.
    pub bytes_read: u64,
    /// Bytes written across all channels.
    pub bytes_written: u64,
    /// Row-buffer hits across all channels.
    pub row_hits: u64,
    /// Row-buffer decisions across all channels.
    pub row_total: u64,
    /// Worst per-channel p99 request latency, ns.
    pub latency_p99_ns: Option<f64>,
    /// Spans lost to the span cap (0 means the trace is complete).
    pub dropped_spans: u64,
}

impl ObsSummary {
    /// Row-buffer hit rate over every channel, when any access was decided.
    pub fn row_hit_rate(&self) -> Option<f64> {
        (self.row_total > 0).then(|| self.row_hits as f64 / self.row_total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a fixed five-request scenario on two channels and checks
    /// every aggregate against hand-computed values.
    fn tiny_trace() -> StatsRecorder {
        let rec = StatsRecorder::with_config(ObsConfig {
            timeline_bucket_ps: 1_000,
            max_spans: 4,
        });
        // Channel 0, bank 0: miss (ACT+RD), then two hits (RD, RD).
        rec.record_row_outcome(0, 0, RowOutcome::Miss);
        rec.record_command(0, 0, CommandKind::Activate, 0);
        rec.record_command(0, 0, CommandKind::Read, 100);
        rec.record_row_outcome(0, 0, RowOutcome::Hit);
        rec.record_command(0, 0, CommandKind::Read, 500);
        rec.record_row_outcome(0, 0, RowOutcome::Hit);
        rec.record_command(0, 0, CommandKind::Read, 900);
        rec.record_bytes(0, false, 96, 900);
        rec.record_latency(0, 1_000);
        rec.record_latency(0, 2_000);
        rec.record_latency(0, 8_000);
        // Channel 1, bank 2: one conflict write.
        rec.record_row_outcome(1, 2, RowOutcome::Conflict);
        rec.record_command(1, 2, CommandKind::Precharge, 1_000);
        rec.record_command(1, 2, CommandKind::Activate, 1_200);
        rec.record_command(1, 2, CommandKind::Write, 1_500);
        rec.record_bytes(1, true, 32, 1_500);
        rec.record_latency(1, 4_000);
        rec.record_latency(1, 4_000);
        rec.record_energy(0, CommandKind::Activate, 10.0, 0);
        rec.record_background(0, 0, 2_000, 4.0);
        rec.record_span("txn", Some(0), 0, 2_000);
        rec
    }

    #[test]
    fn counters_match_hand_computed_totals() {
        let report = tiny_trace().report();
        assert_eq!(report.channels.len(), 2);
        let ch0 = &report.channels[0];
        assert_eq!(ch0.channel, 0);
        assert_eq!(ch0.counters.commands.activates, 1);
        assert_eq!(ch0.counters.commands.reads, 3);
        assert_eq!(ch0.counters.rows.hits, 2);
        assert_eq!(ch0.counters.rows.misses, 1);
        assert_eq!(ch0.counters.rows.hit_rate(), Some(2.0 / 3.0));
        assert_eq!(ch0.counters.bytes_read, 96);
        assert_eq!(ch0.counters.requests, 3);
        assert_eq!(ch0.banks.len(), 1);
        assert_eq!(ch0.banks[0].bank, 0);
        assert_eq!(ch0.banks[0].counters.commands.reads, 3);

        let ch1 = &report.channels[1];
        assert_eq!(ch1.counters.commands.writes, 1);
        assert_eq!(ch1.counters.commands.precharges, 1);
        assert_eq!(ch1.counters.rows.conflicts, 1);
        assert_eq!(ch1.counters.bytes_written, 32);
        assert_eq!(ch1.banks[0].bank, 2);
    }

    #[test]
    fn latency_percentiles_match_hand_computed_buckets() {
        let report = tiny_trace().report();
        let l = &report.channels[0].latency_ps;
        // Samples 1000, 2000, 8000 → buckets [512,1023], [1024,2047],
        // [4096,8191]. p50 rank 2 → 2047; p99 rank 3 → 8191, clamped 8000.
        assert_eq!(l.count, 3);
        assert_eq!(l.p50, Some(2_047));
        assert_eq!(l.p99, Some(8_000));
        assert_eq!(l.max, Some(8_000));
        // Channel 1: both samples 4000 → bucket [2048,4095] clamped to 4000.
        let l1 = &report.channels[1].latency_ps;
        assert_eq!(l1.p50, Some(4_000));
        assert_eq!(l1.p99, Some(4_000));
    }

    #[test]
    fn energy_splits_between_event_and_background() {
        let report = tiny_trace().report();
        let e = &report.channels[0].energy;
        assert_eq!(e.activate_pj, 10.0);
        assert_eq!(e.background_pj, 4.0);
        assert_eq!(e.total_pj(), 14.0);
        // Background spread 2 pJ into each of the first two 1 ns buckets;
        // the 10 pJ ACT lands in bucket 0.
        let t = &report.channels[0].timeline;
        assert!((t[0].energy_pj - 12.0).abs() < 1e-12);
        assert!((t[1].energy_pj - 2.0).abs() < 1e-12);
    }

    #[test]
    fn span_cap_counts_drops_instead_of_hiding_them() {
        let rec = StatsRecorder::with_config(ObsConfig {
            timeline_bucket_ps: 1_000,
            max_spans: 2,
        });
        for i in 0..5u64 {
            rec.record_span("txn", None, i, i + 1);
        }
        let report = rec.report();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.dropped_spans, 3);
        assert!(report.render_text().contains("3 dropped"));
    }

    #[test]
    fn report_summary_aggregates_channels() {
        let s = tiny_trace().report().summary();
        assert_eq!(s.requests, 5);
        assert_eq!(s.activates, 2);
        assert_eq!(s.bytes_read, 96);
        assert_eq!(s.bytes_written, 32);
        assert_eq!(s.row_hits, 2);
        assert_eq!(s.row_total, 4);
        assert_eq!(s.row_hit_rate(), Some(0.5));
        assert_eq!(s.latency_p99_ns, Some(8.0));
    }

    #[test]
    fn exports_are_well_formed() {
        let report = tiny_trace().report();
        // JSON round-trips.
        let back: ObsReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
        // CSV has a header plus one row per channel.
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,3,1,3,0,"));
        // Text mentions both channels and the hit rate.
        let text = report.render_text();
        assert!(text.contains("channel 0"));
        assert!(text.contains("channel 1"));
        assert!(text.contains("hit rate 66.7 %"));
        // Chrome trace parses and contains the span.
        let trace: serde_json::Value = serde_json::from_str(&report.to_chrome_trace()).unwrap();
        assert!(trace["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .any(|e| e["ph"] == "X" && e["name"] == "txn"));
    }

    #[test]
    fn kernel_events_accumulate_and_render() {
        let rec = StatsRecorder::new();
        assert_eq!(rec.report().kernel.events, 0);
        rec.record_sim_event(3, 100);
        rec.record_sim_event(1, 200);
        rec.record_sim_event(0, 300);
        let report = rec.report();
        assert_eq!(report.kernel.events, 3);
        assert_eq!(report.kernel.pending.count, 3);
        assert_eq!(report.kernel.pending.max, Some(3));
        assert!(report.render_text().contains("kernel: 3 events fired"));
    }

    #[test]
    fn fault_counts_accumulate_per_channel_and_render() {
        let rec = StatsRecorder::new();
        rec.record_fault(1, FaultKind::FlakyHit, 100);
        rec.record_fault(1, FaultKind::FlakyHit, 200);
        rec.record_fault(1, FaultKind::Retry, 250);
        rec.record_fault(2, FaultKind::ChannelLost, 0);
        let report = rec.report();
        let ch1 = report.channels.iter().find(|c| c.channel == 1).unwrap();
        assert_eq!(
            ch1.faults,
            vec![
                FaultCount {
                    kind: FaultKind::FlakyHit,
                    count: 2
                },
                FaultCount {
                    kind: FaultKind::Retry,
                    count: 1
                },
            ]
        );
        let text = report.render_text();
        assert!(text.contains("faults     flaky-hit 2  retry 1"));
        assert!(text.contains("faults     channel-lost 1"));
        // Healthy channels keep the fault line out of the text entirely.
        let healthy = tiny_trace().report();
        assert!(!healthy.render_text().contains("faults"));
        // And the new field round-trips through JSON.
        let back: ObsReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn tenant_ops_accumulate_and_render() {
        let rec = StatsRecorder::new();
        rec.record_tenant_op(1, false, 100);
        rec.record_tenant_op(0, true, 64);
        rec.record_tenant_op(1, true, 36);
        let report = rec.report();
        assert_eq!(
            report.tenants,
            vec![
                TenantObsReport {
                    tenant: 0,
                    ops: 1,
                    bytes_read: 0,
                    bytes_written: 64
                },
                TenantObsReport {
                    tenant: 1,
                    ops: 2,
                    bytes_read: 100,
                    bytes_written: 36
                },
            ]
        );
        let text = report.render_text();
        assert!(text.contains("tenant 0: 1 ops, 0 read B, 64 written B"));
        assert!(text.contains("tenant 1: 2 ops, 100 read B, 36 written B"));
        // Single-tenant runs keep the tenant lines out entirely.
        assert!(!tiny_trace().report().render_text().contains("tenant"));
        // And the field round-trips through JSON.
        let back: ObsReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn gauges_render_with_scope() {
        let rec = StatsRecorder::new();
        rec.record_gauge("core_mw", None, 12.5);
        rec.record_gauge("interface_mw", Some(1), 3.25);
        let text = rec.report().render_text();
        assert!(text.contains("gauge core_mw = 12.500"));
        assert!(text.contains("gauge ch1 interface_mw = 3.250"));
    }
}
