//! Time-bucketed bandwidth and energy timelines.

use serde::{Deserialize, Serialize};

/// Hard cap on bucket count so a pathological bucket width cannot eat the
/// heap; events past the cap fold into the last bucket and set
/// [`Timeline::clamped`].
pub const MAX_BUCKETS: usize = 1 << 20;

/// One fixed-width slice of simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelineBucket {
    /// Bytes read during the bucket.
    pub read_bytes: u64,
    /// Bytes written during the bucket.
    pub write_bytes: u64,
    /// Energy (event + background) attributed to the bucket, pJ.
    pub energy_pj: f64,
}

impl TimelineBucket {
    /// Whether anything landed in this bucket.
    pub fn is_empty(&self) -> bool {
        self.read_bytes == 0 && self.write_bytes == 0 && self.energy_pj == 0.0
    }
}

/// A growable sequence of fixed-width [`TimelineBucket`]s starting at t = 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    bucket_ps: u64,
    buckets: Vec<TimelineBucket>,
    /// True when an event fell past [`MAX_BUCKETS`] and was folded into the
    /// last bucket — the timeline tail is then unreliable.
    pub clamped: bool,
}

impl Timeline {
    /// A timeline with `bucket_ps`-wide buckets (minimum 1 ps).
    pub fn new(bucket_ps: u64) -> Timeline {
        Timeline {
            bucket_ps: bucket_ps.max(1),
            buckets: Vec::new(),
            clamped: false,
        }
    }

    /// Bucket width in picoseconds.
    pub fn bucket_ps(&self) -> u64 {
        self.bucket_ps
    }

    /// The buckets recorded so far (index `i` covers
    /// `[i·bucket_ps, (i+1)·bucket_ps)`).
    pub fn buckets(&self) -> &[TimelineBucket] {
        &self.buckets
    }

    fn index_of(&mut self, at_ps: u64) -> usize {
        let raw = (at_ps / self.bucket_ps) as usize;
        let idx = if raw >= MAX_BUCKETS {
            self.clamped = true;
            MAX_BUCKETS - 1
        } else {
            raw
        };
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, TimelineBucket::default());
        }
        idx
    }

    /// Adds `bytes` of traffic at `at_ps`.
    pub fn add_bytes(&mut self, at_ps: u64, write: bool, bytes: u64) {
        let idx = self.index_of(at_ps);
        if write {
            self.buckets[idx].write_bytes += bytes;
        } else {
            self.buckets[idx].read_bytes += bytes;
        }
    }

    /// Adds `pj` of energy at the instant `at_ps`.
    pub fn add_energy(&mut self, at_ps: u64, pj: f64) {
        let idx = self.index_of(at_ps);
        self.buckets[idx].energy_pj += pj;
    }

    /// Spreads `pj` uniformly over `[from_ps, to_ps)`, splitting it across
    /// every bucket the interval overlaps. Long idle intervals therefore
    /// show as a flat background floor instead of one spike at the end.
    pub fn add_energy_span(&mut self, from_ps: u64, to_ps: u64, pj: f64) {
        if to_ps <= from_ps {
            if pj != 0.0 {
                self.add_energy(from_ps, pj);
            }
            return;
        }
        let total_ps = (to_ps - from_ps) as f64;
        let first = from_ps / self.bucket_ps;
        let last = (to_ps - 1) / self.bucket_ps;
        for b in first..=last {
            let bucket_start = b * self.bucket_ps;
            let bucket_end = bucket_start.saturating_add(self.bucket_ps);
            let overlap = to_ps.min(bucket_end) - from_ps.max(bucket_start);
            let share = pj * overlap as f64 / total_ps;
            self.add_energy(bucket_start, share);
            if (b as usize) >= MAX_BUCKETS - 1 {
                // Everything further folds into the last bucket anyway.
                let rest_start = bucket_end.min(to_ps);
                if rest_start < to_ps {
                    let rest = pj * (to_ps - rest_start) as f64 / total_ps;
                    self.add_energy(bucket_start, rest);
                }
                break;
            }
        }
    }

    /// Mean bandwidth of bucket `index`, bytes per second.
    pub fn bandwidth_bytes_per_s(&self, index: usize) -> Option<f64> {
        let b = self.buckets.get(index)?;
        let seconds = self.bucket_ps as f64 * 1e-12;
        Some((b.read_bytes + b.write_bytes) as f64 / seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_land_in_their_bucket() {
        let mut t = Timeline::new(1_000);
        t.add_bytes(0, false, 64);
        t.add_bytes(999, true, 32);
        t.add_bytes(1_000, false, 16);
        assert_eq!(t.buckets().len(), 2);
        assert_eq!(t.buckets()[0].read_bytes, 64);
        assert_eq!(t.buckets()[0].write_bytes, 32);
        assert_eq!(t.buckets()[1].read_bytes, 16);
    }

    #[test]
    fn energy_span_spreads_uniformly() {
        let mut t = Timeline::new(1_000);
        // 3 pJ over [500, 3500): 2/6 in bucket 0 is wrong — overlaps are
        // 500, 1000, 1000, 500 ps of a 3000 ps interval → 0.5, 1, 1, 0.5 pJ.
        t.add_energy_span(500, 3_500, 3.0);
        let e: Vec<f64> = t.buckets().iter().map(|b| b.energy_pj).collect();
        assert_eq!(e.len(), 4);
        assert!((e[0] - 0.5).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
        assert!((e[2] - 1.0).abs() < 1e-12);
        assert!((e[3] - 0.5).abs() < 1e-12);
        let total: f64 = e.iter().sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_span_degrades_to_instant() {
        let mut t = Timeline::new(1_000);
        t.add_energy_span(2_500, 2_500, 1.5);
        assert!((t.buckets()[2].energy_pj - 1.5).abs() < 1e-12);
    }

    #[test]
    fn far_future_events_clamp_instead_of_allocating() {
        let mut t = Timeline::new(1);
        t.add_bytes(u64::MAX, false, 1);
        assert!(t.clamped);
        assert_eq!(t.buckets().len(), MAX_BUCKETS);
        assert_eq!(t.buckets()[MAX_BUCKETS - 1].read_bytes, 1);
    }

    #[test]
    fn bandwidth_uses_bucket_width() {
        let mut t = Timeline::new(1_000_000); // 1 µs buckets
        t.add_bytes(0, false, 1_000); // 1000 B / µs = 1e9 B/s
        let bw = t.bandwidth_bytes_per_s(0).unwrap();
        assert!((bw - 1e9).abs() < 1.0);
    }
}
