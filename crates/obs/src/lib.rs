//! # mcm-obs — observability for the mcmem simulator
//!
//! The paper's whole argument rests on *visibility* into memory behaviour:
//! per-stage traffic (Table I), per-channel bandwidth and utilisation, and
//! power split into core / interface / power-down components. This crate is
//! the instrumentation seam that makes those quantities observable on any
//! run:
//!
//! * [`Recorder`] — the trait every simulated layer reports through, with
//!   no-op defaults so the disabled path costs one branch;
//! * [`NullRecorder`] — keeps nothing, for APIs that demand a recorder;
//! * [`StatsRecorder`] — keeps per-channel/per-bank [counters](ChannelCounters),
//!   log-scaled latency and queue-depth [histograms](LogHistogram) with
//!   p50/p95/p99/max summaries, bandwidth/energy [timelines](Timeline), and
//!   span capture;
//! * [`ObsReport`] — the serializable result, exportable as text, JSON, CSV,
//!   and Chrome `trace_event` JSON (loadable in Perfetto or
//!   `chrome://tracing`).
//!
//! Timestamps are plain `u64` picoseconds so this crate has no simulator
//! dependencies and every layer — including the event kernel — can depend
//! on it without cycles.
//!
//! # Examples
//!
//! ```
//! use mcm_obs::{CommandKind, Recorder, RowOutcome, StatsRecorder};
//!
//! let rec = StatsRecorder::new();
//! rec.record_row_outcome(0, 0, RowOutcome::Miss);
//! rec.record_command(0, 0, CommandKind::Activate, 0);
//! rec.record_command(0, 0, CommandKind::Read, 6_000);
//! rec.record_latency(0, 22_500); // 22.5 ns, in ps
//!
//! let report = rec.report();
//! assert_eq!(report.channels[0].counters.commands.activates, 1);
//! assert_eq!(report.channels[0].latency_ps.count, 1);
//! assert!(report.to_chrome_trace().contains("traceEvents"));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod histogram;
mod recorder;
mod replay;
mod stats;
mod timeline;
mod trace;

pub use counters::{BankCounters, ChannelCounters, CommandCounters, RowOutcomeCounters};
pub use histogram::{HistogramSummary, LogHistogram, BUCKETS};
pub use recorder::{ChannelObs, CommandKind, FaultKind, NullRecorder, Recorder, RowOutcome};
pub use replay::{merge_event_streams, EventLog, ObsEvent};
pub use stats::{
    BankObsReport, ChannelObsReport, EnergyBreakdown, FaultCount, GaugeSample, KernelObsReport,
    ObsConfig, ObsReport, ObsSummary, StatsRecorder, TenantObsReport,
};
pub use timeline::{Timeline, TimelineBucket, MAX_BUCKETS};
pub use trace::{chrome_trace, SpanEvent, MASTER_TID};
