//! Per-channel and per-bank event counters.

use serde::{Deserialize, Serialize};

use crate::recorder::CommandKind;

/// Counts of each DRAM command class.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandCounters {
    /// Row activations.
    pub activates: u64,
    /// Column read bursts.
    pub reads: u64,
    /// Column write bursts.
    pub writes: u64,
    /// Single-bank precharges.
    pub precharges: u64,
    /// All-bank precharges.
    pub precharge_alls: u64,
    /// Auto refreshes.
    pub refreshes: u64,
    /// Power-down entries.
    pub power_down_entries: u64,
    /// Power-down exits.
    pub power_down_exits: u64,
    /// Self-refresh entries.
    pub self_refresh_entries: u64,
    /// Self-refresh exits.
    pub self_refresh_exits: u64,
}

impl CommandCounters {
    /// Increments the counter matching `kind`.
    pub fn bump(&mut self, kind: CommandKind) {
        match kind {
            CommandKind::Activate => self.activates += 1,
            CommandKind::Read => self.reads += 1,
            CommandKind::Write => self.writes += 1,
            CommandKind::Precharge => self.precharges += 1,
            CommandKind::PrechargeAll => self.precharge_alls += 1,
            CommandKind::Refresh => self.refreshes += 1,
            CommandKind::PowerDownEnter => self.power_down_entries += 1,
            CommandKind::PowerDownExit => self.power_down_exits += 1,
            CommandKind::SelfRefreshEnter => self.self_refresh_entries += 1,
            CommandKind::SelfRefreshExit => self.self_refresh_exits += 1,
        }
    }

    /// Sum over every command class.
    pub fn total(&self) -> u64 {
        self.activates
            + self.reads
            + self.writes
            + self.precharges
            + self.precharge_alls
            + self.refreshes
            + self.power_down_entries
            + self.power_down_exits
            + self.self_refresh_entries
            + self.self_refresh_exits
    }
}

/// Row-buffer outcome tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowOutcomeCounters {
    /// Accesses that found their row open.
    pub hits: u64,
    /// Accesses to an idle bank.
    pub misses: u64,
    /// Accesses that had to close another row first.
    pub conflicts: u64,
}

impl RowOutcomeCounters {
    /// Increments the tally matching `outcome`.
    pub fn bump(&mut self, outcome: crate::RowOutcome) {
        match outcome {
            crate::RowOutcome::Hit => self.hits += 1,
            crate::RowOutcome::Miss => self.misses += 1,
            crate::RowOutcome::Conflict => self.conflicts += 1,
        }
    }

    /// Total decided accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.conflicts
    }

    /// Hits over total, when any access was decided.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Everything counted for one bank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankCounters {
    /// Per-command tallies.
    pub commands: CommandCounters,
    /// Row-buffer outcomes.
    pub rows: RowOutcomeCounters,
}

/// Everything counted for one channel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelCounters {
    /// Per-command tallies summed over the channel's banks.
    pub commands: CommandCounters,
    /// Row-buffer outcomes summed over the channel's banks.
    pub rows: RowOutcomeCounters,
    /// Bytes read off the channel.
    pub bytes_read: u64,
    /// Bytes written onto the channel.
    pub bytes_written: u64,
    /// Requests whose latency was recorded.
    pub requests: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowOutcome;

    #[test]
    fn bump_routes_each_kind() {
        let mut c = CommandCounters::default();
        c.bump(CommandKind::Activate);
        c.bump(CommandKind::Read);
        c.bump(CommandKind::Read);
        c.bump(CommandKind::Refresh);
        assert_eq!(c.activates, 1);
        assert_eq!(c.reads, 2);
        assert_eq!(c.refreshes, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn hit_rate_is_hits_over_total() {
        let mut r = RowOutcomeCounters::default();
        assert_eq!(r.hit_rate(), None);
        r.bump(RowOutcome::Hit);
        r.bump(RowOutcome::Hit);
        r.bump(RowOutcome::Hit);
        r.bump(RowOutcome::Conflict);
        assert_eq!(r.total(), 4);
        assert_eq!(r.hit_rate(), Some(0.75));
    }
}
