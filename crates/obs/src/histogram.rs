//! Log-scaled histograms for latencies and queue depths.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets; covers the full `u64` range.
pub const BUCKETS: usize = 65;

/// A base-2 logarithmic histogram over `u64` samples.
///
/// Bucket 0 holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Quantiles report the **upper bound** of the bucket
/// containing the requested rank (clamped to the exact observed maximum),
/// so they over- rather than under-estimate — the safe direction for
/// latency summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Upper bound of bucket `index` (inclusive).
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the exact samples (not the bucketed approximation).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum sample.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0 < q ≤ 1`): upper bound of the bucket holding the
    /// `ceil(q · count)`-th smallest sample, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Distills the histogram into the fixed p50/p95/p99/max summary the
    /// reports print.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Non-empty buckets as `(lower_inclusive, upper_inclusive, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i == 0 {
                    0
                } else {
                    Self::bucket_upper(i - 1) + 1
                };
                (lower, Self::bucket_upper(i), n)
            })
            .collect()
    }
}

/// Percentile summary of one [`LogHistogram`], in the sample's own unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact mean.
    pub mean: Option<f64>,
    /// Exact minimum.
    pub min: Option<u64>,
    /// Median (bucket upper bound).
    pub p50: Option<u64>,
    /// 95th percentile (bucket upper bound).
    pub p95: Option<u64>,
    /// 99th percentile (bucket upper bound).
    pub p99: Option<u64>,
    /// Exact maximum.
    pub max: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary().p99, None);
    }

    #[test]
    fn percentiles_match_hand_computed_buckets() {
        // 10 samples: 0, 1, 2, 3, 4, 5, 6, 7, 100, 1000.
        // Buckets: {0}→1, [1,1]→1, [2,3]→2, [4,7]→4, [64,127]→1, [512,1023]→1.
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(1128.0 / 10.0));
        // p50: rank 5 lands in bucket [4,7] → upper bound 7.
        assert_eq!(h.quantile(0.50), Some(7));
        // p95: rank 10 lands in bucket [512,1023], clamped to max 1000.
        assert_eq!(h.quantile(0.95), Some(1000));
        // p10: rank 1 is the 0 sample.
        assert_eq!(h.quantile(0.10), Some(0));
        // p90: rank 9 lands in bucket [64,127] → upper bound 127.
        assert_eq!(h.quantile(0.90), Some(127));
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(300);
        // Bucket [256,511] upper bound 511, clamped to observed max 300.
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(300));
        }
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 100, 1000] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, _, n)| n).sum::<u64>(), 10);
        assert_eq!(buckets[0], (0, 0, 1));
        assert_eq!(buckets[1], (1, 1, 1));
        assert_eq!(buckets[2], (2, 3, 2));
        assert_eq!(buckets[3], (4, 7, 4));
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }
}
