//! The [`Recorder`] trait — the seam every simulated layer reports through.
//!
//! A recorder is *passive*: the simulator calls into it at well-defined
//! points (command issue, request retirement, energy accounting) and the
//! recorder decides what, if anything, to keep. The two bundled
//! implementations sit at the extremes: [`NullRecorder`] keeps nothing and
//! compiles down to nothing, [`crate::StatsRecorder`] keeps everything the
//! `mcm report` subcommand can print.
//!
//! Timestamps are raw picoseconds (`u64`) rather than a shared time type so
//! this crate stays dependency-free and every layer of the stack — including
//! the event kernel itself — can depend on it without cycles.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The DRAM command classes a recorder can observe.
///
/// These mirror the mobile-DDR command set the simulator issues; exits are
/// separate variants so power-down residency can be reconstructed from the
/// event stream alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Row activation (`ACT`).
    Activate,
    /// Column read burst (`RD`).
    Read,
    /// Column write burst (`WR`).
    Write,
    /// Single-bank precharge (`PRE`).
    Precharge,
    /// All-bank precharge (`PREA`).
    PrechargeAll,
    /// Auto refresh (`REF`).
    Refresh,
    /// CKE-low power-down entry.
    PowerDownEnter,
    /// Power-down exit (wakeup).
    PowerDownExit,
    /// Self-refresh entry.
    SelfRefreshEnter,
    /// Self-refresh exit.
    SelfRefreshExit,
}

impl CommandKind {
    /// Short uppercase mnemonic (`ACT`, `RD`, …) for text output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CommandKind::Activate => "ACT",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
            CommandKind::Precharge => "PRE",
            CommandKind::PrechargeAll => "PREA",
            CommandKind::Refresh => "REF",
            CommandKind::PowerDownEnter => "PDE",
            CommandKind::PowerDownExit => "PDX",
            CommandKind::SelfRefreshEnter => "SRE",
            CommandKind::SelfRefreshExit => "SRX",
        }
    }
}

/// Row-buffer outcome of one column access, as decided by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The target row was already open: column access only.
    Hit,
    /// The bank was idle: activate, then access.
    Miss,
    /// Another row was open: precharge, activate, then access.
    Conflict,
}

/// Fault and degradation events the fault-injection layer reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// A channel was lost for the whole run (reported once, at apply
    /// time).
    ChannelLost,
    /// A request arrived inside a flaky channel's down window.
    FlakyHit,
    /// A retry attempt on a flaky window.
    Retry,
    /// A request remapped to a neighbour channel after retries ran out.
    Remap,
    /// A controller-stall window delayed a request.
    Stall,
    /// Refresh pressure was applied to the channel (reported once).
    RefreshPressure,
    /// A bank latency penalty was applied to the channel (reported once).
    SlowBank,
}

impl FaultKind {
    /// Short lowercase label for text output.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::ChannelLost => "channel-lost",
            FaultKind::FlakyHit => "flaky-hit",
            FaultKind::Retry => "retry",
            FaultKind::Remap => "remap",
            FaultKind::Stall => "stall",
            FaultKind::RefreshPressure => "refresh-pressure",
            FaultKind::SlowBank => "slow-bank",
        }
    }
}

/// Sink for instrumentation events emitted by the simulated memory stack.
///
/// Every method has a no-op default body, so implementations only override
/// what they care about and the trait can grow without breaking them. All
/// methods take `&self`: recorders that accumulate state use interior
/// mutability (see [`crate::StatsRecorder`]) because one recorder is shared
/// by every channel of a subsystem.
///
/// Hot paths in the simulator hold an `Option` of a recorder handle and skip
/// the call entirely when observability is off, so an attached
/// [`NullRecorder`] and a detached recorder cost the same: one branch.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// A DRAM command was issued on `channel`, bank `bank`, at `at_ps`.
    fn record_command(&self, channel: u32, bank: u8, kind: CommandKind, at_ps: u64) {
        let _ = (channel, bank, kind, at_ps);
    }

    /// A column access on `channel`/`bank` hit, missed, or conflicted in
    /// the row buffer.
    fn record_row_outcome(&self, channel: u32, bank: u8, outcome: RowOutcome) {
        let _ = (channel, bank, outcome);
    }

    /// One channel request retired with the given arrival-to-done latency.
    fn record_latency(&self, channel: u32, latency_ps: u64) {
        let _ = (channel, latency_ps);
    }

    /// Depth of a controller queue observed while handling a request.
    fn record_queue_depth(&self, channel: u32, depth: u64) {
        let _ = (channel, depth);
    }

    /// `bytes` moved on `channel` (`write == true` for writes) at `at_ps`.
    fn record_bytes(&self, channel: u32, write: bool, bytes: u64, at_ps: u64) {
        let _ = (channel, write, bytes, at_ps);
    }

    /// `pj` of event energy attributed to a command of `kind` at `at_ps`.
    fn record_energy(&self, channel: u32, kind: CommandKind, pj: f64, at_ps: u64) {
        let _ = (channel, kind, pj, at_ps);
    }

    /// `pj` of background (state-residency) energy accrued over
    /// `[from_ps, to_ps)`.
    fn record_background(&self, channel: u32, from_ps: u64, to_ps: u64, pj: f64) {
        let _ = (channel, from_ps, to_ps, pj);
    }

    /// A named span of simulated time, e.g. one master transaction.
    /// `channel` is `None` for subsystem-wide spans.
    fn record_span(&self, name: &str, channel: Option<u32>, start_ps: u64, end_ps: u64) {
        let _ = (name, channel, start_ps, end_ps);
    }

    /// A named scalar sampled once per run (e.g. `core_mw`).
    fn record_gauge(&self, name: &str, channel: Option<u32>, value: f64) {
        let _ = (name, channel, value);
    }

    /// The event kernel fired one event at `at_ps`, leaving `pending`
    /// events queued behind it.
    fn record_sim_event(&self, pending: u64, at_ps: u64) {
        let _ = (pending, at_ps);
    }

    /// A fault or degradation event of `kind` on `channel` at `at_ps`.
    fn record_fault(&self, channel: u32, kind: FaultKind, at_ps: u64) {
        let _ = (channel, kind, at_ps);
    }

    /// `bytes` moved on behalf of tenant `tenant` of a multi-tenant
    /// workload (`write == true` for writes). Single-tenant runs never
    /// call this.
    fn record_tenant_op(&self, tenant: u32, write: bool, bytes: u64) {
        let _ = (tenant, write, bytes);
    }
}

/// The do-nothing recorder: every method is the trait default, so calls
/// inline away entirely. Attach it when an API requires *some* recorder but
/// nothing should be kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// A recorder handle pre-bound to one channel.
///
/// The subsystem owns one shared [`Recorder`]; each controller and device
/// receives a `ChannelObs` carrying its channel index, so the hot path
/// never re-derives "which channel am I" when reporting.
#[derive(Debug, Clone)]
pub struct ChannelObs {
    recorder: Arc<dyn Recorder>,
    channel: u32,
}

impl ChannelObs {
    /// Binds `recorder` to `channel`.
    pub fn new(recorder: Arc<dyn Recorder>, channel: u32) -> ChannelObs {
        ChannelObs { recorder, channel }
    }

    /// The channel this handle reports as.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// The shared recorder behind this handle.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Forwards to [`Recorder::record_command`] with the bound channel.
    #[inline]
    pub fn command(&self, bank: u8, kind: CommandKind, at_ps: u64) {
        self.recorder
            .record_command(self.channel, bank, kind, at_ps);
    }

    /// Forwards to [`Recorder::record_row_outcome`] with the bound channel.
    #[inline]
    pub fn row_outcome(&self, bank: u8, outcome: RowOutcome) {
        self.recorder
            .record_row_outcome(self.channel, bank, outcome);
    }

    /// Forwards to [`Recorder::record_latency`] with the bound channel.
    #[inline]
    pub fn latency(&self, latency_ps: u64) {
        self.recorder.record_latency(self.channel, latency_ps);
    }

    /// Forwards to [`Recorder::record_queue_depth`] with the bound channel.
    #[inline]
    pub fn queue_depth(&self, depth: u64) {
        self.recorder.record_queue_depth(self.channel, depth);
    }

    /// Forwards to [`Recorder::record_bytes`] with the bound channel.
    #[inline]
    pub fn bytes(&self, write: bool, bytes: u64, at_ps: u64) {
        self.recorder
            .record_bytes(self.channel, write, bytes, at_ps);
    }

    /// Forwards to [`Recorder::record_energy`] with the bound channel.
    #[inline]
    pub fn energy(&self, kind: CommandKind, pj: f64, at_ps: u64) {
        self.recorder.record_energy(self.channel, kind, pj, at_ps);
    }

    /// Forwards to [`Recorder::record_background`] with the bound channel.
    #[inline]
    pub fn background(&self, from_ps: u64, to_ps: u64, pj: f64) {
        self.recorder
            .record_background(self.channel, from_ps, to_ps, pj);
    }

    /// Forwards to [`Recorder::record_span`] with the bound channel.
    #[inline]
    pub fn span(&self, name: &str, start_ps: u64, end_ps: u64) {
        self.recorder
            .record_span(name, Some(self.channel), start_ps, end_ps);
    }

    /// Forwards to [`Recorder::record_gauge`] with the bound channel.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        self.recorder.record_gauge(name, Some(self.channel), value);
    }

    /// Forwards to [`Recorder::record_fault`] with the bound channel.
    #[inline]
    pub fn fault(&self, kind: FaultKind, at_ps: u64) {
        self.recorder.record_fault(self.channel, kind, at_ps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_accepts_everything() {
        let rec = NullRecorder;
        rec.record_command(0, 0, CommandKind::Activate, 0);
        rec.record_row_outcome(0, 0, RowOutcome::Hit);
        rec.record_latency(0, 1);
        rec.record_queue_depth(0, 2);
        rec.record_bytes(0, true, 64, 0);
        rec.record_energy(0, CommandKind::Read, 1.0, 0);
        rec.record_background(0, 0, 10, 0.5);
        rec.record_span("txn", None, 0, 10);
        rec.record_gauge("core_mw", None, 1.0);
        rec.record_sim_event(7, 100);
        rec.record_tenant_op(0, true, 64);
    }

    #[test]
    fn channel_obs_binds_the_channel() {
        let obs = ChannelObs::new(Arc::new(NullRecorder), 3);
        assert_eq!(obs.channel(), 3);
        let cloned = obs.clone();
        assert_eq!(cloned.channel(), 3);
        cloned.command(0, CommandKind::Refresh, 42);
    }

    #[test]
    fn mnemonics_are_unique() {
        let kinds = [
            CommandKind::Activate,
            CommandKind::Read,
            CommandKind::Write,
            CommandKind::Precharge,
            CommandKind::PrechargeAll,
            CommandKind::Refresh,
            CommandKind::PowerDownEnter,
            CommandKind::PowerDownExit,
            CommandKind::SelfRefreshEnter,
            CommandKind::SelfRefreshExit,
        ];
        let mut seen: Vec<&str> = kinds.iter().map(|k| k.mnemonic()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), kinds.len());
    }
}
