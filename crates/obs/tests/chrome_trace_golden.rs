//! Golden-file coverage for the Chrome `trace_event` export.
//!
//! Regenerate the golden after an intentional format change with
//! `MCM_OBS_BLESS=1 cargo test -p mcm-obs --test chrome_trace_golden`.

use mcm_obs::{CommandKind, ObsConfig, Recorder, StatsRecorder};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("chrome_trace.json")
}

/// A fixed two-channel scenario; every timestamp is hard-coded so the
/// exported trace is byte-for-byte deterministic.
fn deterministic_trace() -> String {
    let rec = StatsRecorder::with_config(ObsConfig {
        timeline_bucket_ps: 1_000_000,
        max_spans: 16,
    });
    rec.record_command(0, 0, CommandKind::Activate, 0);
    rec.record_command(0, 0, CommandKind::Read, 5_000_000);
    rec.record_bytes(0, false, 64, 5_000_000);
    rec.record_command(1, 3, CommandKind::Write, 2_500_000);
    rec.record_bytes(1, true, 32, 2_500_000);
    rec.record_energy(0, CommandKind::Activate, 12.5, 0);
    rec.record_background(1, 0, 2_000_000, 3.0);
    rec.record_span("txn", Some(0), 0, 7_000_000);
    rec.record_span("frame", None, 0, 10_000_000);
    rec.report().to_chrome_trace()
}

#[test]
fn chrome_trace_matches_golden_file() {
    let trace = deterministic_trace();
    let path = golden_path();
    if std::env::var_os("MCM_OBS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &trace).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); bless first", path.display()));
    assert_eq!(trace, golden, "trace export drifted from the golden file");
}

#[test]
fn chrome_trace_parses_and_round_trips() {
    let trace = deterministic_trace();
    let value: serde_json::Value = serde_json::from_str(&trace).expect("export must be valid JSON");

    // The object form Perfetto accepts: a traceEvents array whose entries
    // all carry a phase, pid and tid.
    let events = value["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for event in events {
        assert!(event["ph"].as_str().is_some());
        assert!(event["pid"].as_u64().is_some());
        assert!(event["tid"].as_u64().is_some());
    }
    // Both spans survived with their durations (µs).
    let txn = events
        .iter()
        .find(|e| e["ph"] == "X" && e["name"] == "txn")
        .expect("txn span");
    assert_eq!(txn["dur"].as_f64(), Some(7.0));

    // Round-trip: parse → serialize → parse is a fixed point.
    let again: serde_json::Value =
        serde_json::from_str(&serde_json::to_string_pretty(&value).unwrap()).unwrap();
    assert_eq!(value, again);
}
