//! Property tests for the load model: Table I arithmetic, layout
//! invariants, and traffic conservation across arbitrary (valid) use cases.

use mcm_load::{
    FrameFormat, FrameLayout, FrameTraffic, H264Level, LayoutOptions, RefFrames, UseCase,
};
use proptest::prelude::*;

/// A random, *valid* use case: dimensions are drawn first and the level is
/// derived so the configuration always passes validation.
fn arb_use_case() -> impl Strategy<Value = UseCase> {
    (
        (16u32..=3840, 16u32..=2160),
        prop_oneof![Just(15u32), Just(24), Just(30), Just(60)],
        1.0f64..4.0,
        1u32..=4,
        Just(()),
    )
        .prop_filter_map(
            "format must fit some level",
            |((w, h), fps, zoom, refs, ())| {
                let w = w & !15; // macroblock-align to keep sizes sane
                let h = h & !15;
                let video = FrameFormat::new(w.max(16), h.max(16)).ok()?;
                let level = H264Level::minimum_for(video, fps).ok()?;
                let refs = refs.min(level.max_ref_frames(video)).max(1);
                let uc = UseCase {
                    video,
                    fps,
                    level,
                    digizoom: zoom,
                    display: FrameFormat::WVGA,
                    display_hz: 60,
                    video_kbps: level.limits().max_br_kbps,
                    audio_kbps: 128,
                    ref_frames: RefFrames::Fixed(refs),
                    encoder_factor: 6,
                    mode: mcm_load::UseCaseMode::Recording,
                };
                uc.validate().ok()?;
                Some(uc)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn table_row_is_consistent(uc in arb_use_case()) {
        let row = uc.table_row();
        // Per-stage totals sum to the group totals.
        let by_stage: u64 = uc.stage_traffic().iter().map(|t| t.total_bits()).sum();
        prop_assert_eq!(by_stage, row.bits_per_frame());
        // Per-second scales by fps.
        prop_assert_eq!(row.bits_per_second(), row.bits_per_frame() * uc.fps as u64);
        prop_assert!(row.mbytes_per_second() > 0.0);
    }

    #[test]
    fn traffic_grows_with_resolution(uc in arb_use_case()) {
        // Doubling both dimensions must increase the per-frame load.
        prop_assume!(uc.video.width <= 1920 && uc.video.height <= 1080);
        let Ok(bigger_fmt) = FrameFormat::new(uc.video.width * 2, uc.video.height * 2) else {
            return Err(TestCaseError::reject("overflow"));
        };
        let Ok(level) = H264Level::minimum_for(bigger_fmt, uc.fps) else {
            return Err(TestCaseError::reject("no level"));
        };
        let mut bigger = uc;
        bigger.video = bigger_fmt;
        bigger.level = level;
        bigger.video_kbps = uc.video_kbps.min(level.limits().max_br_kbps);
        prop_assume!(bigger.validate().is_ok());
        prop_assert!(
            bigger.table_row().bits_per_frame() > uc.table_row().bits_per_frame()
        );
    }

    #[test]
    fn more_reference_frames_mean_more_encoder_traffic(uc in arb_use_case()) {
        let refs = uc.resolved_ref_frames();
        prop_assume!(refs >= 2);
        let mut fewer = uc;
        fewer.ref_frames = RefFrames::Fixed(refs - 1);
        let enc = |u: &UseCase| {
            u.stage_traffic()
                .iter()
                .find(|t| t.stage == mcm_load::Stage::VideoEncoder)
                .unwrap()
                .read_bits
        };
        prop_assert!(enc(&fewer) < enc(&uc));
    }

    #[test]
    fn layout_regions_are_disjoint_and_within_capacity(
        uc in arb_use_case(),
        stagger in prop_oneof![Just(0u64), Just(2_048), Just(16_384)],
    ) {
        let capacity = 2u64 << 30;
        let options = LayoutOptions {
            capacity_bytes: capacity,
            bank_stagger_bytes: stagger,
            stagger_period: 4,
        };
        let layout = FrameLayout::with_options(&uc, &options).unwrap();
        let regions = layout.regions();
        for (i, a) in regions.iter().enumerate() {
            prop_assert!(a.end() <= capacity);
            for b in regions.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b), "overlap: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn traffic_bytes_match_plan_for_any_chunk(
        uc in arb_use_case(),
        chunk in prop_oneof![Just(16u32), Just(64), Just(100), Just(512)],
    ) {
        let layout = FrameLayout::new(&uc, 4u64 << 30).unwrap();
        let traffic = FrameTraffic::new(&uc, &layout, chunk).unwrap();
        let planned = traffic.total_bytes();
        let mut emitted = 0u64;
        let regions = layout.regions();
        for op in traffic {
            emitted += op.len as u64;
            prop_assert!(op.len <= chunk);
            let inside = regions
                .iter()
                .any(|r| op.addr >= r.start && op.addr + op.len as u64 <= r.end());
            prop_assert!(inside, "op escapes the layout");
        }
        prop_assert_eq!(emitted, planned);
        // The plan equals the Table I number up to per-stream byte rounding.
        let table = uc.table_row().bits_per_frame() / 8;
        prop_assert!(table.abs_diff(planned) < 64);
    }
}
