//! The load-model state machine: turns one captured frame's use case into a
//! concrete stream of memory operations.
//!
//! "Within the load model, the processing chain of the video recording is
//! described as a state machine. Each state results in memory access
//! requests." (paper, Section III). Here each Fig. 1 stage is a state; a
//! state emits cache-line-sized operations against the stage's source and
//! destination buffers, interleaving reads and writes proportionally to
//! their volumes — the pattern a write-allocate cache in front of a
//! streaming kernel produces. The H.264 encoder state sweeps all reference
//! buffers in a block-interleaved pattern (motion search touches every
//! reference repeatedly), wrapping over each buffer `encoder_factor` times.

use crate::buffers::FrameLayout;
use crate::error::LoadError;
use crate::stages::{Stage, StageTraffic};
use crate::usecase::UseCase;

/// One memory operation emitted by the load model.
///
/// Addresses are global (pre-interleaving); the multi-channel subsystem
/// spreads them over channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOp {
    /// `true` for a write, `false` for a read.
    pub write: bool,
    /// Global byte address.
    pub addr: u64,
    /// Length in bytes (at most the configured chunk size).
    pub len: u32,
}

/// A single sequential (possibly wrapping) access stream within a stage.
#[derive(Debug, Clone)]
struct StreamPlan {
    write: bool,
    start: u64,
    /// Wrap length: addresses advance modulo this many bytes from `start`.
    wrap_len: u64,
    /// Total bytes this stream must move.
    total: u64,
    /// Bytes already emitted.
    pos: u64,
}

impl StreamPlan {
    fn remaining(&self) -> u64 {
        self.total - self.pos
    }

    /// Emits the next chunk of at most `chunk` bytes, truncated at the wrap
    /// boundary so every op stays within the buffer.
    fn next_op(&mut self, chunk: u32) -> LoadOp {
        debug_assert!(self.remaining() > 0);
        let offset = self.pos % self.wrap_len;
        let until_wrap = self.wrap_len - offset;
        let len = (chunk as u64).min(self.remaining()).min(until_wrap) as u32;
        let op = LoadOp {
            write: self.write,
            addr: self.start + offset,
            len,
        };
        self.pos += len as u64;
        op
    }
}

/// All streams of one pipeline state.
#[derive(Debug, Clone)]
struct StagePlan {
    stage: Stage,
    streams: Vec<StreamPlan>,
}

impl StagePlan {
    fn remaining(&self) -> u64 {
        self.streams.iter().map(StreamPlan::remaining).sum()
    }

    /// Proportional interleaving: pick the stream that is furthest behind
    /// its fair share (largest remaining fraction), so a stage that reads
    /// 1.44 MB and writes 1.0 MB alternates ops roughly 1.44:1.
    fn next_op(&mut self, chunk: u32) -> Option<LoadOp> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if s.remaining() == 0 {
                continue;
            }
            let frac = s.remaining() as f64 / s.total as f64;
            if best.is_none_or(|(_, b)| frac > b) {
                best = Some((i, frac));
            }
        }
        best.map(|(i, _)| self.streams[i].next_op(chunk))
    }
}

/// Iterator over the memory operations of one captured frame.
///
/// # Examples
///
/// ```
/// use mcm_load::{FrameLayout, FrameTraffic, HdOperatingPoint, UseCase};
///
/// let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
/// let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
/// let traffic = FrameTraffic::new(&uc, &layout, 64).unwrap();
/// let planned = traffic.total_bytes();
/// let emitted: u64 = traffic.map(|op| op.len as u64).sum();
/// assert_eq!(emitted, planned);
/// ```
#[derive(Debug, Clone)]
pub struct FrameTraffic {
    stages: Vec<StagePlan>,
    current: usize,
    chunk: u32,
    total: u64,
}

impl FrameTraffic {
    /// Builds the frame's operation stream with `chunk_bytes`-sized
    /// operations (the master's transaction size; 64 B models a cache-line
    /// master).
    pub fn new(
        use_case: &UseCase,
        layout: &FrameLayout,
        chunk_bytes: u32,
    ) -> Result<Self, LoadError> {
        Self::without_stages(use_case, layout, chunk_bytes, &[])
    }

    /// Like [`FrameTraffic::new`], but with the given stages shed: their
    /// streams are dropped from the plan entirely. The degradation layer
    /// uses this to shed display/viewfinder traffic when the memory cannot
    /// sustain the full Table I load.
    pub fn without_stages(
        use_case: &UseCase,
        layout: &FrameLayout,
        chunk_bytes: u32,
        shed: &[Stage],
    ) -> Result<Self, LoadError> {
        Self::with_rows(
            use_case,
            &use_case.stage_traffic(),
            layout,
            chunk_bytes,
            shed,
        )
    }

    /// Builds the operation stream from an explicit per-stage traffic table
    /// instead of the use case's own Table I rows. This is the hook workload
    /// models (HEVC/VVC profiles, the stochastic generator, custom
    /// [`LoadModel`](crate::LoadModel) implementations) use to reshape the
    /// traffic while keeping the Table I buffer geometry: each row's bits
    /// are streamed against the same buffers the matching Table I stage
    /// touches.
    ///
    /// The `use_case` still supplies the buffer-derived constants — the
    /// reconstructed-frame size splitting the encoder's writes, and the
    /// audio share splitting the multiplex reads.
    pub fn with_rows(
        use_case: &UseCase,
        rows: &[StageTraffic],
        layout: &FrameLayout,
        chunk_bytes: u32,
        shed: &[Stage],
    ) -> Result<Self, LoadError> {
        if chunk_bytes == 0 {
            return Err(LoadError::BadParam {
                reason: "chunk_bytes must be non-zero".into(),
            });
        }
        use_case.validate()?;
        let traffic = rows;
        let bytes = |bits: u64| bits / 8;
        let rd = |region: &crate::buffers::Region, total: u64| StreamPlan {
            write: false,
            start: region.start,
            wrap_len: region.len,
            total,
            pos: 0,
        };
        let wr = |region: &crate::buffers::Region, total: u64| StreamPlan {
            write: true,
            start: region.start,
            wrap_len: region.len,
            total,
            pos: 0,
        };

        let mut stages = Vec::with_capacity(traffic.len());
        for t in traffic {
            if shed.contains(&t.stage) {
                continue;
            }
            let streams = match t.stage {
                Stage::CameraIf => vec![wr(&layout.camera, bytes(t.write_bits))],
                Stage::Preprocess => vec![
                    rd(&layout.camera, bytes(t.read_bits)),
                    wr(&layout.preprocessed, bytes(t.write_bits)),
                ],
                Stage::BayerToYuv => vec![
                    rd(&layout.preprocessed, bytes(t.read_bits)),
                    wr(&layout.yuv_bordered, bytes(t.write_bits)),
                ],
                Stage::Stabilization => vec![
                    rd(&layout.yuv_bordered, bytes(t.read_bits)),
                    wr(&layout.stabilized, bytes(t.write_bits)),
                ],
                Stage::PostProcDigizoom => vec![
                    rd(&layout.stabilized, bytes(t.read_bits)),
                    wr(&layout.postprocessed, bytes(t.write_bits)),
                ],
                Stage::ScaleToDisplay => vec![
                    rd(&layout.postprocessed, bytes(t.read_bits)),
                    wr(&layout.display[0], bytes(t.write_bits)),
                ],
                Stage::DisplayCtrl => vec![rd(&layout.display[1], bytes(t.read_bits))],
                Stage::VideoEncoder => {
                    let refs = layout.references.len() as u64;
                    let per_ref = bytes(t.read_bits) / refs.max(1);
                    let mut v: Vec<StreamPlan> =
                        layout.references.iter().map(|r| rd(r, per_ref)).collect();
                    // Reconstructed frame, then the bitstream share.
                    let recon = bytes(use_case.video.bits(crate::formats::PixelFormat::Yuv420));
                    let bits = bytes(t.write_bits).saturating_sub(recon);
                    v.push(wr(&layout.reconstructed, recon));
                    if bits > 0 {
                        v.push(wr(&layout.bitstream, bits));
                    }
                    v
                }
                Stage::Audio => vec![wr(&layout.audio, bytes(t.write_bits))],
                Stage::Multiplex => {
                    let a = bytes(use_case.audio_kbps * 1_000 / use_case.fps as u64);
                    let v_share = bytes(t.read_bits).saturating_sub(a);
                    vec![
                        rd(&layout.bitstream, v_share),
                        rd(&layout.audio, a),
                        wr(&layout.mux, bytes(t.write_bits)),
                    ]
                }
                Stage::MemoryCard => vec![rd(&layout.mux, bytes(t.read_bits))],
            };
            stages.push(StagePlan {
                stage: t.stage,
                streams: streams.into_iter().filter(|s| s.total > 0).collect(),
            });
        }
        let total = stages.iter().map(StagePlan::remaining).sum();
        Ok(FrameTraffic {
            stages,
            current: 0,
            chunk: chunk_bytes,
            total,
        })
    }

    /// Total bytes the whole frame will move (matches Table I up to the
    /// sub-byte rounding of bits to bytes).
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The stage currently emitting, if any.
    pub fn current_stage(&self) -> Option<Stage> {
        self.stages.get(self.current).map(|s| s.stage)
    }

    /// Planned bytes per stage (before any ops are consumed), in pipeline
    /// order. The degradation layer reads this to decide which stages to
    /// shed and to account the bytes each shed stage would have moved.
    pub fn stage_bytes(&self) -> Vec<(Stage, u64)> {
        self.stages
            .iter()
            .map(|s| (s.stage, s.remaining()))
            .collect()
    }
}

impl Iterator for FrameTraffic {
    type Item = LoadOp;

    fn next(&mut self) -> Option<LoadOp> {
        while self.current < self.stages.len() {
            if let Some(op) = self.stages[self.current].next_op(self.chunk) {
                return Some(op);
            }
            self.current += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::HdOperatingPoint;

    fn traffic(chunk: u32) -> FrameTraffic {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
        FrameTraffic::new(&uc, &layout, chunk).unwrap()
    }

    #[test]
    fn emitted_bytes_equal_plan() {
        let t = traffic(64);
        let planned = t.total_bytes();
        let emitted: u64 = t.map(|op| op.len as u64).sum();
        assert_eq!(emitted, planned);
    }

    #[test]
    fn plan_matches_table_i_within_rounding() {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let t = traffic(64);
        let table_bytes = uc.table_row().bits_per_frame() / 8;
        let diff = (t.total_bytes() as i64 - table_bytes as i64).unsigned_abs();
        // Each stream rounds bits down to whole bytes; a handful of streams.
        assert!(
            diff < 64,
            "traffic {} vs table {}",
            t.total_bytes(),
            table_bytes
        );
    }

    #[test]
    fn ops_respect_chunk_size() {
        for op in traffic(64).take(100_000) {
            assert!(op.len > 0 && op.len <= 64);
        }
    }

    #[test]
    fn ops_stay_inside_layout_regions() {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
        let regions = layout.regions();
        let t = FrameTraffic::new(&uc, &layout, 64).unwrap();
        for op in t {
            let inside = regions
                .iter()
                .any(|r| op.addr >= r.start && op.addr + op.len as u64 <= r.end());
            assert!(
                inside,
                "op at {:#x}+{} escapes all regions",
                op.addr, op.len
            );
        }
    }

    #[test]
    fn stages_emit_in_pipeline_order() {
        let mut t = traffic(64);
        let mut last_stage_idx = 0usize;
        let order: Vec<Stage> = Stage::ALL.to_vec();
        // Walk and ensure the current stage index is monotone.
        while let Some(_) = t.next() {
            if let Some(s) = t.current_stage() {
                let idx = order.iter().position(|&x| x == s).unwrap();
                assert!(idx >= last_stage_idx);
                last_stage_idx = idx;
            }
        }
    }

    #[test]
    fn preprocess_interleaves_reads_and_writes() {
        // Skip the camera stage, then observe the read/write mix.
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
        let camera_bytes = uc.stage_traffic()[0].write_bits / 8;
        let skip = camera_bytes.div_ceil(64) as usize;
        let ops: Vec<LoadOp> = FrameTraffic::new(&uc, &layout, 64)
            .unwrap()
            .skip(skip)
            .take(100)
            .collect();
        let writes = ops.iter().filter(|o| o.write).count();
        // Preprocess is 1:1 read/write.
        assert!((40..=60).contains(&writes), "writes = {writes}");
        // And the directions alternate rather than batch up.
        let flips = ops.windows(2).filter(|w| w[0].write != w[1].write).count();
        assert!(flips > 30, "only {flips} direction changes in 100 ops");
    }

    #[test]
    fn encoder_reads_rotate_across_reference_buffers() {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
        let t = FrameTraffic::new(&uc, &layout, 64).unwrap();
        let mut touched = vec![false; layout.references.len()];
        for op in t {
            if !op.write {
                for (i, r) in layout.references.iter().enumerate() {
                    if op.addr >= r.start && op.addr < r.end() {
                        touched[i] = true;
                    }
                }
            }
        }
        assert!(touched.iter().all(|&t| t), "all references must be read");
    }

    #[test]
    fn wrapping_streams_stay_in_bounds() {
        // The encoder reads each reference 6x its size; DisplayCtrl re-reads
        // the display buffer. Covered by ops_stay_inside_layout_regions, but
        // verify wrap actually happens: encoder per-ref read > buffer size.
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let enc = uc.stage_traffic()[7];
        let per_ref = enc.read_bits / 8 / 4;
        let buf = uc.video.bits(crate::formats::PixelFormat::Yuv420) / 8;
        assert!(
            per_ref > buf,
            "per-ref read {per_ref} must exceed buffer {buf}"
        );
    }

    #[test]
    fn shed_stages_drop_exactly_their_bytes() {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
        let full = FrameTraffic::new(&uc, &layout, 64).unwrap();
        let by_stage = full.stage_bytes();
        let shed = [Stage::DisplayCtrl, Stage::ScaleToDisplay];
        let shed_bytes: u64 = by_stage
            .iter()
            .filter(|(s, _)| shed.contains(s))
            .map(|&(_, b)| b)
            .sum();
        assert!(shed_bytes > 0);
        let degraded = FrameTraffic::without_stages(&uc, &layout, 64, &shed).unwrap();
        assert_eq!(degraded.total_bytes(), full.total_bytes() - shed_bytes);
        // The shed stages emit nothing; the rest emit exactly their plan.
        let emitted: u64 = degraded.map(|op| op.len as u64).sum();
        assert_eq!(emitted, full.total_bytes() - shed_bytes);
        // Shedding nothing is the identity.
        let same = FrameTraffic::without_stages(&uc, &layout, 64, &[]).unwrap();
        assert_eq!(same.total_bytes(), full.total_bytes());
    }

    #[test]
    fn zero_chunk_rejected() {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
        assert!(FrameTraffic::new(&uc, &layout, 0).is_err());
    }

    #[test]
    fn op_count_is_tractable() {
        let t = traffic(64);
        let ops = t.count();
        // 720p30 frame ≈ 61 MB / 64 B ≈ 1M ops.
        assert!((800_000..1_300_000).contains(&ops), "ops = {ops}");
    }
}
