//! H.264/AVC level limits (ITU-T Rec. H.264 Table A-1) and the paper's five
//! HD-compatible operating points.
//!
//! The paper evaluates levels 3.1, 3.2, 4, 4.2 and 5.2 — the levels whose
//! throughput limits admit 720p30, 720p60, 1080p30, 1080p60 and 2160p30
//! recording. The full level table is implemented so arbitrary operating
//! points can be validated.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::LoadError;
use crate::formats::FrameFormat;

/// An H.264/AVC level identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum H264Level {
    L1,
    L1_1,
    L1_2,
    L1_3,
    L2,
    L2_1,
    L2_2,
    L3,
    L3_1,
    L3_2,
    L4,
    L4_1,
    L4_2,
    L5,
    L5_1,
    L5_2,
}

/// The limit row of one level from H.264 Table A-1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelLimits {
    /// Maximum macroblock processing rate, MB/s.
    pub max_mbps: u64,
    /// Maximum frame size, MBs.
    pub max_fs: u64,
    /// Maximum decoded picture buffer size, MBs.
    pub max_dpb_mbs: u64,
    /// Maximum video bitrate (Baseline/Extended/Main), kbit/s.
    pub max_br_kbps: u64,
}

impl H264Level {
    /// All levels, ascending.
    pub const ALL: [H264Level; 16] = [
        H264Level::L1,
        H264Level::L1_1,
        H264Level::L1_2,
        H264Level::L1_3,
        H264Level::L2,
        H264Level::L2_1,
        H264Level::L2_2,
        H264Level::L3,
        H264Level::L3_1,
        H264Level::L3_2,
        H264Level::L4,
        H264Level::L4_1,
        H264Level::L4_2,
        H264Level::L5,
        H264Level::L5_1,
        H264Level::L5_2,
    ];

    /// The limits of this level (H.264 Table A-1).
    pub fn limits(self) -> LevelLimits {
        use H264Level::*;
        let (max_mbps, max_fs, max_dpb_mbs, max_br_kbps) = match self {
            L1 => (1_485, 99, 396, 64),
            L1_1 => (3_000, 396, 900, 192),
            L1_2 => (6_000, 396, 2_376, 384),
            L1_3 => (11_880, 396, 2_376, 768),
            L2 => (11_880, 396, 2_376, 2_000),
            L2_1 => (19_800, 792, 4_752, 4_000),
            L2_2 => (20_250, 1_620, 8_100, 4_000),
            L3 => (40_500, 1_620, 8_100, 10_000),
            L3_1 => (108_000, 3_600, 18_000, 14_000),
            L3_2 => (216_000, 5_120, 20_480, 20_000),
            L4 => (245_760, 8_192, 32_768, 20_000),
            L4_1 => (245_760, 8_192, 32_768, 50_000),
            L4_2 => (522_240, 8_704, 34_816, 50_000),
            L5 => (589_824, 22_080, 110_400, 135_000),
            L5_1 => (983_040, 36_864, 184_320, 240_000),
            L5_2 => (2_073_600, 36_864, 184_320, 240_000),
        };
        LevelLimits {
            max_mbps,
            max_fs,
            max_dpb_mbs,
            max_br_kbps,
        }
    }

    /// Whether `format` at `fps` fits within this level's frame-size and
    /// throughput limits.
    pub fn supports(self, format: FrameFormat, fps: u32) -> bool {
        let l = self.limits();
        let mbs = format.macroblocks();
        mbs <= l.max_fs && mbs * fps as u64 <= l.max_mbps
    }

    /// The smallest level that supports `format` at `fps`.
    pub fn minimum_for(format: FrameFormat, fps: u32) -> Result<H264Level, LoadError> {
        Self::ALL
            .iter()
            .copied()
            .find(|l| l.supports(format, fps))
            .ok_or(LoadError::NoLevelSupports {
                width: format.width,
                height: format.height,
                fps,
            })
    }

    /// Maximum number of reference frames the decoded picture buffer can
    /// hold for `format` (capped at 16 per the standard).
    pub fn max_ref_frames(self, format: FrameFormat) -> u32 {
        let by_dpb = self.limits().max_dpb_mbs / format.macroblocks().max(1);
        by_dpb.min(16) as u32
    }
}

impl fmt::Display for H264Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use H264Level::*;
        let s = match self {
            L1 => "1",
            L1_1 => "1.1",
            L1_2 => "1.2",
            L1_3 => "1.3",
            L2 => "2",
            L2_1 => "2.1",
            L2_2 => "2.2",
            L3 => "3",
            L3_1 => "3.1",
            L3_2 => "3.2",
            L4 => "4",
            L4_1 => "4.1",
            L4_2 => "4.2",
            L5 => "5",
            L5_1 => "5.1",
            L5_2 => "5.2",
        };
        write!(f, "{s}")
    }
}

/// One of the paper's five HD-compatible recording operating points
/// (the columns of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HdOperatingPoint {
    /// Level 3.1: 1280×720 @ 30 fps.
    Hd720p30,
    /// Level 3.2: 1280×720 @ 60 fps.
    Hd720p60,
    /// Level 4: 1920×1088 @ 30 fps.
    Hd1080p30,
    /// Level 4.2: 1920×1088 @ 60 fps.
    Hd1080p60,
    /// Level 5.2 (as labelled by the paper): 3840×2160 @ 30 fps.
    Uhd2160p30,
}

impl HdOperatingPoint {
    /// All five points in Table I column order.
    pub const ALL: [HdOperatingPoint; 5] = [
        HdOperatingPoint::Hd720p30,
        HdOperatingPoint::Hd720p60,
        HdOperatingPoint::Hd1080p30,
        HdOperatingPoint::Hd1080p60,
        HdOperatingPoint::Uhd2160p30,
    ];

    /// The H.264 level the paper assigns to this point.
    pub fn level(self) -> H264Level {
        match self {
            HdOperatingPoint::Hd720p30 => H264Level::L3_1,
            HdOperatingPoint::Hd720p60 => H264Level::L3_2,
            HdOperatingPoint::Hd1080p30 => H264Level::L4,
            HdOperatingPoint::Hd1080p60 => H264Level::L4_2,
            HdOperatingPoint::Uhd2160p30 => H264Level::L5_2,
        }
    }

    /// Frame format.
    pub fn format(self) -> FrameFormat {
        match self {
            HdOperatingPoint::Hd720p30 | HdOperatingPoint::Hd720p60 => FrameFormat::HD_720,
            HdOperatingPoint::Hd1080p30 | HdOperatingPoint::Hd1080p60 => FrameFormat::HD_1080,
            HdOperatingPoint::Uhd2160p30 => FrameFormat::UHD_2160,
        }
    }

    /// Frame rate, fps.
    pub fn fps(self) -> u32 {
        match self {
            HdOperatingPoint::Hd720p60 | HdOperatingPoint::Hd1080p60 => 60,
            _ => 30,
        }
    }

    /// Real-time budget for one frame.
    pub fn frame_budget(self) -> mcm_sim::SimTime {
        mcm_sim::SimTime::from_ps(1_000_000_000_000u64 / self.fps() as u64)
    }
}

impl fmt::Display for HdOperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} (L{})", self.format(), self.fps(), self.level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_points_fit_their_levels() {
        for p in HdOperatingPoint::ALL {
            // The paper's 2160p30 label (5.2) is one level above the strict
            // minimum (5.1); all others are exact.
            assert!(
                p.level().supports(p.format(), p.fps()),
                "{p} does not fit its level"
            );
        }
    }

    #[test]
    fn minimum_levels_match_h264_arithmetic() {
        assert_eq!(
            H264Level::minimum_for(FrameFormat::HD_720, 30).unwrap(),
            H264Level::L3_1
        );
        assert_eq!(
            H264Level::minimum_for(FrameFormat::HD_720, 60).unwrap(),
            H264Level::L3_2
        );
        assert_eq!(
            H264Level::minimum_for(FrameFormat::HD_1080, 30).unwrap(),
            H264Level::L4
        );
        assert_eq!(
            H264Level::minimum_for(FrameFormat::HD_1080, 60).unwrap(),
            H264Level::L4_2
        );
        assert_eq!(
            H264Level::minimum_for(FrameFormat::UHD_2160, 30).unwrap(),
            H264Level::L5_1
        );
    }

    #[test]
    fn impossible_format_has_no_level() {
        let huge = FrameFormat::new(16_384, 16_384).unwrap();
        assert!(matches!(
            H264Level::minimum_for(huge, 120),
            Err(LoadError::NoLevelSupports { .. })
        ));
    }

    #[test]
    fn dpb_reference_frames() {
        assert_eq!(H264Level::L3_1.max_ref_frames(FrameFormat::HD_720), 5);
        assert_eq!(H264Level::L4.max_ref_frames(FrameFormat::HD_1080), 4);
        assert_eq!(H264Level::L4_2.max_ref_frames(FrameFormat::HD_1080), 4);
        assert_eq!(H264Level::L5_2.max_ref_frames(FrameFormat::UHD_2160), 5);
        // The 16-frame standard cap binds for tiny formats.
        let qcif = FrameFormat::new(176, 144).unwrap();
        assert_eq!(H264Level::L5_2.max_ref_frames(qcif), 16);
    }

    #[test]
    fn bitrates_match_table_a1() {
        assert_eq!(H264Level::L3_1.limits().max_br_kbps, 14_000);
        assert_eq!(H264Level::L3_2.limits().max_br_kbps, 20_000);
        assert_eq!(H264Level::L4.limits().max_br_kbps, 20_000);
        assert_eq!(H264Level::L4_2.limits().max_br_kbps, 50_000);
        assert_eq!(H264Level::L5_2.limits().max_br_kbps, 240_000);
    }

    #[test]
    fn operating_point_metadata() {
        let p = HdOperatingPoint::Hd1080p60;
        assert_eq!(p.fps(), 60);
        assert_eq!(p.format(), FrameFormat::HD_1080);
        assert_eq!(p.level(), H264Level::L4_2);
        assert!((p.frame_budget().as_ms_f64() - 1000.0 / 60.0).abs() < 1e-6);
        assert_eq!(p.to_string(), "1920x1088@60 (L4.2)");
    }

    #[test]
    fn levels_are_ordered_and_monotone_in_throughput() {
        let mut prev = 0;
        for l in H264Level::ALL {
            let mbps = l.limits().max_mbps;
            assert!(mbps >= prev, "level {l} throughput went backwards");
            prev = mbps;
        }
    }
}
