//! Pluggable workload models: the [`LoadModel`] trait and its built-in
//! implementations.
//!
//! The paper evaluates exactly one workload — the Table I H.264 recording
//! chain. Its *argument*, that channel count should track workload
//! concurrency, only generalizes if other workloads can be expressed. This
//! module makes the Table I model one implementation of a trait:
//!
//! * [`TableIModel`] — the paper's model, byte-identical to the pre-trait
//!   engine paths (guarded by `crates/core/tests/paper_golden.rs`);
//! * [`CodecModel`] — HEVC and VVC profiles, the coding stages rescaled to
//!   measured ratios (arXiv:2005.13331);
//! * [`StochasticModel`] — seed-deterministic Markov-modulated per-frame
//!   traffic (motivated by arXiv:1301.0344);
//! * [`MultiTenantModel`] — N concurrent use cases contending for the same
//!   channels, each in its own address-space span.
//!
//! The calibration numbers and the math behind each model live in
//! `docs/WORKLOADS.md`; `examples/custom_workload.rs` walks through writing
//! a model of your own.

use core::fmt;

use crate::buffers::{FrameLayout, LayoutOptions, Region};
use crate::error::LoadError;
use crate::formats::PixelFormat;
use crate::stages::{Stage, StageTraffic};
use crate::traffic::{FrameTraffic, LoadOp};
use crate::usecase::{UseCase, UseCaseMode};
use crate::workload::{CodecProfile, StochasticParams};

/// A workload model: everything the engine needs to simulate a use case.
///
/// A model owns a base [`UseCase`] (frame geometry, rates, H.264 level — the
/// buffer shapes) and decides, per captured frame, what traffic flows
/// against those buffers. The engine consumes models only through this
/// trait, so external crates can plug in their own pipelines — see
/// `examples/custom_workload.rs`.
///
/// Determinism contract: every method must be a pure function of the
/// model's parameters and its arguments. [`LoadModel::traffic`] for a given
/// `(options, chunk_bytes, frame, shed)` must return the same operation
/// stream on every call, in every thread — the sweep cache, the replay
/// machinery and the cross-thread determinism tests all rely on it.
pub trait LoadModel: fmt::Debug + Send + Sync {
    /// Canonical workload name (`h264-record`, `stochastic:7`, …).
    fn name(&self) -> String;

    /// The base use case: frame formats, rates and level limits that shape
    /// the buffers.
    fn use_case(&self) -> &UseCase;

    /// Validates the model's parameters.
    fn validate(&self) -> Result<(), LoadError>;

    /// Steady-state demand in bits per second, the number the MCM405
    /// bandwidth-roofline lint weighs against the channels' ceiling. For
    /// stochastic models this is the *nominal* (long-run typical) demand;
    /// bursts above it are what the pacing margin absorbs.
    fn bits_per_second(&self) -> u64;

    /// Per-stage traffic for captured frame `frame`. Deterministic models
    /// ignore `frame`; the stochastic generator modulates with it.
    fn stage_rows(&self, frame: u64) -> Vec<StageTraffic>;

    /// The address-space footprint under the given placement options — the
    /// number the MCM406 footprint lint weighs against capacity. Mirrors
    /// exactly the layout the engine will build.
    fn footprint(&self, options: &LayoutOptions) -> Result<Footprint, LoadError>;

    /// Address spans owned by each tenant, in tenant order. Empty unless
    /// the model is multi-tenant; the engine uses the spans to attribute
    /// traffic per tenant and verify gets an MCM204 invariant out of them.
    fn tenant_spans(&self, options: &LayoutOptions) -> Result<Vec<Region>, LoadError> {
        let _ = options;
        Ok(Vec::new())
    }

    /// Human-readable tenant labels, parallel to
    /// [`LoadModel::tenant_spans`]. Empty unless multi-tenant.
    fn tenant_names(&self) -> Vec<String> {
        Vec::new()
    }

    /// Builds the operation stream for captured frame `frame`, with the
    /// given stages shed (dropped from the plan; the degradation layer's
    /// knob).
    fn traffic(
        &self,
        options: &LayoutOptions,
        chunk_bytes: u32,
        frame: u64,
        shed: &[Stage],
    ) -> Result<Traffic, LoadError>;
}

/// A model's address-space footprint, as reported by
/// [`LoadModel::footprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// Total bytes of address space the layout occupies (one past the last
    /// byte of the highest buffer).
    pub total_bytes: u64,
    /// Every buffer region, for overlap/invariant checks.
    pub regions: Vec<Region>,
}

/// The operation stream a [`LoadModel`] produces for one captured frame.
///
/// Single-tenant models wrap one [`FrameTraffic`]; the multi-tenant model
/// interleaves N of them round-robin (the memory subsystem sees the tenants'
/// requests arrive interleaved, which is exactly the contention being
/// modeled).
#[derive(Debug, Clone)]
pub enum Traffic {
    /// One tenant's frame traffic.
    Single(FrameTraffic),
    /// N tenants' traffic, interleaved.
    Multi(MultiTenantTraffic),
}

impl Traffic {
    /// Total bytes the whole frame will move.
    pub fn total_bytes(&self) -> u64 {
        match self {
            Traffic::Single(t) => t.total_bytes(),
            Traffic::Multi(t) => t.total_bytes(),
        }
    }

    /// The stage currently emitting, if any (for profiling attribution; in
    /// the multi-tenant case, the next tenant's current stage).
    pub fn current_stage(&self) -> Option<Stage> {
        match self {
            Traffic::Single(t) => t.current_stage(),
            Traffic::Multi(t) => t.current_stage(),
        }
    }

    /// Planned bytes per stage before any ops are consumed, in pipeline
    /// order, summed across tenants. The degradation layer reads this to
    /// decide what to shed and to account shed bytes.
    pub fn stage_bytes(&self) -> Vec<(Stage, u64)> {
        match self {
            Traffic::Single(t) => t.stage_bytes(),
            Traffic::Multi(t) => t.stage_bytes(),
        }
    }

    /// Tenant address spans (empty for single-tenant traffic).
    pub fn tenant_spans(&self) -> &[Region] {
        match self {
            Traffic::Single(_) => &[],
            Traffic::Multi(t) => t.spans(),
        }
    }
}

impl Iterator for Traffic {
    type Item = LoadOp;

    fn next(&mut self) -> Option<LoadOp> {
        match self {
            Traffic::Single(t) => t.next(),
            Traffic::Multi(t) => t.next(),
        }
    }
}

/// Round-robin interleaving of N tenants' [`FrameTraffic`] streams.
#[derive(Debug, Clone)]
pub struct MultiTenantTraffic {
    tenants: Vec<FrameTraffic>,
    spans: Vec<Region>,
    next: usize,
}

impl MultiTenantTraffic {
    /// Builds the interleaved stream from per-tenant traffic and the
    /// tenants' address spans (parallel vectors).
    pub fn new(tenants: Vec<FrameTraffic>, spans: Vec<Region>) -> Self {
        debug_assert_eq!(tenants.len(), spans.len());
        MultiTenantTraffic {
            tenants,
            spans,
            next: 0,
        }
    }

    /// Total bytes across all tenants.
    pub fn total_bytes(&self) -> u64 {
        self.tenants.iter().map(FrameTraffic::total_bytes).sum()
    }

    /// The next-to-emit tenant's current stage.
    pub fn current_stage(&self) -> Option<Stage> {
        let n = self.tenants.len();
        (0..n)
            .map(|i| &self.tenants[(self.next + i) % n])
            .find_map(FrameTraffic::current_stage)
    }

    /// Per-stage planned bytes summed across tenants, in pipeline order.
    pub fn stage_bytes(&self) -> Vec<(Stage, u64)> {
        let mut totals = [0u64; Stage::ALL.len()];
        for t in &self.tenants {
            for (stage, bytes) in t.stage_bytes() {
                let idx = Stage::ALL.iter().position(|&s| s == stage);
                if let Some(idx) = idx {
                    totals[idx] += bytes;
                }
            }
        }
        Stage::ALL
            .iter()
            .zip(totals)
            .filter(|&(_, b)| b > 0)
            .map(|(&s, b)| (s, b))
            .collect()
    }

    /// Tenant address spans, in tenant order.
    pub fn spans(&self) -> &[Region] {
        &self.spans
    }
}

impl Iterator for MultiTenantTraffic {
    type Item = LoadOp;

    fn next(&mut self) -> Option<LoadOp> {
        let n = self.tenants.len();
        for i in 0..n {
            let idx = (self.next + i) % n;
            if let Some(op) = self.tenants[idx].next() {
                self.next = (idx + 1) % n;
                return Some(op);
            }
        }
        None
    }
}

// ---- Table I ---------------------------------------------------------------

/// The paper's Table I H.264 recording model, behind the trait.
///
/// Byte-identical to the pre-trait engine paths: the layout, the rotation of
/// reference frames across captured frames, and the emitted operation stream
/// all reuse the exact same code.
#[derive(Debug, Clone)]
pub struct TableIModel {
    use_case: UseCase,
}

impl TableIModel {
    /// Wraps a use case in the trait.
    pub fn new(use_case: UseCase) -> Self {
        TableIModel { use_case }
    }
}

impl LoadModel for TableIModel {
    fn name(&self) -> String {
        "h264-record".to_string()
    }

    fn use_case(&self) -> &UseCase {
        &self.use_case
    }

    fn validate(&self) -> Result<(), LoadError> {
        self.use_case.validate()
    }

    fn bits_per_second(&self) -> u64 {
        self.use_case.table_row().bits_per_second()
    }

    fn stage_rows(&self, _frame: u64) -> Vec<StageTraffic> {
        self.use_case.stage_traffic()
    }

    fn footprint(&self, options: &LayoutOptions) -> Result<Footprint, LoadError> {
        let layout = FrameLayout::with_options(&self.use_case, options)?;
        Ok(Footprint {
            total_bytes: layout.total_bytes(),
            regions: layout.regions(),
        })
    }

    fn traffic(
        &self,
        options: &LayoutOptions,
        chunk_bytes: u32,
        frame: u64,
        shed: &[Stage],
    ) -> Result<Traffic, LoadError> {
        let layout = FrameLayout::with_options(&self.use_case, options)?.rotated(frame);
        let t = FrameTraffic::without_stages(&self.use_case, &layout, chunk_bytes, shed)?;
        Ok(Traffic::Single(t))
    }
}

// ---- HEVC / VVC ------------------------------------------------------------

/// Table I rescaled to a modern codec ([`CodecProfile`]).
///
/// The image-processing stages (camera through display) are raster-driven
/// and codec-independent, so they are untouched. The coding stages scale:
/// the encoder's reference reads by the profile's measured access ratio, and
/// the bitstream (hence multiplex and memory-card traffic) by the profile's
/// compression gain. Calibration table and citations: `docs/WORKLOADS.md`.
#[derive(Debug, Clone)]
pub struct CodecModel {
    use_case: UseCase,
    profile: CodecProfile,
}

impl CodecModel {
    /// A codec profile over the given base use case.
    pub fn new(use_case: UseCase, profile: CodecProfile) -> Self {
        CodecModel { use_case, profile }
    }

    /// The profile in effect.
    pub fn profile(&self) -> CodecProfile {
        self.profile
    }

    fn scaled_rows(&self) -> Vec<StageTraffic> {
        scale_coding_rows(&self.use_case, self.profile.encoder_read_scale(), {
            let (n, d) = self.profile.bitrate_scale();
            let v = self.use_case.video_kbps * 1_000 / self.use_case.fps as u64;
            v * n / d
        })
    }
}

/// Rewrites the coding stages of `use_case`'s Table I rows: encoder
/// reference reads scaled by `read_scale`, and the per-frame video bitstream
/// bits replaced by `video_bits`. Rows that the use-case mode already gates
/// to zero (viewfinder) stay zero.
fn scale_coding_rows(
    use_case: &UseCase,
    read_scale: (u64, u64),
    video_bits: u64,
) -> Vec<StageTraffic> {
    let (rn, rd) = read_scale;
    let n12 = use_case.video.bits(PixelFormat::Yuv420);
    let a = use_case.audio_kbps * 1_000 / use_case.fps as u64;
    use_case
        .stage_traffic()
        .into_iter()
        .map(|t| {
            let gated = |base: u64, scaled: u64| if base == 0 { 0 } else { scaled };
            match t.stage {
                Stage::VideoEncoder => StageTraffic {
                    stage: t.stage,
                    read_bits: t.read_bits * rn / rd,
                    write_bits: gated(t.write_bits, n12 + video_bits),
                },
                Stage::Multiplex => StageTraffic {
                    stage: t.stage,
                    read_bits: gated(t.read_bits, video_bits + a),
                    write_bits: gated(t.write_bits, video_bits + a),
                },
                Stage::MemoryCard => StageTraffic {
                    stage: t.stage,
                    read_bits: gated(t.read_bits, video_bits + a),
                    write_bits: 0,
                },
                _ => t,
            }
        })
        .collect()
}

/// Sums a row set into bits per second at the use case's capture rate.
fn rows_bits_per_second(rows: &[StageTraffic], fps: u32) -> u64 {
    rows.iter().map(StageTraffic::total_bits).sum::<u64>() * fps as u64
}

impl LoadModel for CodecModel {
    fn name(&self) -> String {
        self.profile.workload_name().to_string()
    }

    fn use_case(&self) -> &UseCase {
        &self.use_case
    }

    fn validate(&self) -> Result<(), LoadError> {
        self.use_case.validate()
    }

    fn bits_per_second(&self) -> u64 {
        rows_bits_per_second(&self.scaled_rows(), self.use_case.fps)
    }

    fn stage_rows(&self, _frame: u64) -> Vec<StageTraffic> {
        self.scaled_rows()
    }

    fn footprint(&self, options: &LayoutOptions) -> Result<Footprint, LoadError> {
        // Buffer geometry is Table I's: same reference count, same rings.
        TableIModel::new(self.use_case).footprint(options)
    }

    fn traffic(
        &self,
        options: &LayoutOptions,
        chunk_bytes: u32,
        frame: u64,
        shed: &[Stage],
    ) -> Result<Traffic, LoadError> {
        let layout = FrameLayout::with_options(&self.use_case, options)?.rotated(frame);
        let t = FrameTraffic::with_rows(
            &self.use_case,
            &self.scaled_rows(),
            &layout,
            chunk_bytes,
            shed,
        )?;
        Ok(Traffic::Single(t))
    }
}

// ---- Stochastic ------------------------------------------------------------

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to derive the
/// per-frame random draw from `(seed, frame)` so the chain is a pure
/// function of its parameters — no RNG state to share across threads.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three traffic states of the stochastic generator's Markov chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrafficState {
    /// Easy content: coding traffic below nominal.
    Calm,
    /// The Table I baseline.
    Nominal,
    /// Hard content (scene change, high motion): coding traffic above
    /// nominal.
    Burst,
}

/// Markov-modulated per-frame traffic, seed-deterministic.
///
/// Video coding load is content-dependent and bursty; Poisson hidden-Markov
/// models fit measured video traffic well (arXiv:1301.0344). This model
/// drives the Table I *coding* stages (encoder reads, bitstream, multiplex,
/// memory card) with a three-state chain — Calm / Nominal / Burst — while
/// the raster-driven image stages stay constant. The chain's step at frame
/// `f` draws from `splitmix64(seed ⊕ splitmix64(f))`, making the whole
/// stream a pure function of `(seed, frame)`: same seed ⇒ bit-identical
/// ops, on any thread count. Parameters and transition matrix:
/// `docs/WORKLOADS.md`.
#[derive(Debug, Clone)]
pub struct StochasticModel {
    use_case: UseCase,
    params: StochasticParams,
}

impl StochasticModel {
    /// A stochastic generator over the given base use case.
    pub fn new(use_case: UseCase, params: StochasticParams) -> Self {
        StochasticModel { use_case, params }
    }

    /// The generator's parameters.
    pub fn params(&self) -> StochasticParams {
        self.params
    }

    /// The chain state at captured frame `frame`, walked deterministically
    /// from frame 0 (which is always Nominal).
    fn state_at(&self, frame: u64) -> TrafficState {
        let b = self.params.burstiness_pct as u64;
        let mut state = TrafficState::Nominal;
        for f in 1..=frame {
            let r = splitmix64(self.params.seed ^ splitmix64(f)) % 100;
            state = match state {
                TrafficState::Nominal => {
                    if r < 10 + 2 * b / 5 {
                        TrafficState::Burst
                    } else if r >= 85 {
                        TrafficState::Calm
                    } else {
                        TrafficState::Nominal
                    }
                }
                TrafficState::Burst => {
                    if r < 30 + b / 2 {
                        TrafficState::Burst
                    } else {
                        TrafficState::Nominal
                    }
                }
                TrafficState::Calm => {
                    if r < 40 {
                        TrafficState::Calm
                    } else {
                        TrafficState::Nominal
                    }
                }
            };
        }
        state
    }

    /// Coding-traffic scale for a state, in percent of nominal.
    fn scale_pct(&self, state: TrafficState) -> u64 {
        let b = self.params.burstiness_pct as u64;
        match state {
            TrafficState::Calm => 100 - b / 2,
            TrafficState::Nominal => 100,
            TrafficState::Burst => 100 + b,
        }
    }

    fn rows_at(&self, frame: u64) -> Vec<StageTraffic> {
        let pct = self.scale_pct(self.state_at(frame));
        let uc = &self.use_case;
        let base = uc.stage_traffic();
        let enc_read = base[7].read_bits * pct / 100;
        let v = uc.video_kbps * 1_000 / uc.fps as u64 * pct / 100;
        let mut rows = scale_coding_rows(uc, (1, 1), v);
        rows[7].read_bits = enc_read;
        rows
    }
}

impl LoadModel for StochasticModel {
    fn name(&self) -> String {
        crate::workload::Workload::Stochastic(self.params).name()
    }

    fn use_case(&self) -> &UseCase {
        &self.use_case
    }

    fn validate(&self) -> Result<(), LoadError> {
        if self.params.burstiness_pct > 100 {
            return Err(LoadError::BadParam {
                reason: format!("burstiness {} must be 0..=100", self.params.burstiness_pct),
            });
        }
        self.use_case.validate()
    }

    fn bits_per_second(&self) -> u64 {
        // Nominal-state demand: the long-run typical load. Bursts exceed it
        // by up to `burstiness_pct` on the coding share; the pacing margin
        // exists to absorb exactly that.
        self.use_case.table_row().bits_per_second()
    }

    fn stage_rows(&self, frame: u64) -> Vec<StageTraffic> {
        self.rows_at(frame)
    }

    fn footprint(&self, options: &LayoutOptions) -> Result<Footprint, LoadError> {
        TableIModel::new(self.use_case).footprint(options)
    }

    fn traffic(
        &self,
        options: &LayoutOptions,
        chunk_bytes: u32,
        frame: u64,
        shed: &[Stage],
    ) -> Result<Traffic, LoadError> {
        let layout = FrameLayout::with_options(&self.use_case, options)?.rotated(frame);
        let t = FrameTraffic::with_rows(
            &self.use_case,
            &self.rows_at(frame),
            &layout,
            chunk_bytes,
            shed,
        )?;
        Ok(Traffic::Single(t))
    }
}

// ---- Multi-tenant ----------------------------------------------------------

/// What one tenant of the multi-tenant workload is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantRole {
    /// Full Table I recording.
    Record,
    /// Playback: decode-and-display, modeled by the viewfinder chain (the
    /// image pipeline and display refresh, no encoding).
    Playback,
    /// Display-only refresh, also the viewfinder chain.
    Display,
}

impl TenantRole {
    /// Role label used in QoS reports.
    pub fn label(self) -> &'static str {
        match self {
            TenantRole::Record => "record",
            TenantRole::Playback => "playback",
            TenantRole::Display => "display",
        }
    }
}

/// N concurrent use cases contending for the same memory channels.
///
/// Tenants cycle through the roles record → playback → display (so
/// `multi-tenant:3` is the paper's "camcorder that also plays back" device:
/// one recording pipeline plus two display-class consumers). Each tenant
/// owns a disjoint span of the address space — its own frame buffers —
/// and the tenants' operation streams are interleaved round-robin, which is
/// what makes them contend for channels, banks and rows. Per-tenant QoS
/// stats are attributed by span; verify's MCM204 rule checks that no access
/// escapes its tenant's span.
#[derive(Debug, Clone)]
pub struct MultiTenantModel {
    tenants: Vec<(TenantRole, UseCase)>,
    base: UseCase,
}

impl MultiTenantModel {
    /// `n` tenants derived from the base use case, cycling record /
    /// playback / display roles.
    pub fn new(base: UseCase, n: u32) -> Self {
        const ROLES: [TenantRole; 3] = [
            TenantRole::Record,
            TenantRole::Playback,
            TenantRole::Display,
        ];
        let tenants = (0..n.max(1))
            .map(|i| {
                let role = ROLES[i as usize % ROLES.len()];
                let uc = match role {
                    TenantRole::Record => base,
                    TenantRole::Playback | TenantRole::Display => UseCase {
                        mode: UseCaseMode::Viewfinder,
                        ..base
                    },
                };
                (role, uc)
            })
            .collect();
        MultiTenantModel { tenants, base }
    }

    /// The tenants' roles, in tenant order.
    pub fn roles(&self) -> Vec<TenantRole> {
        self.tenants.iter().map(|(r, _)| *r).collect()
    }

    /// Per-tenant layouts shifted to disjoint address spans, plus the spans
    /// themselves.
    fn layouts(
        &self,
        options: &LayoutOptions,
    ) -> Result<(Vec<FrameLayout>, Vec<Region>), LoadError> {
        let align = crate::buffers::layout_alignment(options);
        let mut offset = 0u64;
        let mut layouts = Vec::with_capacity(self.tenants.len());
        let mut spans = Vec::with_capacity(self.tenants.len());
        for (_, uc) in &self.tenants {
            let remaining = LayoutOptions {
                capacity_bytes: options.capacity_bytes.saturating_sub(offset),
                ..*options
            };
            let mut layout = FrameLayout::with_options(uc, &remaining).map_err(|e| match e {
                // Report the overflow against the whole memory, not the
                // remainder this tenant saw.
                LoadError::LayoutOverflow { needed, .. } => LoadError::LayoutOverflow {
                    needed: offset + needed,
                    capacity: options.capacity_bytes,
                },
                other => other,
            })?;
            layout.shift(offset);
            let end = layout.total_bytes();
            spans.push(Region {
                start: offset,
                len: end - offset,
            });
            offset = end.div_ceil(align) * align;
            layouts.push(layout);
        }
        Ok((layouts, spans))
    }
}

impl LoadModel for MultiTenantModel {
    fn name(&self) -> String {
        format!("multi-tenant:{}", self.tenants.len())
    }

    fn use_case(&self) -> &UseCase {
        &self.base
    }

    fn validate(&self) -> Result<(), LoadError> {
        for (_, uc) in &self.tenants {
            uc.validate()?;
        }
        Ok(())
    }

    fn bits_per_second(&self) -> u64 {
        self.tenants
            .iter()
            .map(|(_, uc)| uc.table_row().bits_per_second())
            .sum()
    }

    fn stage_rows(&self, _frame: u64) -> Vec<StageTraffic> {
        // Aggregate per-stage demand across tenants, in pipeline order.
        let mut totals = vec![
            StageTraffic {
                stage: Stage::CameraIf,
                read_bits: 0,
                write_bits: 0,
            };
            Stage::ALL.len()
        ];
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            totals[i].stage = stage;
        }
        for (_, uc) in &self.tenants {
            for (i, row) in uc.stage_traffic().into_iter().enumerate() {
                totals[i].read_bits += row.read_bits;
                totals[i].write_bits += row.write_bits;
            }
        }
        totals
    }

    fn footprint(&self, options: &LayoutOptions) -> Result<Footprint, LoadError> {
        let (layouts, _) = self.layouts(options)?;
        let total_bytes = layouts.last().map_or(0, FrameLayout::total_bytes);
        let regions = layouts.iter().flat_map(FrameLayout::regions).collect();
        Ok(Footprint {
            total_bytes,
            regions,
        })
    }

    fn tenant_spans(&self, options: &LayoutOptions) -> Result<Vec<Region>, LoadError> {
        Ok(self.layouts(options)?.1)
    }

    fn tenant_names(&self) -> Vec<String> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, (role, _))| format!("tenant{}:{}", i, role.label()))
            .collect()
    }

    fn traffic(
        &self,
        options: &LayoutOptions,
        chunk_bytes: u32,
        frame: u64,
        shed: &[Stage],
    ) -> Result<Traffic, LoadError> {
        let (layouts, spans) = self.layouts(options)?;
        let mut streams = Vec::with_capacity(layouts.len());
        for ((_, uc), layout) in self.tenants.iter().zip(layouts) {
            let rotated = layout.rotated(frame);
            streams.push(FrameTraffic::without_stages(
                uc,
                &rotated,
                chunk_bytes,
                shed,
            )?);
        }
        Ok(Traffic::Multi(MultiTenantTraffic::new(streams, spans)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::HdOperatingPoint;
    use crate::workload::{StochasticParams, Workload};

    fn uc() -> UseCase {
        UseCase::hd(HdOperatingPoint::Hd720p30)
    }

    fn opts() -> LayoutOptions {
        LayoutOptions::bank_staggered(512 << 20, 2048, 4, 4)
    }

    fn ops(model: &dyn LoadModel, frame: u64) -> Vec<LoadOp> {
        model.traffic(&opts(), 64, frame, &[]).unwrap().collect()
    }

    #[test]
    fn table_i_model_is_byte_identical_to_the_legacy_path() {
        let model = TableIModel::new(uc());
        let layout = FrameLayout::with_options(&uc(), &opts()).unwrap();
        let legacy: Vec<LoadOp> = FrameTraffic::new(&uc(), &layout, 64).unwrap().collect();
        assert_eq!(ops(&model, 0), legacy);
    }

    #[test]
    fn table_i_model_rotates_references_per_frame() {
        let model = TableIModel::new(uc());
        let f0 = ops(&model, 0);
        let f1 = ops(&model, 1);
        assert_eq!(f0.len(), f1.len());
        assert_ne!(f0, f1, "reference rotation must move addresses");
        let bytes = |v: &[LoadOp]| v.iter().map(|o| o.len as u64).sum::<u64>();
        assert_eq!(bytes(&f0), bytes(&f1));
    }

    #[test]
    fn hevc_scales_encoder_reads_up_and_streams_down() {
        let base = uc().stage_traffic();
        let hevc = CodecModel::new(uc(), CodecProfile::Hevc);
        let rows = hevc.stage_rows(0);
        assert_eq!(rows[7].read_bits, base[7].read_bits * 3 / 2);
        assert!(rows[9].total_bits() < base[9].total_bits());
        // Image stages untouched.
        for i in 0..7 {
            assert_eq!(rows[i], base[i], "stage {i}");
        }
        // Emitted ops match the plan.
        let t = hevc.traffic(&opts(), 64, 0, &[]).unwrap();
        let planned = t.total_bytes();
        assert_eq!(t.map(|o| o.len as u64).sum::<u64>(), planned);
    }

    #[test]
    fn vvc_reads_more_than_hevc_but_streams_less() {
        let hevc = CodecModel::new(uc(), CodecProfile::Hevc);
        let vvc = CodecModel::new(uc(), CodecProfile::Vvc);
        assert!(vvc.stage_rows(0)[7].read_bits > hevc.stage_rows(0)[7].read_bits);
        assert!(vvc.stage_rows(0)[10].read_bits < hevc.stage_rows(0)[10].read_bits);
    }

    #[test]
    fn codec_profiles_gate_like_viewfinder() {
        let vf = UseCase::viewfinder(HdOperatingPoint::Hd720p30);
        let model = CodecModel::new(vf, CodecProfile::Vvc);
        for row in model.stage_rows(0) {
            if !row.stage.is_image_processing() {
                assert_eq!(row.total_bits(), 0, "{} must stay gated", row.stage);
            }
        }
    }

    #[test]
    fn stochastic_same_seed_is_bit_identical() {
        let p = StochasticParams {
            seed: 42,
            burstiness_pct: 80,
        };
        let a = StochasticModel::new(uc(), p);
        let b = StochasticModel::new(uc(), p);
        for frame in [0u64, 1, 7, 23] {
            assert_eq!(ops(&a, frame), ops(&b, frame), "frame {frame}");
        }
    }

    #[test]
    fn stochastic_seeds_diverge_and_modulate_coding_only() {
        let a = StochasticModel::new(
            uc(),
            StochasticParams {
                seed: 1,
                burstiness_pct: 100,
            },
        );
        let mut coding_totals = Vec::new();
        for frame in 0..32 {
            let rows = a.stage_rows(frame);
            // Image stages never move.
            for (row, base) in rows.iter().zip(uc().stage_traffic()).take(7) {
                assert_eq!(*row, base);
            }
            coding_totals.push(rows[7].total_bits());
        }
        coding_totals.dedup();
        assert!(
            coding_totals.len() > 1,
            "burstiness 100 must visit more than one state in 32 frames"
        );
    }

    #[test]
    fn stochastic_zero_burstiness_is_the_nominal_load() {
        let m = StochasticModel::new(
            uc(),
            StochasticParams {
                seed: 99,
                burstiness_pct: 0,
            },
        );
        for frame in 0..16 {
            assert_eq!(m.stage_rows(frame), uc().stage_traffic(), "frame {frame}");
        }
    }

    #[test]
    fn multi_tenant_spans_are_disjoint_and_cover_all_ops() {
        let m = MultiTenantModel::new(uc(), 3);
        let spans = m.tenant_spans(&opts()).unwrap();
        assert_eq!(spans.len(), 3);
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                assert!(!a.overlaps(b), "tenant spans overlap");
            }
        }
        let t = m.traffic(&opts(), 64, 0, &[]).unwrap();
        for op in t {
            let inside = spans
                .iter()
                .any(|s| op.addr >= s.start && op.addr + op.len as u64 <= s.end());
            assert!(inside, "op at {:#x} escapes every tenant span", op.addr);
        }
    }

    #[test]
    fn multi_tenant_total_is_the_sum_of_tenants() {
        let m = MultiTenantModel::new(uc(), 3);
        let record = TableIModel::new(uc());
        let view = TableIModel::new(UseCase::viewfinder(HdOperatingPoint::Hd720p30));
        assert_eq!(
            m.bits_per_second(),
            record.bits_per_second() + 2 * view.bits_per_second()
        );
        let t = m.traffic(&opts(), 64, 0, &[]).unwrap();
        let rec_t = record.traffic(&opts(), 64, 0, &[]).unwrap();
        let view_opts = opts();
        let view_t = view.traffic(&view_opts, 64, 0, &[]).unwrap();
        assert_eq!(
            t.total_bytes(),
            rec_t.total_bytes() + 2 * view_t.total_bytes()
        );
    }

    #[test]
    fn multi_tenant_interleaves_round_robin() {
        let m = MultiTenantModel::new(uc(), 2);
        let spans = m.tenant_spans(&opts()).unwrap();
        let first: Vec<LoadOp> = m.traffic(&opts(), 64, 0, &[]).unwrap().take(8).collect();
        let tenant_of = |op: &LoadOp| {
            spans
                .iter()
                .position(|s| op.addr >= s.start && op.addr < s.end())
                .unwrap()
        };
        for pair in first.chunks(2) {
            assert_eq!(tenant_of(&pair[0]), 0);
            assert_eq!(tenant_of(&pair[1]), 1);
        }
    }

    #[test]
    fn multi_tenant_overflow_reports_combined_numbers() {
        let m = MultiTenantModel::new(UseCase::hd(HdOperatingPoint::Uhd2160p30), 4);
        let err = m.footprint(&LayoutOptions::tight(256 << 20)).unwrap_err();
        match err {
            LoadError::LayoutOverflow { needed, capacity } => {
                assert_eq!(capacity, 256 << 20);
                assert!(needed > 256 << 20);
            }
            other => panic!("expected LayoutOverflow, got {other:?}"),
        }
    }

    #[test]
    fn workload_model_names_match_the_workload() {
        for w in [
            Workload::TableI,
            Workload::Codec(CodecProfile::Vvc),
            Workload::Stochastic(StochasticParams::default()),
            Workload::MultiTenant(2),
        ] {
            assert_eq!(w.model(&uc()).name(), w.name());
        }
    }

    #[test]
    fn tenant_names_follow_role_cycle() {
        let m = MultiTenantModel::new(uc(), 4);
        assert_eq!(
            m.tenant_names(),
            vec![
                "tenant0:record",
                "tenant1:playback",
                "tenant2:display",
                "tenant3:record"
            ]
        );
        assert!(TableIModel::new(uc()).tenant_names().is_empty());
    }
}
