//! The video-recording use case: parameters and the Table I traffic model.
//!
//! The model follows Fig. 1 literally. With `N` the recorded pixel count,
//! `B = 1.44·N` the 20 %-bordered capture size, `z` the digizoom factor,
//! `V`/`A` the video/audio stream rates and `refs` the reference-frame
//! count, the per-frame execution-memory traffic is:
//!
//! | stage | read | write |
//! |---|---|---|
//! | Camera I/F            | —                | B × 16 |
//! | Preprocess            | B × 16           | B × 16 |
//! | Bayer to YUV          | B × 16           | B × 16 |
//! | Video stabilization   | B × 16           | N × 16 |
//! | Post proc & digizoom  | (N/z²) × 16      | N × 16 |
//! | Scaling to display    | N × 16           | WVGA × 24 |
//! | DisplayCtrl           | WVGA × 24 × 60/fps | — |
//! | Video encoder         | 6 · refs · N × 12 | N × 12 + V/fps |
//! | Audio                 | —                | A/fps |
//! | Multiplex             | (V+A)/fps        | (V+A)/fps |
//! | Memory card           | (V+A)/fps        | — |
//!
//! The encoder's constant factor six is the paper's own estimate ("the video
//! encoding exhibits an implementation dependent constant factor that is
//! estimated to be six"); it covers current-frame reads and motion-search
//! overfetch. With **four reference frames per HD level** this model lands
//! on the paper's prose anchors: ≈1.9 GB/s for 720p30, ≈4.3 GB/s (2.2×) for
//! 1080p30 and ≈8.6 GB/s for 1080p60 — see EXPERIMENTS.md.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::LoadError;
use crate::formats::{FrameFormat, PixelFormat};
use crate::levels::{H264Level, HdOperatingPoint};
use crate::stages::{Stage, StageTraffic};

/// What the device is doing with the captured stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum UseCaseMode {
    /// Full recording: encode, multiplex, write to removable media
    /// (the paper's use case).
    #[default]
    Recording,
    /// Viewfinder only: the image-processing chain runs and the display
    /// refreshes, but nothing is encoded or stored. The video-coding
    /// stages contribute no memory traffic.
    Viewfinder,
}

/// How the reference-frame count is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefFrames {
    /// A fixed count (the paper's Table I reports its own row of values;
    /// four per HD level reproduces the prose anchors).
    Fixed(u32),
    /// The maximum the level's decoded-picture-buffer limit allows for the
    /// recorded format.
    DpbMax,
}

/// Full parameter set of the recording use case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UseCase {
    /// Recorded frame format.
    pub video: FrameFormat,
    /// Capture rate, fps.
    pub fps: u32,
    /// H.264 level (bounds bitrate and DPB).
    pub level: H264Level,
    /// Digital zoom factor `z ≥ 1` (Fig. 1's post-processing stage reads
    /// `N/z²` source pixels).
    pub digizoom: f64,
    /// Device display format (paper: WVGA).
    pub display: FrameFormat,
    /// Display refresh rate, Hz (paper: 60).
    pub display_hz: u32,
    /// Output video bitrate, kbit/s (defaults to the level maximum).
    pub video_kbps: u64,
    /// Audio bitrate, kbit/s.
    pub audio_kbps: u64,
    /// Reference-frame selection.
    pub ref_frames: RefFrames,
    /// The encoder's implementation-dependent traffic factor (paper: 6).
    pub encoder_factor: u32,
    /// Recording or viewfinder-only operation.
    pub mode: UseCaseMode,
}

impl UseCase {
    /// The paper's use case at one of the five Table I operating points.
    pub fn hd(point: HdOperatingPoint) -> Self {
        UseCase {
            video: point.format(),
            fps: point.fps(),
            level: point.level(),
            digizoom: 1.0,
            display: FrameFormat::WVGA,
            display_hz: 60,
            video_kbps: point.level().limits().max_br_kbps,
            audio_kbps: 128,
            ref_frames: RefFrames::Fixed(4),
            encoder_factor: 6,
            mode: UseCaseMode::Recording,
        }
    }

    /// The same chain in viewfinder mode: capture, process and display, but
    /// encode/store nothing.
    pub fn viewfinder(point: HdOperatingPoint) -> Self {
        UseCase {
            mode: UseCaseMode::Viewfinder,
            ..Self::hd(point)
        }
    }

    /// Validates parameter consistency against the H.264 level limits.
    pub fn validate(&self) -> Result<(), LoadError> {
        if self.fps == 0 || self.display_hz == 0 {
            return Err(LoadError::BadParam {
                reason: "fps and display_hz must be non-zero".into(),
            });
        }
        if !self.digizoom.is_finite() || self.digizoom < 1.0 {
            return Err(LoadError::BadParam {
                reason: format!("digizoom {} must be finite and >= 1", self.digizoom),
            });
        }
        if self.encoder_factor == 0 {
            return Err(LoadError::BadParam {
                reason: "encoder_factor must be non-zero".into(),
            });
        }
        if !self.level.supports(self.video, self.fps) {
            return Err(LoadError::LevelExceeded {
                level: self.level,
                width: self.video.width,
                height: self.video.height,
                fps: self.fps,
            });
        }
        if self.video_kbps > self.level.limits().max_br_kbps {
            return Err(LoadError::BadParam {
                reason: format!(
                    "bitrate {} kbps exceeds level {} maximum {} kbps",
                    self.video_kbps,
                    self.level,
                    self.level.limits().max_br_kbps
                ),
            });
        }
        let refs = self.resolved_ref_frames();
        if refs == 0 {
            return Err(LoadError::BadParam {
                reason: "reference frame count must be non-zero".into(),
            });
        }
        let dpb_max = self.level.max_ref_frames(self.video);
        if refs > dpb_max {
            return Err(LoadError::BadParam {
                reason: format!(
                    "{refs} reference frames exceed the level {} DPB limit of {dpb_max}",
                    self.level
                ),
            });
        }
        Ok(())
    }

    /// The concrete reference-frame count in effect.
    pub fn resolved_ref_frames(&self) -> u32 {
        match self.ref_frames {
            RefFrames::Fixed(n) => n,
            RefFrames::DpbMax => self.level.max_ref_frames(self.video),
        }
    }

    /// Video bits per captured frame (bitstream share).
    fn video_bits_per_frame(&self) -> u64 {
        self.video_kbps * 1_000 / self.fps as u64
    }

    /// Audio bits per captured frame.
    fn audio_bits_per_frame(&self) -> u64 {
        self.audio_kbps * 1_000 / self.fps as u64
    }

    /// Per-stage execution-memory traffic for one captured frame.
    pub fn stage_traffic(&self) -> Vec<StageTraffic> {
        let n16 = self.video.bits(PixelFormat::Yuv422); // N x 16 (also Bayer)
        let n12 = self.video.bits(PixelFormat::Yuv420);
        let b16 = self
            .video
            .with_stabilization_border()
            .bits(PixelFormat::BayerRgb16);
        let zoom_read = (self.video.pixels() as f64 / (self.digizoom * self.digizoom)) as u64
            * PixelFormat::Yuv422.bits_per_pixel() as u64;
        let wvga24 = self.display.bits(PixelFormat::Rgb888);
        let display_per_frame = wvga24 * self.display_hz as u64 / self.fps as u64;
        let v = self.video_bits_per_frame();
        let a = self.audio_bits_per_frame();
        let refs = self.resolved_ref_frames() as u64;
        let coding = self.mode == UseCaseMode::Recording;
        let gate = |bits: u64| if coding { bits } else { 0 };
        let enc_read = gate(self.encoder_factor as u64 * refs * n12);

        let t = |stage, read_bits, write_bits| StageTraffic {
            stage,
            read_bits,
            write_bits,
        };
        vec![
            t(Stage::CameraIf, 0, b16),
            t(Stage::Preprocess, b16, b16),
            t(Stage::BayerToYuv, b16, b16),
            t(Stage::Stabilization, b16, n16),
            t(Stage::PostProcDigizoom, zoom_read, n16),
            t(Stage::ScaleToDisplay, n16, wvga24),
            t(Stage::DisplayCtrl, display_per_frame, 0),
            t(Stage::VideoEncoder, enc_read, gate(n12 + v)),
            t(Stage::Audio, 0, gate(a)),
            t(Stage::Multiplex, gate(v + a), gate(v + a)),
            t(Stage::MemoryCard, gate(v + a), 0),
        ]
    }

    /// Table I summary for this use case.
    pub fn table_row(&self) -> TableRow {
        let traffic = self.stage_traffic();
        let image: u64 = traffic
            .iter()
            .filter(|t| t.stage.is_image_processing())
            .map(StageTraffic::total_bits)
            .sum();
        let coding: u64 = traffic
            .iter()
            .filter(|t| !t.stage.is_image_processing())
            .map(StageTraffic::total_bits)
            .sum();
        TableRow {
            image_bits_per_frame: image,
            coding_bits_per_frame: coding,
            fps: self.fps,
        }
    }
}

/// The bottom rows of Table I: per-frame and per-second totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRow {
    /// "Image proc. total (1 frame)", bits.
    pub image_bits_per_frame: u64,
    /// "Video coding total (1 frame)", bits.
    pub coding_bits_per_frame: u64,
    /// Capture rate the totals scale by.
    pub fps: u32,
}

impl TableRow {
    /// "Data Mem. load (1 frame)", bits.
    pub fn bits_per_frame(&self) -> u64 {
        self.image_bits_per_frame + self.coding_bits_per_frame
    }

    /// "Data Mem. load (1 frame)", bytes.
    pub fn bytes_per_frame(&self) -> u64 {
        self.bits_per_frame().div_ceil(8)
    }

    /// "Data Mem. load (1 s)", bits.
    pub fn bits_per_second(&self) -> u64 {
        self.bits_per_frame() * self.fps as u64
    }

    /// "Data Mem. load [MB/s]" (decimal megabytes, as in the paper).
    pub fn mbytes_per_second(&self) -> f64 {
        self.bits_per_second() as f64 / 8.0 / 1e6
    }

    /// Total load in GB/s (decimal), the unit of the paper's prose.
    pub fn gbytes_per_second(&self) -> f64 {
        self.bits_per_second() as f64 / 8.0 / 1e9
    }
}

impl fmt::Display for TableRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} Mb/frame ({:.2} GB/s)",
            self.bits_per_frame() as f64 / 1e6,
            self.gbytes_per_second()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_720p30_is_about_1_9_gbps() {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.validate().unwrap();
        let row = uc.table_row();
        let gbps = row.gbytes_per_second();
        assert!(
            (1.7..=2.1).contains(&gbps),
            "720p30 load {gbps} GB/s should be near the paper's 1.9"
        );
    }

    #[test]
    fn paper_anchor_1080p30_is_about_4_3_gbps_and_2_2x_720p() {
        let p720 = UseCase::hd(HdOperatingPoint::Hd720p30).table_row();
        let p1080 = UseCase::hd(HdOperatingPoint::Hd1080p30).table_row();
        let gbps = p1080.gbytes_per_second();
        assert!(
            (3.9..=4.6).contains(&gbps),
            "1080p30 load {gbps} GB/s should be near the paper's 4.3"
        );
        let ratio = gbps / p720.gbytes_per_second();
        assert!(
            (2.0..=2.4).contains(&ratio),
            "1080p/720p ratio {ratio} should be near the paper's 2.2"
        );
    }

    #[test]
    fn paper_anchor_1080p60_is_about_8_6_gbps() {
        let row = UseCase::hd(HdOperatingPoint::Hd1080p60).table_row();
        let gbps = row.gbytes_per_second();
        assert!(
            (7.7..=9.2).contains(&gbps),
            "1080p60 load {gbps} GB/s should be near the paper's 8.6"
        );
    }

    #[test]
    fn sixty_fps_halves_display_share_not_total() {
        // At 60 fps the display refresh contributes one WVGA read per frame
        // instead of two.
        let t30 = UseCase::hd(HdOperatingPoint::Hd720p30);
        let t60 = UseCase::hd(HdOperatingPoint::Hd720p60);
        let d30 = t30.stage_traffic()[6];
        let d60 = t60.stage_traffic()[6];
        assert_eq!(d30.stage, Stage::DisplayCtrl);
        assert_eq!(d30.read_bits, 2 * d60.read_bits);
    }

    #[test]
    fn encoder_dominates_the_frame_load() {
        // "The single most memory intensive part is the video encoding."
        for p in HdOperatingPoint::ALL {
            let uc = UseCase::hd(p);
            let traffic = uc.stage_traffic();
            let enc = traffic
                .iter()
                .find(|t| t.stage == Stage::VideoEncoder)
                .unwrap()
                .total_bits();
            for t in &traffic {
                if t.stage != Stage::VideoEncoder {
                    assert!(
                        enc > t.total_bits(),
                        "{p}: {} out-trafficked encoder",
                        t.stage
                    );
                }
            }
        }
    }

    #[test]
    fn digizoom_reduces_postproc_reads_only() {
        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let base = uc.stage_traffic();
        uc.digizoom = 2.0;
        uc.validate().unwrap();
        let zoomed = uc.stage_traffic();
        let idx = Stage::ALL
            .iter()
            .position(|&s| s == Stage::PostProcDigizoom)
            .unwrap();
        assert_eq!(zoomed[idx].read_bits * 4, base[idx].read_bits);
        assert_eq!(zoomed[idx].write_bits, base[idx].write_bits);
        // Everything else unchanged.
        for (b, z) in base.iter().zip(&zoomed) {
            if b.stage != Stage::PostProcDigizoom {
                assert_eq!(b, z);
            }
        }
    }

    #[test]
    fn validation_rejects_inconsistent_parameters() {
        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.fps = 0;
        assert!(uc.validate().is_err());

        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.digizoom = 0.5;
        assert!(uc.validate().is_err());

        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.fps = 120; // exceeds level 3.1 throughput
        assert!(matches!(
            uc.validate(),
            Err(LoadError::LevelExceeded { .. })
        ));

        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.video_kbps = 1_000_000;
        assert!(uc.validate().is_err());

        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.ref_frames = RefFrames::Fixed(0);
        assert!(uc.validate().is_err());

        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.ref_frames = RefFrames::Fixed(9); // DPB allows 5 at 720p L3.1
        assert!(uc.validate().is_err());
    }

    #[test]
    fn dpb_max_resolves_per_level() {
        let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        uc.ref_frames = RefFrames::DpbMax;
        assert_eq!(uc.resolved_ref_frames(), 5);
        uc.validate().unwrap();
        let mut uc = UseCase::hd(HdOperatingPoint::Hd1080p30);
        uc.ref_frames = RefFrames::DpbMax;
        assert_eq!(uc.resolved_ref_frames(), 4);
    }

    #[test]
    fn table_row_units_are_consistent() {
        let row = UseCase::hd(HdOperatingPoint::Hd720p30).table_row();
        assert_eq!(
            row.bits_per_frame(),
            row.image_bits_per_frame + row.coding_bits_per_frame
        );
        assert_eq!(row.bits_per_second(), row.bits_per_frame() * 30);
        let mbs = row.mbytes_per_second();
        assert!((row.gbytes_per_second() - mbs / 1e3).abs() < 1e-9);
        assert!(row.to_string().contains("GB/s"));
    }
}

#[cfg(test)]
mod viewfinder_tests {
    use super::*;
    use crate::levels::HdOperatingPoint;

    #[test]
    fn viewfinder_has_no_coding_traffic() {
        let vf = UseCase::viewfinder(HdOperatingPoint::Hd1080p30);
        vf.validate().unwrap();
        let row = vf.table_row();
        assert_eq!(row.coding_bits_per_frame, 0);
        assert!(row.image_bits_per_frame > 0);
        // The coding stages' rows are all zero.
        for t in vf.stage_traffic() {
            if !t.stage.is_image_processing() {
                assert_eq!(t.total_bits(), 0, "{} should be gated", t.stage);
            }
        }
    }

    #[test]
    fn viewfinder_is_a_fraction_of_recording() {
        let rec = UseCase::hd(HdOperatingPoint::Hd1080p30).table_row();
        let vf = UseCase::viewfinder(HdOperatingPoint::Hd1080p30).table_row();
        assert_eq!(vf.bits_per_frame(), rec.image_bits_per_frame);
        let share = vf.bits_per_frame() as f64 / rec.bits_per_frame() as f64;
        // Image processing is roughly 40% of the total at 1080p30.
        assert!((0.3..0.55).contains(&share), "share {share}");
    }

    #[test]
    fn default_mode_is_recording() {
        assert_eq!(UseCaseMode::default(), UseCaseMode::Recording);
        assert_eq!(
            UseCase::hd(HdOperatingPoint::Hd720p30).mode,
            UseCaseMode::Recording
        );
    }
}
