//! Errors for the load model.

use core::fmt;

use crate::levels::H264Level;

/// Errors raised while building or validating the video-recording use case.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// A parameter failed validation.
    BadParam {
        /// Explanation.
        reason: String,
    },
    /// No H.264 level supports the requested format/rate.
    NoLevelSupports {
        /// Frame width, pixels.
        width: u32,
        /// Frame height, pixels.
        height: u32,
        /// Requested rate, fps.
        fps: u32,
    },
    /// The chosen level cannot sustain the requested format/rate.
    LevelExceeded {
        /// The level that was requested.
        level: H264Level,
        /// Frame width, pixels.
        width: u32,
        /// Frame height, pixels.
        height: u32,
        /// Requested rate, fps.
        fps: u32,
    },
    /// The frame buffers do not fit in the memory capacity provided.
    LayoutOverflow {
        /// Bytes the layout needs.
        needed: u64,
        /// Bytes available.
        capacity: u64,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BadParam { reason } => write!(f, "bad use-case parameter: {reason}"),
            LoadError::NoLevelSupports { width, height, fps } => {
                write!(f, "no H.264 level supports {width}x{height}@{fps}")
            }
            LoadError::LevelExceeded {
                level,
                width,
                height,
                fps,
            } => write!(
                f,
                "H.264 level {level} cannot sustain {width}x{height}@{fps}"
            ),
            LoadError::LayoutOverflow { needed, capacity } => write!(
                f,
                "frame buffers need {needed} bytes but only {capacity} are available"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = LoadError::LevelExceeded {
            level: H264Level::L3_1,
            width: 1920,
            height: 1088,
            fps: 60,
        };
        assert!(e.to_string().contains("3.1"));
        assert!(e.to_string().contains("1920x1088@60"));
        let e = LoadError::LayoutOverflow {
            needed: 100,
            capacity: 50,
        };
        assert!(e.to_string().contains("100"));
    }
}
