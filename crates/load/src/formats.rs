//! Pixel formats and frame formats used along the video-recording chain.
//!
//! The paper's data path (Fig. 1) moves through four encodings: the sensor's
//! Bayer RGB and the intermediate YUV 4:2:2 both store a pixel in 16 bits,
//! H.264 works on YUV 4:2:0 frames at 12 bits per pixel, and the display
//! consumes RGB888 at 24 bits per pixel.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::LoadError;

/// A pixel encoding with its storage cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PixelFormat {
    /// Raw sensor data, one color component per site (16 bits stored).
    BayerRgb16,
    /// YUV 4:2:2, 16 bits per pixel.
    Yuv422,
    /// YUV 4:2:0 (H.264 frame stores), 12 bits per pixel.
    Yuv420,
    /// Display RGB, 24 bits per pixel.
    Rgb888,
}

impl PixelFormat {
    /// Storage cost in bits per pixel.
    pub fn bits_per_pixel(self) -> u32 {
        match self {
            PixelFormat::BayerRgb16 | PixelFormat::Yuv422 => 16,
            PixelFormat::Yuv420 => 12,
            PixelFormat::Rgb888 => 24,
        }
    }
}

impl fmt::Display for PixelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PixelFormat::BayerRgb16 => write!(f, "Bayer RGB (16 bpp)"),
            PixelFormat::Yuv422 => write!(f, "YUV 4:2:2 (16 bpp)"),
            PixelFormat::Yuv420 => write!(f, "YUV 4:2:0 (12 bpp)"),
            PixelFormat::Rgb888 => write!(f, "RGB888 (24 bpp)"),
        }
    }
}

/// A frame geometry in pixels.
///
/// # Examples
///
/// ```
/// use mcm_load::{FrameFormat, PixelFormat};
///
/// let hd = FrameFormat::HD_1080;
/// assert_eq!(hd.pixels(), 1920 * 1088);
/// assert_eq!(hd.bits(PixelFormat::Yuv420), 1920 * 1088 * 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameFormat {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl FrameFormat {
    /// 720p HD as used by the paper (1280×720).
    pub const HD_720: FrameFormat = FrameFormat {
        width: 1280,
        height: 720,
    };
    /// 1080p HD as used by the paper — note the paper's 1920×**1088**
    /// (macroblock-aligned height).
    pub const HD_1080: FrameFormat = FrameFormat {
        width: 1920,
        height: 1088,
    };
    /// The paper's UHD format, 3840×2160.
    pub const UHD_2160: FrameFormat = FrameFormat {
        width: 3840,
        height: 2160,
    };
    /// The device display: WVGA (800×480).
    pub const WVGA: FrameFormat = FrameFormat {
        width: 800,
        height: 480,
    };

    /// Creates a format, rejecting zero dimensions.
    pub fn new(width: u32, height: u32) -> Result<Self, LoadError> {
        if width == 0 || height == 0 {
            return Err(LoadError::BadParam {
                reason: format!("frame {width}x{height} must have non-zero dimensions"),
            });
        }
        Ok(FrameFormat { width, height })
    }

    /// Number of pixels.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Macroblocks (16×16 pixel blocks, dimensions rounded up) — the unit of
    /// the H.264 level limits.
    pub fn macroblocks(&self) -> u64 {
        (self.width as u64).div_ceil(16) * (self.height as u64).div_ceil(16)
    }

    /// Storage cost of one frame in bits under `format`.
    pub fn bits(&self, format: PixelFormat) -> u64 {
        self.pixels() * format.bits_per_pixel() as u64
    }

    /// Storage cost of one frame in bytes under `format` (rounded up).
    pub fn bytes(&self, format: PixelFormat) -> u64 {
        self.bits(format).div_ceil(8)
    }

    /// The format grown by the paper's 20 % stabilization border
    /// (1.2 W × 1.2 H).
    pub fn with_stabilization_border(&self) -> FrameFormat {
        FrameFormat {
            width: self.width + self.width / 5,
            height: self.height + self.height / 5,
        }
    }
}

impl fmt::Display for FrameFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_pixel_match_paper() {
        assert_eq!(PixelFormat::BayerRgb16.bits_per_pixel(), 16);
        assert_eq!(PixelFormat::Yuv422.bits_per_pixel(), 16);
        assert_eq!(PixelFormat::Yuv420.bits_per_pixel(), 12);
        assert_eq!(PixelFormat::Rgb888.bits_per_pixel(), 24);
    }

    #[test]
    fn preset_dimensions() {
        assert_eq!(FrameFormat::HD_720.pixels(), 921_600);
        assert_eq!(FrameFormat::HD_1080.pixels(), 2_088_960);
        assert_eq!(FrameFormat::UHD_2160.pixels(), 8_294_400);
        assert_eq!(FrameFormat::WVGA.pixels(), 384_000);
    }

    #[test]
    fn macroblock_counts_match_h264_arithmetic() {
        assert_eq!(FrameFormat::HD_720.macroblocks(), 3_600);
        assert_eq!(FrameFormat::HD_1080.macroblocks(), 8_160);
        assert_eq!(FrameFormat::UHD_2160.macroblocks(), 32_400);
    }

    #[test]
    fn stabilization_border_is_twenty_percent() {
        let b = FrameFormat::HD_720.with_stabilization_border();
        assert_eq!((b.width, b.height), (1536, 864));
        assert_eq!(b.pixels(), 1_327_104); // 1.44x
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(FrameFormat::new(0, 100).is_err());
        assert!(FrameFormat::new(100, 0).is_err());
        assert!(FrameFormat::new(1, 1).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(FrameFormat::HD_1080.to_string(), "1920x1088");
        assert_eq!(PixelFormat::Yuv420.to_string(), "YUV 4:2:0 (12 bpp)");
    }

    #[test]
    fn frame_bytes_round_up() {
        let odd = FrameFormat::new(3, 3).unwrap();
        // 9 pixels * 12 bits = 108 bits = 13.5 bytes -> 14.
        assert_eq!(odd.bytes(PixelFormat::Yuv420), 14);
    }
}
