//! The processing stages of the video-recording use case (Fig. 1) and their
//! per-frame execution-memory traffic.

use core::fmt;

/// A stage of the Fig. 1 video-recording chain that touches execution
/// memory. Cache hits are, per the paper's assumption, free — each stage's
/// traffic below is exactly the part that must reach DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Sensor data lands in the execution memory.
    CameraIf,
    /// Noise filtering etc. over the raw frame.
    Preprocess,
    /// Demosaic: Bayer RGB to YUV 4:2:2.
    BayerToYuv,
    /// Digital video stabilization; consumes the 20 % border.
    Stabilization,
    /// Post-processing and digital zoom.
    PostProcDigizoom,
    /// Scaling the recorded frame to the WVGA display size.
    ScaleToDisplay,
    /// Display refresh at the panel rate (60 Hz regardless of capture fps).
    DisplayCtrl,
    /// H.264/AVC encoding: reference-frame traffic and reconstructed-frame
    /// write-back, plus the output bitstream.
    VideoEncoder,
    /// Audio capture path.
    Audio,
    /// A/V multiplexing.
    Multiplex,
    /// Writing the container stream to removable media.
    MemoryCard,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 11] = [
        Stage::CameraIf,
        Stage::Preprocess,
        Stage::BayerToYuv,
        Stage::Stabilization,
        Stage::PostProcDigizoom,
        Stage::ScaleToDisplay,
        Stage::DisplayCtrl,
        Stage::VideoEncoder,
        Stage::Audio,
        Stage::Multiplex,
        Stage::MemoryCard,
    ];

    /// Whether the stage belongs to Table I's "image processing" group
    /// (otherwise it is "video coding", which is where the paper also files
    /// the audio/mux/media traffic).
    pub fn is_image_processing(self) -> bool {
        matches!(
            self,
            Stage::CameraIf
                | Stage::Preprocess
                | Stage::BayerToYuv
                | Stage::Stabilization
                | Stage::PostProcDigizoom
                | Stage::ScaleToDisplay
                | Stage::DisplayCtrl
        )
    }

    /// Table I row label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::CameraIf => "Camera I/F",
            Stage::Preprocess => "Preprocess",
            Stage::BayerToYuv => "Bayer to YUV",
            Stage::Stabilization => "Video stabilization",
            Stage::PostProcDigizoom => "Post proc & digizoom",
            Stage::ScaleToDisplay => "Scaling to display",
            Stage::DisplayCtrl => "DisplayCtrl",
            Stage::VideoEncoder => "Video encoder",
            Stage::Audio => "Audio",
            Stage::Multiplex => "Multiplex",
            Stage::MemoryCard => "Memory card",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Execution-memory traffic of one stage for one captured frame.
///
/// Reads and writes are "identical operations with respect to examining the
/// memory bandwidth" (paper), so Table I reports their sum; both directions
/// are kept separate here because the simulator needs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTraffic {
    /// The stage.
    pub stage: Stage,
    /// Bits read from execution memory per frame.
    pub read_bits: u64,
    /// Bits written to execution memory per frame.
    pub write_bits: u64,
}

impl StageTraffic {
    /// Combined traffic (the Table I number), bits per frame.
    pub fn total_bits(&self) -> u64 {
        self.read_bits + self.write_bits
    }

    /// Combined traffic in megabits (Table I's unit).
    pub fn total_mbits(&self) -> f64 {
        self.total_bits() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_matches_table_i() {
        let image: Vec<_> = Stage::ALL
            .iter()
            .filter(|s| s.is_image_processing())
            .collect();
        assert_eq!(image.len(), 7);
        assert!(!Stage::VideoEncoder.is_image_processing());
        assert!(!Stage::MemoryCard.is_image_processing());
        assert!(!Stage::Audio.is_image_processing());
    }

    #[test]
    fn labels_are_table_rows() {
        assert_eq!(Stage::CameraIf.to_string(), "Camera I/F");
        assert_eq!(Stage::PostProcDigizoom.label(), "Post proc & digizoom");
    }

    #[test]
    fn traffic_sums() {
        let t = StageTraffic {
            stage: Stage::Preprocess,
            read_bits: 1_000_000,
            write_bits: 500_000,
        };
        assert_eq!(t.total_bits(), 1_500_000);
        assert!((t.total_mbits() - 1.5).abs() < 1e-12);
    }
}
