//! Frame-buffer layout in the execution-memory address space.
//!
//! The load model does not fabricate random addresses: every stage of Fig. 1
//! reads and writes *specific buffers* (the raw capture, the YUV
//! intermediates, the reference frames, the bitstream rings…), and their
//! placement determines which rows and banks the traffic touches. The
//! layout here packs each logical buffer into a page-aligned region, in the
//! order the pipeline produces them.

use crate::error::LoadError;
use crate::formats::PixelFormat;
use crate::usecase::UseCase;

/// A contiguous region of execution memory owned by one logical buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `self` and `other` share any byte.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// The buffers of one frame's processing chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// Bordered Bayer capture buffer (camera I/F output).
    pub camera: Region,
    /// Preprocessed (noise-filtered) Bayer buffer.
    pub preprocessed: Region,
    /// Bordered YUV 4:2:2 buffer (demosaic output).
    pub yuv_bordered: Region,
    /// Stabilized (cropped to W×H) YUV 4:2:2 buffer.
    pub stabilized: Region,
    /// Post-processed/zoomed YUV 4:2:2 buffer (encoder input).
    pub postprocessed: Region,
    /// Double-buffered WVGA RGB888 display frame buffers.
    pub display: [Region; 2],
    /// H.264 reference frames (YUV 4:2:0), one region per reference.
    pub references: Vec<Region>,
    /// Reconstructed-frame buffer (YUV 4:2:0).
    pub reconstructed: Region,
    /// Encoded video bitstream ring.
    pub bitstream: Region,
    /// Audio sample/stream ring.
    pub audio: Region,
    /// Multiplexed A/V container ring.
    pub mux: Region,
    total: u64,
}

/// Alignment for buffer starts: one DRAM page interleaved over channels is
/// at most 2 KiB × 8; 16 KiB keeps every buffer page- and channel-aligned
/// in all evaluated configurations.
const BUFFER_ALIGN: u64 = 16 * 1024;

fn align_up(x: u64, a: u64) -> u64 {
    x.div_ceil(a) * a
}

/// The buffer-start alignment `with_options` uses for the given options —
/// the stagger span when staggering is on, plain [`BUFFER_ALIGN`] otherwise.
/// The multi-tenant model aligns tenant base offsets to this so stacked
/// layouts keep their bank-stagger phase.
pub(crate) fn layout_alignment(options: &LayoutOptions) -> u64 {
    BUFFER_ALIGN
        .max(options.bank_stagger_bytes * options.stagger_period as u64)
        .max(1)
}

/// Placement options for [`FrameLayout::with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutOptions {
    /// Bytes available for the buffers.
    pub capacity_bytes: u64,
    /// Bank stagger: consecutive buffers are offset by this many bytes so
    /// that streams read and written concurrently land in different DRAM
    /// banks (what any locality-aware allocator achieves). The natural
    /// value is one DRAM page spread over all channels —
    /// `page_bytes × channels`. Zero disables staggering.
    pub bank_stagger_bytes: u64,
    /// The stagger wraps after this many buffers (the device's bank count).
    pub stagger_period: u32,
}

impl LayoutOptions {
    /// No staggering; buffers are merely aligned.
    pub fn tight(capacity_bytes: u64) -> Self {
        LayoutOptions {
            capacity_bytes,
            bank_stagger_bytes: 0,
            stagger_period: 4,
        }
    }

    /// Bank-staggered placement for a memory of `channels` channels with
    /// `page_bytes` DRAM pages and `banks` banks per device.
    pub fn bank_staggered(capacity_bytes: u64, page_bytes: u64, channels: u32, banks: u32) -> Self {
        LayoutOptions {
            capacity_bytes,
            bank_stagger_bytes: page_bytes * channels as u64,
            stagger_period: banks.max(1),
        }
    }
}

impl FrameLayout {
    /// Packs the use case's buffers into `[0, capacity_bytes)` with plain
    /// alignment (no bank staggering).
    ///
    /// Fails with [`LoadError::LayoutOverflow`] when the buffers do not fit
    /// (e.g. 2160p recording needs more than one 64 MiB channel).
    pub fn new(use_case: &UseCase, capacity_bytes: u64) -> Result<Self, LoadError> {
        Self::with_options(use_case, &LayoutOptions::tight(capacity_bytes))
    }

    /// Packs the buffers with explicit [`LayoutOptions`].
    pub fn with_options(use_case: &UseCase, options: &LayoutOptions) -> Result<Self, LoadError> {
        use_case.validate()?;
        if options.stagger_period == 0 {
            return Err(LoadError::BadParam {
                reason: "stagger_period must be non-zero".into(),
            });
        }
        let bordered = use_case.video.with_stabilization_border();
        let bayer = align_up(bordered.bytes(PixelFormat::BayerRgb16), BUFFER_ALIGN);
        let yuv422_bordered = align_up(bordered.bytes(PixelFormat::Yuv422), BUFFER_ALIGN);
        let yuv422 = align_up(use_case.video.bytes(PixelFormat::Yuv422), BUFFER_ALIGN);
        let yuv420 = align_up(use_case.video.bytes(PixelFormat::Yuv420), BUFFER_ALIGN);
        let wvga = align_up(use_case.display.bytes(PixelFormat::Rgb888), BUFFER_ALIGN);
        // Stream rings: two frames' worth, at least 64 KiB.
        let ring =
            |bits_per_frame: u64| align_up((bits_per_frame / 4).max(64 * 1024), BUFFER_ALIGN);
        let v_ring = ring(use_case.video_kbps * 1_000 / use_case.fps as u64);
        let a_ring = ring(use_case.audio_kbps * 1_000 / use_case.fps as u64);
        let mux_ring = v_ring + a_ring;

        let mut cursor = 0u64;
        let mut index = 0u32;
        let mut take = |len: u64| {
            let stagger = (index % options.stagger_period) as u64 * options.bank_stagger_bytes;
            let start = align_up(cursor, layout_alignment(options)) + stagger;
            index += 1;
            cursor = start + len;
            Region { start, len }
        };
        let camera = take(bayer);
        let preprocessed = take(bayer);
        let yuv_bordered = take(yuv422_bordered);
        let stabilized = take(yuv422);
        let postprocessed = take(yuv422);
        let display = [take(wvga), take(wvga)];
        // Viewfinder mode encodes nothing: no reference frames exist.
        let references = if use_case.mode == crate::usecase::UseCaseMode::Viewfinder {
            Vec::new()
        } else {
            (0..use_case.resolved_ref_frames())
                .map(|_| take(yuv420))
                .collect()
        };
        let reconstructed = take(yuv420);
        let bitstream = take(v_ring);
        let audio = take(a_ring);
        let mux = take(mux_ring);
        let total = cursor;
        if total > options.capacity_bytes {
            return Err(LoadError::LayoutOverflow {
                needed: total,
                capacity: options.capacity_bytes,
            });
        }
        Ok(FrameLayout {
            camera,
            preprocessed,
            yuv_bordered,
            stabilized,
            postprocessed,
            display,
            references,
            reconstructed,
            bitstream,
            audio,
            mux,
            total,
        })
    }

    /// Total bytes the layout occupies.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The layout for captured frame `frame`: the reconstructed buffer
    /// rotates into the reference set so the frame written last becomes a
    /// reference next frame. Frame 0 is the layout itself.
    pub fn rotated(&self, frame: u64) -> FrameLayout {
        let mut pool: Vec<Region> = self.references.clone();
        pool.push(self.reconstructed);
        let n = pool.len();
        pool.rotate_left(frame as usize % n);
        let mut layout = self.clone();
        layout.reconstructed = pool[n - 1];
        layout.references = pool[..n - 1].to_vec();
        layout
    }

    /// Moves every buffer up by `offset` bytes. The multi-tenant model uses
    /// this to stack N tenants' layouts into disjoint address spans;
    /// `total_bytes` keeps meaning "one past the last byte", so it grows by
    /// `offset` too.
    pub fn shift(&mut self, offset: u64) {
        let bump = |r: &mut Region| r.start += offset;
        bump(&mut self.camera);
        bump(&mut self.preprocessed);
        bump(&mut self.yuv_bordered);
        bump(&mut self.stabilized);
        bump(&mut self.postprocessed);
        bump(&mut self.display[0]);
        bump(&mut self.display[1]);
        for r in &mut self.references {
            bump(r);
        }
        bump(&mut self.reconstructed);
        bump(&mut self.bitstream);
        bump(&mut self.audio);
        bump(&mut self.mux);
        self.total += offset;
    }

    /// All regions, for overlap/invariant checks.
    pub fn regions(&self) -> Vec<Region> {
        let mut v = vec![
            self.camera,
            self.preprocessed,
            self.yuv_bordered,
            self.stabilized,
            self.postprocessed,
            self.display[0],
            self.display[1],
            self.reconstructed,
            self.bitstream,
            self.audio,
            self.mux,
        ];
        v.extend(self.references.iter().copied());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::HdOperatingPoint;

    fn layout(p: HdOperatingPoint, capacity: u64) -> Result<FrameLayout, LoadError> {
        FrameLayout::new(&UseCase::hd(p), capacity)
    }

    #[test]
    fn hd720_fits_one_channel() {
        // One 512 Mb channel = 64 MiB.
        let l = layout(HdOperatingPoint::Hd720p30, 64 << 20).unwrap();
        assert!(l.total_bytes() <= 64 << 20);
        assert_eq!(l.references.len(), 4);
    }

    #[test]
    fn uhd_needs_more_than_one_channel() {
        let err = layout(HdOperatingPoint::Uhd2160p30, 64 << 20).unwrap_err();
        assert!(matches!(err, LoadError::LayoutOverflow { .. }));
        // Eight channels = 512 MiB: fits.
        assert!(layout(HdOperatingPoint::Uhd2160p30, 512 << 20).is_ok());
    }

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let l = layout(HdOperatingPoint::Hd1080p30, 512 << 20).unwrap();
        let regions = l.regions();
        for (i, a) in regions.iter().enumerate() {
            assert_eq!(a.start % BUFFER_ALIGN, 0, "region {i} misaligned");
            assert!(a.len > 0);
            for (j, b) in regions.iter().enumerate() {
                if i != j {
                    assert!(!a.overlaps(b), "regions {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    fn buffer_sizes_match_pixel_formats() {
        let l = layout(HdOperatingPoint::Hd720p30, 64 << 20).unwrap();
        // Bordered Bayer: 1536*864*2 bytes, aligned.
        assert!(l.camera.len >= 1536 * 864 * 2);
        assert!(l.camera.len < 1536 * 864 * 2 + BUFFER_ALIGN);
        // Reference frames: 12 bpp.
        assert!(l.references[0].len >= 1280 * 720 * 12 / 8);
        // Display: WVGA RGB888.
        assert!(l.display[0].len >= 800 * 480 * 3);
    }

    #[test]
    fn region_overlap_predicate() {
        let a = Region { start: 0, len: 10 };
        let b = Region { start: 10, len: 5 };
        let c = Region { start: 9, len: 2 };
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert_eq!(a.end(), 10);
    }
}

#[cfg(test)]
mod viewfinder_layout_tests {
    use super::*;
    use crate::levels::HdOperatingPoint;

    #[test]
    fn viewfinder_layout_has_no_references_and_is_smaller() {
        let rec = FrameLayout::new(&UseCase::hd(HdOperatingPoint::Hd1080p30), 1 << 30).unwrap();
        let vf =
            FrameLayout::new(&UseCase::viewfinder(HdOperatingPoint::Hd1080p30), 1 << 30).unwrap();
        assert!(vf.references.is_empty());
        assert_eq!(rec.references.len(), 4);
        assert!(vf.total_bytes() < rec.total_bytes());
    }
}
