//! Named workload selectors.
//!
//! A [`Workload`] is a small, serializable *description* of which
//! [`LoadModel`](crate::LoadModel) drives an experiment. It is what travels
//! through configuration files, sweep specs, HTTP bodies and cache keys; the
//! model itself (a `Box<dyn LoadModel>`) is instantiated from it on demand
//! with [`Workload::model`].
//!
//! Workloads have canonical names so the CLI, the service and the sweep axis
//! all speak the same vocabulary:
//!
//! | name | model |
//! |---|---|
//! | `h264-record` | the paper's Table I H.264 recording chain (the default) |
//! | `hevc-record` | Table I rescaled to an HEVC encoder |
//! | `vvc-record` | Table I rescaled to a VVC encoder |
//! | `stochastic:<seed>[:<burstiness>]` | Markov-modulated per-frame traffic |
//! | `multi-tenant:<n>` | `n` concurrent use cases sharing the channels |
//!
//! Serialization uses the canonical name string, so a `Workload` embedded in
//! an experiment or sweep spec round-trips byte-identically and keeps the
//! sweep result cache keys stable. See `docs/WORKLOADS.md` for the modeling
//! math behind each entry.

use core::fmt;

use serde::{Deserialize, Serialize, Value};

use crate::error::LoadError;
use crate::model::{CodecModel, LoadModel, MultiTenantModel, StochasticModel, TableIModel};
use crate::usecase::UseCase;

/// A modern-codec traffic profile calibrated against the H.264 baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecProfile {
    /// HEVC/H.265: larger motion-search window, roughly half the bitrate of
    /// H.264 at equal quality.
    Hevc,
    /// VVC/H.266: the VTM encoder performs ≈1.7× the memory accesses of the
    /// HEVC HM encoder (arXiv:2005.13331) at roughly a quarter of the H.264
    /// bitrate.
    Vvc,
}

impl CodecProfile {
    /// Encoder reference-read scale relative to H.264, as a rational
    /// `(numerator, denominator)`. See `docs/WORKLOADS.md` for the
    /// calibration.
    pub fn encoder_read_scale(self) -> (u64, u64) {
        match self {
            CodecProfile::Hevc => (3, 2),
            CodecProfile::Vvc => (51, 20),
        }
    }

    /// Output-bitrate scale relative to H.264 at equal quality.
    pub fn bitrate_scale(self) -> (u64, u64) {
        match self {
            CodecProfile::Hevc => (1, 2),
            CodecProfile::Vvc => (1, 4),
        }
    }

    /// Canonical workload name for this profile.
    pub fn workload_name(self) -> &'static str {
        match self {
            CodecProfile::Hevc => "hevc-record",
            CodecProfile::Vvc => "vvc-record",
        }
    }
}

/// Parameters of the seed-deterministic stochastic traffic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StochasticParams {
    /// Seed for the per-frame Markov chain. Identical seeds produce
    /// bit-identical operation streams regardless of thread count.
    pub seed: u64,
    /// Burstiness, 0–100. Zero collapses the chain to the nominal Table I
    /// load; 100 maximizes both the burst probability and the burst
    /// amplitude (2× the nominal coding traffic).
    pub burstiness_pct: u32,
}

/// Default burstiness when `stochastic:<seed>` omits the third field.
pub const DEFAULT_BURSTINESS_PCT: u32 = 50;

impl Default for StochasticParams {
    fn default() -> Self {
        StochasticParams {
            seed: 1,
            burstiness_pct: DEFAULT_BURSTINESS_PCT,
        }
    }
}

/// The workload an experiment simulates. See the `workload` module docs for the
/// catalogue and `docs/WORKLOADS.md` for the math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Workload {
    /// The paper's Table I H.264 recording chain (`h264-record`).
    #[default]
    TableI,
    /// Table I with the coding stages rescaled to a modern codec.
    Codec(CodecProfile),
    /// Markov-modulated per-frame traffic (`stochastic:<seed>[:<b>]`).
    Stochastic(StochasticParams),
    /// `n` concurrent use cases contending for the same channels
    /// (`multi-tenant:<n>`).
    MultiTenant(u32),
}

/// Most tenants the multi-tenant workload accepts; past this the layouts
/// cannot fit any evaluated capacity and the parse error is clearer than a
/// layout overflow.
pub const MAX_TENANTS: u32 = 16;

impl Workload {
    /// Whether this is the default Table I workload. Serialized experiment
    /// forms omit the workload field in that case so that pre-existing cache
    /// keys and stored documents remain valid.
    pub fn is_default(&self) -> bool {
        *self == Workload::TableI
    }

    /// Canonical name (`h264-record`, `stochastic:7`, …); parseable back via
    /// [`Workload::parse`].
    pub fn name(&self) -> String {
        match self {
            Workload::TableI => "h264-record".to_string(),
            Workload::Codec(p) => p.workload_name().to_string(),
            Workload::Stochastic(p) => {
                if p.burstiness_pct == DEFAULT_BURSTINESS_PCT {
                    format!("stochastic:{}", p.seed)
                } else {
                    format!("stochastic:{}:{}", p.seed, p.burstiness_pct)
                }
            }
            Workload::MultiTenant(n) => format!("multi-tenant:{n}"),
        }
    }

    /// Parses a canonical workload name.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcm_load::Workload;
    ///
    /// assert_eq!(Workload::parse("h264-record").unwrap(), Workload::TableI);
    /// let w = Workload::parse("stochastic:42:80").unwrap();
    /// assert_eq!(w.name(), "stochastic:42:80");
    /// assert!(Workload::parse("mpeg2").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<Workload, LoadError> {
        let bad = |reason: String| LoadError::BadParam { reason };
        match s {
            "h264-record" => return Ok(Workload::TableI),
            "hevc-record" => return Ok(Workload::Codec(CodecProfile::Hevc)),
            "vvc-record" => return Ok(Workload::Codec(CodecProfile::Vvc)),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("stochastic:") {
            let mut parts = rest.splitn(2, ':');
            let seed_str = parts.next().unwrap_or("");
            let seed: u64 = seed_str
                .parse()
                .map_err(|_| bad(format!("stochastic seed `{seed_str}` is not a u64")))?;
            let burstiness_pct = match parts.next() {
                None => DEFAULT_BURSTINESS_PCT,
                Some(b) => b
                    .parse()
                    .map_err(|_| bad(format!("burstiness `{b}` is not an integer")))?,
            };
            if burstiness_pct > 100 {
                return Err(bad(format!("burstiness {burstiness_pct} must be 0..=100")));
            }
            return Ok(Workload::Stochastic(StochasticParams {
                seed,
                burstiness_pct,
            }));
        }
        if let Some(rest) = s.strip_prefix("multi-tenant:") {
            let n: u32 = rest
                .parse()
                .map_err(|_| bad(format!("tenant count `{rest}` is not an integer")))?;
            if n == 0 || n > MAX_TENANTS {
                return Err(bad(format!("tenant count {n} must be 1..={MAX_TENANTS}")));
            }
            return Ok(Workload::MultiTenant(n));
        }
        Err(bad(format!(
            "unknown workload `{s}`; expected h264-record, hevc-record, \
             vvc-record, stochastic:<seed>[:<burstiness>] or multi-tenant:<n>"
        )))
    }

    /// Instantiates the [`LoadModel`] this workload describes, for a base
    /// use case (the operating point, fps, bitrates, mode, …).
    pub fn model(&self, base: &UseCase) -> Box<dyn LoadModel> {
        match self {
            Workload::TableI => Box::new(TableIModel::new(*base)),
            Workload::Codec(p) => Box::new(CodecModel::new(*base, *p)),
            Workload::Stochastic(p) => Box::new(StochasticModel::new(*base, *p)),
            Workload::MultiTenant(n) => Box::new(MultiTenantModel::new(*base, *n)),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl Serialize for Workload {
    fn to_value(&self) -> Value {
        Value::String(self.name())
    }
}

impl Deserialize for Workload {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("workload must be a string"))?;
        Workload::parse(s).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_round_trip() {
        let cases = [
            Workload::TableI,
            Workload::Codec(CodecProfile::Hevc),
            Workload::Codec(CodecProfile::Vvc),
            Workload::Stochastic(StochasticParams {
                seed: 7,
                burstiness_pct: DEFAULT_BURSTINESS_PCT,
            }),
            Workload::Stochastic(StochasticParams {
                seed: 0xDEAD,
                burstiness_pct: 85,
            }),
            Workload::MultiTenant(3),
        ];
        for w in cases {
            assert_eq!(Workload::parse(&w.name()).unwrap(), w, "{w}");
            // Serde round-trip through the string form.
            let v = w.to_value();
            assert_eq!(Workload::from_value(&v).unwrap(), w);
        }
    }

    #[test]
    fn default_burstiness_is_elided_from_the_name() {
        assert_eq!(
            Workload::parse("stochastic:9").unwrap().name(),
            "stochastic:9"
        );
        assert_eq!(
            Workload::parse("stochastic:9:50").unwrap().name(),
            "stochastic:9"
        );
    }

    #[test]
    fn bad_names_are_rejected_with_reasons() {
        for s in [
            "mpeg2",
            "stochastic:",
            "stochastic:x",
            "stochastic:1:101",
            "multi-tenant:0",
            "multi-tenant:99",
            "multi-tenant:two",
        ] {
            let err = Workload::parse(s).unwrap_err();
            assert!(matches!(err, LoadError::BadParam { .. }), "{s}");
        }
    }

    #[test]
    fn default_is_table_i() {
        assert!(Workload::default().is_default());
        assert!(!Workload::MultiTenant(2).is_default());
    }
}
