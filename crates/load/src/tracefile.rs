//! Workload trace files: record a frame's operation stream to a portable
//! text format and replay it later — the trace-driven mode every DRAM
//! simulator grows sooner or later.
//!
//! Format (one op per line, `#` comments ignored):
//!
//! ```text
//! #mcm-trace v1
//! R 0x1000 64
//! W 0x2000 64
//! ```
//!
//! Addresses are hexadecimal with an `0x` prefix (decimal also accepted),
//! lengths decimal bytes.

use std::io::{self, BufRead, Write};

use crate::error::LoadError;
use crate::traffic::LoadOp;

/// The header line identifying the format.
pub const TRACE_HEADER: &str = "#mcm-trace v1";

/// Writes `ops` to `w` in trace-file format.
pub fn write_trace<W: Write>(ops: impl IntoIterator<Item = LoadOp>, w: &mut W) -> io::Result<u64> {
    writeln!(w, "{TRACE_HEADER}")?;
    let mut n = 0u64;
    for op in ops {
        let dir = if op.write { 'W' } else { 'R' };
        writeln!(w, "{dir} {:#x} {}", op.addr, op.len)?;
        n += 1;
    }
    Ok(n)
}

fn parse_addr(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Reads a trace from `r`. Fails with a line-numbered error on malformed
/// input.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<LoadOp>, LoadError> {
    let mut ops = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line.map_err(|e| LoadError::BadParam {
            reason: format!("trace read error at line {}: {e}", idx + 1),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |why: &str| LoadError::BadParam {
            reason: format!("trace line {}: {why}: '{line}'", idx + 1),
        };
        let mut fields = line.split_whitespace();
        let dir = fields.next().ok_or_else(|| bad("missing direction"))?;
        let write = match dir {
            "R" | "r" => false,
            "W" | "w" => true,
            _ => return Err(bad("direction must be R or W")),
        };
        let addr = fields
            .next()
            .and_then(parse_addr)
            .ok_or_else(|| bad("bad address"))?;
        let len: u32 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .filter(|&l| l > 0)
            .ok_or_else(|| bad("bad length"))?;
        if fields.next().is_some() {
            return Err(bad("trailing fields"));
        }
        ops.push(LoadOp { write, addr, len });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::FrameLayout;
    use crate::levels::HdOperatingPoint;
    use crate::traffic::FrameTraffic;
    use crate::usecase::UseCase;

    #[test]
    fn roundtrip_preserves_ops() {
        let ops = vec![
            LoadOp {
                write: false,
                addr: 0x1000,
                len: 64,
            },
            LoadOp {
                write: true,
                addr: 0x2040,
                len: 16,
            },
            LoadOp {
                write: false,
                addr: 12345,
                len: 100,
            },
        ];
        let mut buf = Vec::new();
        let n = write_trace(ops.clone(), &mut buf).unwrap();
        assert_eq!(n, 3);
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with(TRACE_HEADER));
        assert!(text.contains("R 0x1000 64"));
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn full_frame_roundtrip() {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        let layout = FrameLayout::new(&uc, 64 << 20).unwrap();
        let ops: Vec<LoadOp> = FrameTraffic::new(&uc, &layout, 256)
            .unwrap()
            .take(10_000)
            .collect();
        let mut buf = Vec::new();
        write_trace(ops.iter().copied(), &mut buf).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), ops);
    }

    #[test]
    fn comments_blank_lines_and_decimal_addresses_are_accepted() {
        let input = "\
#mcm-trace v1

# a comment
r 100 4
w 0X200 8
";
        let ops = read_trace(input.as_bytes()).unwrap();
        assert_eq!(
            ops,
            vec![
                LoadOp {
                    write: false,
                    addr: 100,
                    len: 4
                },
                LoadOp {
                    write: true,
                    addr: 0x200,
                    len: 8
                },
            ]
        );
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for (input, needle) in [
            ("X 0x0 4", "direction"),
            ("R zzz 4", "bad address"),
            ("R 0x0 0", "bad length"),
            ("R 0x0", "bad length"),
            ("R 0x0 4 extra", "trailing"),
        ] {
            let err = read_trace(input.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 1"), "{msg}");
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }
}
