//! # mcm-load — the video-recording memory-load model
//!
//! Section II of the paper reduces a complete video-recording chain
//! (Fig. 1) — camera interface, preprocessing, demosaic, stabilization,
//! post-processing/digizoom, display scaling and refresh, H.264/AVC
//! encoding with multiple reference frames, audio, multiplexing and
//! memory-card output — to the execution-memory traffic it generates.
//! This crate implements that model:
//!
//! * [`PixelFormat`] / [`FrameFormat`] — the chain's encodings and frame
//!   geometries (720p, 1080p at the paper's 1920×1088, 2160p, WVGA);
//! * [`H264Level`] / [`HdOperatingPoint`] — the H.264 Table A-1 limits and
//!   the paper's five HD operating points;
//! * [`UseCase`] / [`Stage`] / [`StageTraffic`] — the Table I per-stage
//!   traffic model;
//! * [`FrameLayout`] — the buffers' placement in the address space;
//! * [`FrameTraffic`] / [`LoadOp`] — the state machine emitting one frame's
//!   memory operations;
//! * [`LoadModel`] / [`Workload`] — the pluggable workload-model trait and
//!   the named catalogue built on it (Table I H.264, HEVC/VVC profiles, a
//!   seed-deterministic stochastic generator, multi-tenant contention).
//!   The modeling math lives in `docs/WORKLOADS.md`.
//!
//! # Examples
//!
//! Reproduce a Table I column:
//!
//! ```
//! use mcm_load::{HdOperatingPoint, UseCase};
//!
//! let row = UseCase::hd(HdOperatingPoint::Hd1080p30).table_row();
//! // The paper's prose: "full HDTV (1080p) ... 4.3 GB/s".
//! assert!((3.9..=4.6).contains(&row.gbytes_per_second()));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffers;
mod error;
mod formats;
mod levels;
mod model;
mod stages;
mod tracefile;
mod traffic;
mod usecase;
mod workload;

pub use buffers::{FrameLayout, LayoutOptions, Region};
pub use error::LoadError;
pub use formats::{FrameFormat, PixelFormat};
pub use levels::{H264Level, HdOperatingPoint, LevelLimits};
pub use model::{
    CodecModel, Footprint, LoadModel, MultiTenantModel, MultiTenantTraffic, StochasticModel,
    TableIModel, TenantRole, Traffic,
};
pub use stages::{Stage, StageTraffic};
pub use tracefile::{read_trace, write_trace, TRACE_HEADER};
pub use traffic::{FrameTraffic, LoadOp};
pub use usecase::{RefFrames, TableRow, UseCase, UseCaseMode};
pub use workload::{CodecProfile, StochasticParams, Workload, DEFAULT_BURSTINESS_PCT, MAX_TENANTS};
