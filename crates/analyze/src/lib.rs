//! `mcm-analyze`: static feasibility analysis of experiments and sweep
//! grids — the **MCM4xx rule catalogue**.
//!
//! Where `mcm-verify` audits what a simulation *did* (trace rules) or
//! sanity-checks a configuration's structure (`MCM1xx`), this crate proves
//! properties of an [`Experiment`] *without running the simulator at all*:
//!
//! * **Timing closure** ([`lint_timing`], `MCM401`–`MCM404`): Table II-style
//!   DRAM parameters must close — tRC ≥ tRAS + tRP, the four-activate
//!   window vs 4×tRRD, the tRFC/tREFI refresh duty cycle, and power-down
//!   entry/exit consistency (tXP/tXSR/tCKE).
//! * **Bandwidth roofline** ([`lint_roofline`], `MCM405`): the workload's
//!   sustained demand from the selected load model (the paper's Table I
//!   chain by default, or any [`mcm_load::LoadModel`]) against an analytic
//!   upper bound on achievable bandwidth derived from the timing tables
//!   (data bus, activate-rate ceilings, refresh derating). A point above
//!   the roofline cannot meet its frame deadline under *any* scheduler.
//! * **Memory footprint** ([`lint_footprint`], `MCM406`): the frame-buffer
//!   layout is computed with exactly the options the engine uses, turning
//!   the 64 MiB-per-channel ceiling into an explicit, witnessed diagnostic
//!   instead of a silent skip.
//!
//! Every finding carries a machine-readable **witness**: the violated
//! inequality with the concrete numbers, attached as a JSON context block
//! on the [`Diagnostic`]. Findings reuse `mcm-verify`'s diagnostic types,
//! so `mcm lint` renders them exactly like `mcm check` findings.
//!
//! # Soundness contract
//!
//! Error-severity findings from the feasibility rules (`MCM405`, `MCM406`)
//! are *sound*: a point they flag must also fail dynamically — a layout
//! overflow from the engine, or a `fails` real-time verdict. Error-severity
//! findings from the closure rules (`MCM401`–`MCM404`) mark datasheets that
//! are broken as specified (they usually cannot even resolve); such configs
//! are refused outright. In both cases no paper-golden Table I
//! configuration may be flagged, and warnings are advisory with no
//! guarantee either way. The contract is pinned by the cross-check tests
//! in `tests/soundness.rs`.
//!
//! Identifier ranges are a contract: `MCM4xx` belongs to this crate.
//! Never renumber.

#![warn(missing_docs)]

mod footprint;
mod roofline;
mod timing;

pub use footprint::{lint_footprint, lint_footprint_model};
pub use roofline::{lint_roofline, lint_roofline_model};
pub use timing::lint_timing;

use mcm_core::Experiment;
use mcm_verify::{Diagnostic, Report};

/// Rule identifiers owned by this crate: `(id, what it checks)`, in id
/// order. Disjoint from [`mcm_verify::rule_catalogue`] by the range
/// contract (`MCM4xx` is reserved for static analysis).
pub const ANALYZE_RULES: [(&str, &str); 6] = [
    (
        "MCM401",
        "row-cycle closure: tRC covers tRAS + tRP and the timings resolve at the requested clock",
    ),
    (
        "MCM402",
        "four-activate window arithmetic: tFAW is consistent with tRRD (a window below 4*tRRD is vacuous)",
    ),
    (
        "MCM403",
        "refresh budget: the tRFC/tREFI duty cycle leaves usable bandwidth behind refresh",
    ),
    (
        "MCM404",
        "power-down entry/exit consistency: tXSR covers tRFC, tXP and tCKE are physical",
    ),
    (
        "MCM405",
        "bandwidth roofline: workload demand fits the timing-derated peak under any scheduler",
    ),
    (
        "MCM406",
        "memory footprint: the engine's frame-buffer layout fits the channel capacity",
    ),
];

/// The static verdict on one experiment: feasible (no error-severity
/// findings) or not, with the full report either way.
///
/// This is what `SweepOptions::prelint` hands back instantly for
/// infeasible grid points instead of simulating them.
#[derive(Debug, Clone)]
pub struct AnalysisVerdict {
    /// Whether the configuration survived every error-severity rule.
    pub feasible: bool,
    /// Every MCM4xx finding, errors first after sorting.
    pub report: Report,
}

impl AnalysisVerdict {
    /// The first error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.report
            .diagnostics
            .iter()
            .find(|d| d.severity == mcm_verify::Severity::Error)
    }

    /// One-line `"MCM4xx: message"` reason for an infeasible verdict.
    pub fn reason(&self) -> Option<String> {
        self.first_error()
            .map(|d| format!("{}: {}", d.id, d.message))
    }
}

/// Runs every MCM4xx rule over one experiment: timing closure on the
/// device, the bandwidth roofline, and the footprint bound. The roofline
/// and footprint rules consume the experiment's selected workload model,
/// so a VVC profile's heavier encoder traffic or a multi-tenant working
/// set is priced into the static verdict exactly as the engine would see
/// it; the default (Table I) workload reproduces the paper's analysis
/// byte-for-byte.
pub fn analyze_experiment(exp: &Experiment) -> Report {
    let cluster = &exp.memory.controller.cluster;
    let mut report = lint_timing(&cluster.timing, cluster.clock_mhz, &cluster.geometry);
    let model = exp.model();
    report.merge(lint_roofline_model(model.as_ref(), &exp.memory));
    report.merge(lint_footprint_model(model.as_ref(), &exp.memory));
    report
}

/// Runs [`analyze_experiment`] and folds the report into a feasible /
/// infeasible [`AnalysisVerdict`].
pub fn verdict(exp: &Experiment) -> AnalysisVerdict {
    let report = analyze_experiment(exp);
    AnalysisVerdict {
        feasible: !report.has_errors(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    #[test]
    fn catalogue_ids_are_unique_ordered_and_in_the_4xx_range() {
        let mut ids: Vec<&str> = ANALYZE_RULES.iter().map(|(id, _)| *id).collect();
        assert!(ids.iter().all(|id| id.starts_with("MCM4")), "{ids:?}");
        let sorted = {
            let mut s = ids.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(ids, sorted, "catalogue must be in id order");
        ids.dedup();
        assert_eq!(ids.len(), ANALYZE_RULES.len(), "duplicate rule ids");
        // Disjoint from the dynamic verifier's catalogue.
        for (id, _) in mcm_verify::rule_catalogue() {
            assert!(!ids.contains(&id), "{id} claimed by both catalogues");
        }
    }

    #[test]
    fn paper_headline_config_is_feasible() {
        let exp = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        let v = verdict(&exp);
        assert!(v.feasible, "{}", v.report.render_human());
        assert!(v.report.is_clean(), "{}", v.report.render_human());
        assert!(v.reason().is_none());
    }

    #[test]
    fn the_verdict_tracks_the_selected_workload() {
        use mcm_load::Workload;
        // The same hardware point flips from feasible to infeasible when
        // the workload model changes — the static verdict must see it.
        let mut exp = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        assert!(verdict(&exp).feasible);
        exp.workload = Workload::MultiTenant(8);
        let v = verdict(&exp);
        assert!(!v.feasible, "{}", v.report.render_human());
        assert!(v.reason().is_some());
    }

    #[test]
    fn uhd_on_one_channel_is_infeasible_with_a_reason() {
        let exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 1, 400);
        let v = verdict(&exp);
        assert!(!v.feasible);
        let reason = v.reason().expect("infeasible verdict carries a reason");
        assert!(reason.starts_with("MCM4"), "{reason}");
    }

    #[test]
    fn every_finding_carries_a_json_witness() {
        let exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 1, 200);
        let report = analyze_experiment(&exp);
        assert!(!report.is_clean());
        for d in &report.diagnostics {
            let ctx = d.context.as_deref().expect("witness context");
            let v: serde_json::Value = serde_json::from_str(ctx).expect("witness is JSON");
            assert!(
                v.get("inequality").is_some(),
                "{}: witness must state the violated inequality",
                d.id
            );
        }
    }
}
