//! Timing-closure lints (`MCM401`–`MCM404`): Table II-style DRAM
//! parameters must be mutually consistent before any cycle is simulated.
//!
//! [`TimingParams::validate`] already hard-rejects a few impossible
//! combinations with opaque error strings; this pass re-states those as
//! witnessed diagnostics and adds the constructible-but-doomed conditions
//! `validate` does not check (a vacuous four-activate window, a refresh
//! duty cycle that eats the bandwidth, power-down exits that cannot cover
//! what they owe).

use mcm_dram::{Geometry, TimingParams};
use mcm_verify::{Diagnostic, Report, Severity};
use serde_json::json;

/// Tolerance for comparisons between nanosecond parameters, mirroring
/// `TimingParams::validate`.
const EPS: f64 = 1e-9;

/// Refresh duty cycle (tRFC/tREFI) above which the device spends so much
/// time refreshing that results are misleading.
const REFRESH_DUTY_WARNING: f64 = 0.10;

/// Refresh duty cycle at which the device spends at least half its life
/// refreshing: no schedule recovers that.
const REFRESH_DUTY_ERROR: f64 = 0.50;

fn witness(
    id: &'static str,
    severity: Severity,
    message: String,
    inequality: &str,
    values: serde_json::Value,
) -> Diagnostic {
    Diagnostic::new(id, severity, message).with_context(
        json!({
            "rule": id,
            "inequality": inequality,
            "values": values,
        })
        .to_string(),
    )
}

/// `MCM401`–`MCM404` over one device's timing table at one interface
/// clock. Everything here is closed-form arithmetic on the datasheet.
pub fn lint_timing(t: &TimingParams, clock_mhz: u64, geometry: &Geometry) -> Report {
    let mut report = Report::new();

    // --- MCM401: row-cycle closure and clock resolution ------------------
    if t.t_ras_ns + t.t_rp_ns > t.t_rc_ns + EPS {
        report.push(witness(
            "MCM401",
            Severity::Error,
            format!(
                "row cycle does not close: tRC ({} ns) < tRAS ({} ns) + tRP ({} ns); \
                 a row cannot restore and precharge within its own cycle",
                t.t_rc_ns, t.t_ras_ns, t.t_rp_ns
            ),
            "t_rc_ns >= t_ras_ns + t_rp_ns",
            json!({"t_rc_ns": t.t_rc_ns, "t_ras_ns": t.t_ras_ns, "t_rp_ns": t.t_rp_ns}),
        ));
    }
    match t.resolve(clock_mhz, geometry) {
        Ok(r) => {
            // Ceil-rounding can re-open a ns-closed row cycle at coarse
            // clocks; the simulator would then under-space ACT-to-ACT.
            if r.t_rc < r.t_ras + r.t_rp {
                report.push(witness(
                    "MCM401",
                    Severity::Error,
                    format!(
                        "row cycle closes in ns but not in cycles at {clock_mhz} MHz: \
                         tRC ({} ck) < tRAS ({} ck) + tRP ({} ck)",
                        r.t_rc, r.t_ras, r.t_rp
                    ),
                    "t_rc_ck >= t_ras_ck + t_rp_ck",
                    json!({"clock_mhz": clock_mhz, "t_rc_ck": r.t_rc, "t_ras_ck": r.t_ras, "t_rp_ck": r.t_rp}),
                ));
            }
        }
        Err(e) => {
            report.push(witness(
                "MCM401",
                Severity::Error,
                format!("timings do not resolve at {clock_mhz} MHz: {e}"),
                "min_clock_mhz <= clock_mhz <= max_clock_mhz (and validate())",
                json!({
                    "clock_mhz": clock_mhz,
                    "min_clock_mhz": t.min_clock_mhz,
                    "max_clock_mhz": t.max_clock_mhz,
                }),
            ));
        }
    }

    // --- MCM402: four-activate window vs tRRD -----------------------------
    if t.t_faw_ns + EPS < t.t_rrd_ns {
        report.push(witness(
            "MCM402",
            Severity::Error,
            format!(
                "tFAW ({} ns) is shorter than a single tRRD gap ({} ns): the \
                 four-activate window is unsatisfiable as specified",
                t.t_faw_ns, t.t_rrd_ns
            ),
            "t_faw_ns >= t_rrd_ns",
            json!({"t_faw_ns": t.t_faw_ns, "t_rrd_ns": t.t_rrd_ns}),
        ));
    } else if t.t_faw_ns + EPS < 4.0 * t.t_rrd_ns {
        report.push(witness(
            "MCM402",
            Severity::Warning,
            format!(
                "tFAW ({} ns) is below 4*tRRD ({} ns): tRRD alone already spaces \
                 any four activates wider than the window, so tFAW never binds \
                 (likely a transcription error in the datasheet values)",
                t.t_faw_ns,
                4.0 * t.t_rrd_ns
            ),
            "t_faw_ns >= 4 * t_rrd_ns",
            json!({"t_faw_ns": t.t_faw_ns, "t_rrd_ns": t.t_rrd_ns, "four_t_rrd_ns": 4.0 * t.t_rrd_ns}),
        ));
    }

    // --- MCM403: refresh-budget arithmetic --------------------------------
    if t.t_refi_ns > 0.0 {
        let duty = t.t_rfc_ns / t.t_refi_ns;
        let describe = format!(
            "refresh duty cycle tRFC/tREFI = {} / {} ns = {:.1} % of all time",
            t.t_rfc_ns,
            t.t_refi_ns,
            duty * 100.0
        );
        if t.t_refi_ns <= t.t_rfc_ns {
            report.push(witness(
                "MCM403",
                Severity::Error,
                format!(
                    "refresh starves the device: tREFI ({} ns) does not exceed \
                     tRFC ({} ns), so a refresh is due before the previous one ends",
                    t.t_refi_ns, t.t_rfc_ns
                ),
                "t_refi_ns > t_rfc_ns",
                json!({"t_refi_ns": t.t_refi_ns, "t_rfc_ns": t.t_rfc_ns}),
            ));
        } else if duty >= REFRESH_DUTY_ERROR {
            report.push(witness(
                "MCM403",
                Severity::Error,
                format!("{describe}: the majority of the bandwidth is refresh overhead"),
                "t_rfc_ns / t_refi_ns < 0.5",
                json!({"t_rfc_ns": t.t_rfc_ns, "t_refi_ns": t.t_refi_ns, "duty": duty}),
            ));
        } else if duty > REFRESH_DUTY_WARNING {
            report.push(witness(
                "MCM403",
                Severity::Warning,
                format!("{describe}: more than 10 % of peak bandwidth goes to refresh"),
                "t_rfc_ns / t_refi_ns <= 0.1",
                json!({"t_rfc_ns": t.t_rfc_ns, "t_refi_ns": t.t_refi_ns, "duty": duty}),
            ));
        }
    }

    // --- MCM404: power-down entry/exit consistency ------------------------
    if t.t_xsr_ns + EPS < t.t_rfc_ns {
        report.push(witness(
            "MCM404",
            Severity::Error,
            format!(
                "self-refresh exit cannot cover the refresh it owes: tXSR ({} ns) \
                 < tRFC ({} ns)",
                t.t_xsr_ns, t.t_rfc_ns
            ),
            "t_xsr_ns >= t_rfc_ns",
            json!({"t_xsr_ns": t.t_xsr_ns, "t_rfc_ns": t.t_rfc_ns}),
        ));
    }
    if t.t_xp_ck == 0 {
        report.push(witness(
            "MCM404",
            Severity::Warning,
            "tXP of 0 cycles: a free power-down exit makes standby power results \
             optimistic for any real device"
                .to_string(),
            "t_xp_ck >= 1",
            json!({"t_xp_ck": t.t_xp_ck}),
        ));
    }
    // A power-down residency longer than a refresh interval means every
    // power-down entry risks postponing refresh beyond its deadline.
    let clock_period_ns = 1e3 / clock_mhz.max(1) as f64;
    let residency_ns = t.t_cke_min_ck as f64 * clock_period_ns;
    if residency_ns > t.t_refi_ns {
        report.push(witness(
            "MCM404",
            Severity::Error,
            format!(
                "minimum power-down residency tCKE ({} ck = {:.1} ns at {clock_mhz} MHz) \
                 exceeds the refresh interval tREFI ({} ns): every power-down entry \
                 overruns a refresh deadline",
                t.t_cke_min_ck, residency_ns, t.t_refi_ns
            ),
            "t_cke_min_ck * clock_period_ns <= t_refi_ns",
            json!({
                "t_cke_min_ck": t.t_cke_min_ck,
                "residency_ns": residency_ns,
                "t_refi_ns": t.t_refi_ns,
                "clock_mhz": clock_mhz,
            }),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (TimingParams, Geometry) {
        (
            TimingParams::next_gen_mobile_ddr(),
            Geometry::next_gen_mobile_ddr(),
        )
    }

    #[test]
    fn every_device_preset_lints_clean_at_its_anchor_clock() {
        let g = Geometry::next_gen_mobile_ddr();
        for (name, t, clock) in [
            ("next_gen", TimingParams::next_gen_mobile_ddr(), 400),
            ("contemporary", TimingParams::contemporary_mobile_ddr(), 200),
            ("future_lpddr2", TimingParams::future_lpddr2(), 400),
            ("standard_ddr2", TimingParams::standard_ddr2(), 400),
        ] {
            let r = lint_timing(&t, clock, &g);
            assert!(r.is_clean(), "{name}: {}", r.render_human());
        }
    }

    #[test]
    fn out_of_window_clock_is_a_401_error() {
        let (t, g) = base();
        let r = lint_timing(&t, 100, &g);
        assert_eq!(r.ids(), vec!["MCM401"], "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn refresh_duty_thresholds() {
        let (mut t, g) = base();
        t.t_rfc_ns = 1_000.0; // 12.8 % of tREFI
        t.t_xsr_ns = 4_000.0; // keep MCM404 (tXSR >= tRFC) satisfied
        let r = lint_timing(&t, 400, &g);
        assert_eq!(r.ids(), vec!["MCM403"]);
        assert_eq!(r.count(Severity::Warning), 1);
        t.t_rfc_ns = 4_000.0; // 51.2 %
        let r = lint_timing(&t, 400, &g);
        assert!(r.has_errors(), "{}", r.render_human());
    }
}
