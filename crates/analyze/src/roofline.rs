//! Bandwidth-roofline feasibility (`MCM405`): the workload's sustained
//! demand from the Table I load model against an analytic upper bound on
//! what the configured memory can deliver under *any* scheduler.
//!
//! The roofline is the minimum of four per-channel ceilings, derated by
//! the mandatory refresh duty cycle and scaled by the channel count:
//!
//! * **data bus** — `word_bytes × 2 × f_ck` (DDR: two beats per cycle);
//! * **four-activate window** — at most four pages opened per tFAW;
//! * **activate-to-activate** — at most one page opened per tRRD;
//! * **row cycle** — each bank reopens a page at most once per tRC.
//!
//! Every ceiling is optimistic (perfect page hits, zero turnaround, ideal
//! scheduling), so a demand *above* the roofline can never meet its frame
//! deadline: an error-severity `MCM405` finding is sound. Demand within
//! 90 % of the roofline earns a warning — real schedulers lose a few
//! percent to turnarounds and bank conflicts, so such points are at risk.

use mcm_channel::MemoryConfig;
use mcm_load::{LoadModel, UseCase};
use mcm_verify::{Diagnostic, Report, Severity};
use serde_json::json;

/// Demand above this fraction of the roofline is flagged as at-risk.
const UTILIZATION_WARNING: f64 = 0.90;

/// `MCM405` for the paper's Table I chain on one memory configuration.
///
/// Equivalent to [`lint_roofline_model`] with the default workload; kept
/// as the stable entry point for Table I-only callers.
pub fn lint_roofline(uc: &UseCase, mem: &MemoryConfig) -> Report {
    // Structural problems (zero channels, inconsistent use case, an
    // unresolvable clock) belong to MCM1xx / MCM401; stay silent here.
    if uc.validate().is_err() {
        return Report::new();
    }
    roofline_report(uc.table_row().bits_per_second() as f64 / 8.0, mem)
}

/// `MCM405` for any [`LoadModel`] on one memory configuration: the model's
/// sustained demand (`bits_per_second`) against the timing-derated peak.
/// A multi-tenant model's demand is the sum over tenants, so contention
/// for the roofline is priced in before any simulation runs.
pub fn lint_roofline_model(model: &dyn LoadModel, mem: &MemoryConfig) -> Report {
    // An inconsistent model is an MCM1xx / construction-time problem.
    if model.validate().is_err() {
        return Report::new();
    }
    roofline_report(model.bits_per_second() as f64 / 8.0, mem)
}

fn roofline_report(demand: f64, mem: &MemoryConfig) -> Report {
    let mut report = Report::new();
    let cluster = &mem.controller.cluster;
    if mem.channels == 0 || cluster.clock_mhz == 0 {
        return report;
    }
    let t = &cluster.timing;
    let g = &cluster.geometry;

    let f_ck = cluster.clock_mhz as f64 * 1e6;
    let page = g.page_bytes() as f64;
    let per_ns = 1e9; // bytes/ns → bytes/s
    let mut bounds: Vec<(&str, f64)> = vec![("data_bus", g.word_bytes() as f64 * 2.0 * f_ck)];
    if t.t_faw_ns > 0.0 {
        bounds.push(("four_activate_window", 4.0 * page / t.t_faw_ns * per_ns));
    }
    if t.t_rrd_ns > 0.0 {
        bounds.push(("activate_spacing", page / t.t_rrd_ns * per_ns));
    }
    if t.t_rc_ns > 0.0 {
        bounds.push(("row_cycle", g.banks as f64 * page / t.t_rc_ns * per_ns));
    }
    let (binding, per_channel) =
        bounds.iter().copied().fold(
            ("none", f64::INFINITY),
            |acc, b| {
                if b.1 < acc.1 {
                    b
                } else {
                    acc
                }
            },
        );
    // Mandatory refresh steals tRFC out of every tREFI no matter what the
    // scheduler does (a broken duty cycle is MCM403's finding, not ours).
    let derate = if t.t_refi_ns > t.t_rfc_ns && t.t_rfc_ns >= 0.0 {
        1.0 - t.t_rfc_ns / t.t_refi_ns
    } else {
        1.0
    };
    let roofline = per_channel * derate * mem.channels as f64;
    if roofline <= 0.0 {
        return report;
    }
    let utilization = demand / roofline;

    let describe = format!(
        "demand {:.2} GB/s vs roofline {:.2} GB/s ({:.0} % of best case) on {} channel(s); \
         binding ceiling: {} at {:.2} GB/s per channel before the {:.1} % refresh derate",
        demand / 1e9,
        roofline / 1e9,
        utilization * 100.0,
        mem.channels,
        binding,
        per_channel / 1e9,
        (1.0 - derate) * 100.0
    );
    let values = json!({
        "demand_bytes_per_s": demand,
        "roofline_bytes_per_s": roofline,
        "utilization": utilization,
        "channels": mem.channels,
        "clock_mhz": cluster.clock_mhz,
        "binding_bound": binding,
        "per_channel_bytes_per_s": per_channel,
        "refresh_derate": derate,
        "bounds": bounds.iter().map(|(n, v)| json!({"bound": n, "bytes_per_s": v})).collect::<Vec<_>>(),
    });
    if utilization > 1.0 {
        report.push(
            Diagnostic::new(
                "MCM405",
                Severity::Error,
                format!(
                    "workload exceeds the bandwidth roofline: {describe}; no scheduler \
                     can meet the frame deadline at this point"
                ),
            )
            .with_context(
                json!({
                    "rule": "MCM405",
                    "inequality": "demand_bytes_per_s <= roofline_bytes_per_s",
                    "values": values,
                })
                .to_string(),
            ),
        );
    } else if utilization > UTILIZATION_WARNING {
        report.push(
            Diagnostic::new(
                "MCM405",
                Severity::Warning,
                format!(
                    "workload sits within 10 % of the bandwidth roofline: {describe}; \
                     turnarounds and bank conflicts may still miss deadlines"
                ),
            )
            .with_context(
                json!({
                    "rule": "MCM405",
                    "inequality": "demand_bytes_per_s <= 0.9 * roofline_bytes_per_s",
                    "values": values,
                })
                .to_string(),
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    fn uc(p: HdOperatingPoint) -> UseCase {
        UseCase::hd(p)
    }

    #[test]
    fn paper_configs_sit_under_the_roofline() {
        for p in [
            HdOperatingPoint::Hd720p30,
            HdOperatingPoint::Hd720p60,
            HdOperatingPoint::Hd1080p30,
            HdOperatingPoint::Hd1080p60,
        ] {
            let r = lint_roofline(&uc(p), &MemoryConfig::paper(4, 400));
            assert!(r.is_clean(), "{p:?}: {}", r.render_human());
        }
        let r = lint_roofline(
            &uc(HdOperatingPoint::Uhd2160p30),
            &MemoryConfig::paper(8, 400),
        );
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn uhd_on_four_channels_breaks_the_roofline() {
        // 15.8 GB/s of demand vs ~12.6 GB/s of derated peak: infeasible
        // under any scheduler, which the dynamic verdict confirms.
        let r = lint_roofline(
            &uc(HdOperatingPoint::Uhd2160p30),
            &MemoryConfig::paper(4, 400),
        );
        assert_eq!(r.ids(), vec!["MCM405"], "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn near_roofline_demand_is_a_warning_not_an_error() {
        // 1080p60 needs ~8.0 GB/s; 4 channels at 266 MHz deliver ~8.4 GB/s
        // after the refresh derate — above 90 % utilization, below 100 %.
        let r = lint_roofline(
            &uc(HdOperatingPoint::Hd1080p60),
            &MemoryConfig::paper(4, 266),
        );
        assert_eq!(r.ids(), vec!["MCM405"], "{}", r.render_human());
        assert!(!r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn table_i_model_matches_the_use_case_entry_point() {
        use mcm_load::Workload;
        for p in [HdOperatingPoint::Hd1080p60, HdOperatingPoint::Uhd2160p30] {
            let mem = MemoryConfig::paper(4, 400);
            let via_uc = lint_roofline(&uc(p), &mem);
            let via_model = lint_roofline_model(Workload::TableI.model(&uc(p)).as_ref(), &mem);
            assert_eq!(via_uc.ids(), via_model.ids());
            assert_eq!(via_uc.render_human(), via_model.render_human());
        }
    }

    #[test]
    fn heavier_workload_models_raise_findings_table_i_does_not() {
        use mcm_load::Workload;
        // 1080p60 on 4x400 is comfortably feasible under Table I (~8 of
        // ~12.6 GB/s), but the VVC profile's extra encoder traffic blows
        // straight past the roofline, as do four contending tenants (two
        // recorders plus playback and display).
        let mem = MemoryConfig::paper(4, 400);
        let point = uc(HdOperatingPoint::Hd1080p60);
        assert!(lint_roofline(&point, &mem).is_clean());
        let vvc = Workload::parse("vvc-record").unwrap().model(&point);
        let r = lint_roofline_model(vvc.as_ref(), &mem);
        assert!(
            r.has_errors(),
            "vvc should be flagged: {}",
            r.render_human()
        );
        let mt = Workload::MultiTenant(4).model(&point);
        let r = lint_roofline_model(mt.as_ref(), &mem);
        assert!(r.has_errors(), "four tenants exceed the roofline");
    }

    #[test]
    fn zero_channels_is_not_this_rules_problem() {
        let mut mem = MemoryConfig::paper(4, 400);
        mem.channels = 0;
        let r = lint_roofline(&uc(HdOperatingPoint::Uhd2160p30), &mem);
        assert!(r.is_clean());
    }
}
