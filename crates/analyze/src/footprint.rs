//! Memory-footprint bound (`MCM406`): does the use case's frame-buffer
//! working set fit the configured channels at all?
//!
//! This computes [`FrameLayout`] with *exactly* the options the simulation
//! engine uses (bank-staggered placement over the full multi-channel
//! capacity), so the static answer is the engine's answer: a point flagged
//! here would abort its run with the same `LayoutOverflow`. That turns the
//! paper's 64 MiB-per-channel ceiling — previously a silent skip in
//! `mcm bench` — into an explicit, witnessed diagnostic.

use mcm_channel::MemoryConfig;
use mcm_load::{FrameLayout, LayoutOptions, LoadError, UseCase};
use mcm_verify::{Diagnostic, Report, Severity};
use serde_json::json;

/// Layouts filling more than this fraction of capacity are flagged as
/// leaving little headroom for anything beyond the frame buffers.
const FOOTPRINT_WARNING: f64 = 0.90;

/// `MCM406` for one workload on one memory configuration.
pub fn lint_footprint(uc: &UseCase, mem: &MemoryConfig) -> Report {
    let mut report = Report::new();
    // Structural problems are MCM1xx findings; stay silent on them here.
    if uc.validate().is_err() || mem.channels == 0 {
        return report;
    }
    let geometry = &mem.controller.cluster.geometry;
    // Mirror MemorySubsystem::new: per-device capacity times channel count.
    let capacity = geometry.capacity_bytes() * mem.channels as u64;
    let options = LayoutOptions::bank_staggered(
        capacity,
        geometry.page_bytes() as u64,
        mem.channels,
        geometry.banks,
    );
    match FrameLayout::with_options(uc, &options) {
        Ok(layout) => {
            let needed = layout.total_bytes();
            let fill = needed as f64 / capacity.max(1) as f64;
            if fill > FOOTPRINT_WARNING {
                report.push(
                    Diagnostic::new(
                        "MCM406",
                        Severity::Warning,
                        format!(
                            "frame buffers fill {:.0} % of memory: {} MiB of {} MiB \
                             across {} channel(s) leaves little room for code or heap",
                            fill * 100.0,
                            needed >> 20,
                            capacity >> 20,
                            mem.channels
                        ),
                    )
                    .with_context(
                        json!({
                            "rule": "MCM406",
                            "inequality": "layout_total_bytes <= 0.9 * capacity_bytes",
                            "values": {
                                "needed_bytes": needed,
                                "capacity_bytes": capacity,
                                "fill": fill,
                                "channels": mem.channels,
                            },
                        })
                        .to_string(),
                    ),
                );
            }
        }
        Err(LoadError::LayoutOverflow { needed, capacity }) => {
            report.push(
                Diagnostic::new(
                    "MCM406",
                    Severity::Error,
                    format!(
                        "frame buffers do not fit: need {} MiB, capacity is {} MiB \
                         across {} channel(s) of {} MiB each",
                        needed >> 20,
                        capacity >> 20,
                        mem.channels,
                        geometry.capacity_bytes() >> 20
                    ),
                )
                .with_context(
                    json!({
                        "rule": "MCM406",
                        "inequality": "layout_total_bytes <= capacity_bytes",
                        "values": {
                            "needed_bytes": needed,
                            "capacity_bytes": capacity,
                            "channels": mem.channels,
                            "per_channel_bytes": geometry.capacity_bytes(),
                        },
                    })
                    .to_string(),
                ),
            );
        }
        Err(e) => {
            report.push(
                Diagnostic::new(
                    "MCM406",
                    Severity::Error,
                    format!("frame-buffer layout cannot be computed: {e}"),
                )
                .with_context(
                    json!({
                        "rule": "MCM406",
                        "inequality": "layout is computable",
                        "values": {"error": e.to_string()},
                    })
                    .to_string(),
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    #[test]
    fn the_paper_grid_footprints_fit() {
        for p in [
            HdOperatingPoint::Hd720p30,
            HdOperatingPoint::Hd720p60,
            HdOperatingPoint::Hd1080p30,
            HdOperatingPoint::Hd1080p60,
        ] {
            let r = lint_footprint(&UseCase::hd(p), &MemoryConfig::paper(1, 400));
            assert!(r.is_clean(), "{p:?}: {}", r.render_human());
        }
    }

    #[test]
    fn uhd_on_one_channel_overflows_with_a_witnessed_406() {
        let r = lint_footprint(
            &UseCase::hd(HdOperatingPoint::Uhd2160p30),
            &MemoryConfig::paper(1, 400),
        );
        assert_eq!(r.ids(), vec!["MCM406"], "{}", r.render_human());
        assert!(r.has_errors());
        let d = &r.diagnostics[0];
        let ctx: serde_json::Value = serde_json::from_str(d.context.as_deref().unwrap()).unwrap();
        let needed = ctx["values"]["needed_bytes"].as_u64().unwrap();
        let capacity = ctx["values"]["capacity_bytes"].as_u64().unwrap();
        assert!(needed > capacity, "witness numbers must show the violation");
        assert_eq!(capacity, 64 << 20);
    }

    #[test]
    fn uhd_fits_on_enough_channels() {
        let r = lint_footprint(
            &UseCase::hd(HdOperatingPoint::Uhd2160p30),
            &MemoryConfig::paper(8, 400),
        );
        assert!(r.is_clean(), "{}", r.render_human());
    }
}
