//! Memory-footprint bound (`MCM406`): does the use case's frame-buffer
//! working set fit the configured channels at all?
//!
//! This computes [`FrameLayout`] with *exactly* the options the simulation
//! engine uses (bank-staggered placement over the full multi-channel
//! capacity), so the static answer is the engine's answer: a point flagged
//! here would abort its run with the same `LayoutOverflow`. That turns the
//! capacity ceiling — previously a silent skip in `mcm bench` — into an
//! explicit, witnessed diagnostic. The ceiling itself is a datasheet
//! field, `Geometry::capacity_bytes()`: the paper's 512 Mb part gives
//! 64 MiB per channel, `Geometry::large_capacity_mobile_ddr` gives
//! 256 MiB and fits 2160p30 into one or two channels.

use mcm_channel::MemoryConfig;
use mcm_load::{FrameLayout, LayoutOptions, LoadError, LoadModel, UseCase};
use mcm_verify::{Diagnostic, Report, Severity};
use serde_json::json;

/// Layouts filling more than this fraction of capacity are flagged as
/// leaving little headroom for anything beyond the frame buffers.
const FOOTPRINT_WARNING: f64 = 0.90;

/// `MCM406` for the paper's Table I chain on one memory configuration.
///
/// Equivalent to [`lint_footprint_model`] with the default workload; kept
/// as the stable entry point for Table I-only callers.
pub fn lint_footprint(uc: &UseCase, mem: &MemoryConfig) -> Report {
    // Structural problems are MCM1xx findings; stay silent on them here.
    if uc.validate().is_err() || mem.channels == 0 {
        return Report::new();
    }
    let (capacity, options) = engine_layout_options(mem);
    footprint_report(
        FrameLayout::with_options(uc, &options).map(|l| l.total_bytes()),
        capacity,
        mem,
    )
}

/// `MCM406` for any [`LoadModel`] on one memory configuration: the model's
/// full working set (every tenant's buffers, for multi-tenant workloads)
/// against the channel capacity, with exactly the engine's layout options.
pub fn lint_footprint_model(model: &dyn LoadModel, mem: &MemoryConfig) -> Report {
    if model.validate().is_err() || mem.channels == 0 {
        return Report::new();
    }
    let (capacity, options) = engine_layout_options(mem);
    footprint_report(
        model.footprint(&options).map(|f| f.total_bytes),
        capacity,
        mem,
    )
}

/// Mirror `MemorySubsystem::new`: per-device capacity times channel count,
/// bank-staggered placement over the whole multi-channel space.
fn engine_layout_options(mem: &MemoryConfig) -> (u64, LayoutOptions) {
    let geometry = &mem.controller.cluster.geometry;
    let capacity = geometry.capacity_bytes() * mem.channels as u64;
    let options = LayoutOptions::bank_staggered(
        capacity,
        geometry.page_bytes() as u64,
        mem.channels,
        geometry.banks,
    );
    (capacity, options)
}

fn footprint_report(layout: Result<u64, LoadError>, capacity: u64, mem: &MemoryConfig) -> Report {
    let mut report = Report::new();
    let geometry = &mem.controller.cluster.geometry;
    match layout {
        Ok(needed) => {
            let fill = needed as f64 / capacity.max(1) as f64;
            if fill > FOOTPRINT_WARNING {
                report.push(
                    Diagnostic::new(
                        "MCM406",
                        Severity::Warning,
                        format!(
                            "frame buffers fill {:.0} % of memory: {} MiB of {} MiB \
                             across {} channel(s) leaves little room for code or heap",
                            fill * 100.0,
                            needed >> 20,
                            capacity >> 20,
                            mem.channels
                        ),
                    )
                    .with_context(
                        json!({
                            "rule": "MCM406",
                            "inequality": "layout_total_bytes <= 0.9 * capacity_bytes",
                            "values": {
                                "needed_bytes": needed,
                                "capacity_bytes": capacity,
                                "fill": fill,
                                "channels": mem.channels,
                            },
                        })
                        .to_string(),
                    ),
                );
            }
        }
        Err(LoadError::LayoutOverflow { needed, capacity }) => {
            report.push(
                Diagnostic::new(
                    "MCM406",
                    Severity::Error,
                    format!(
                        "frame buffers do not fit: need {} MiB, capacity is {} MiB \
                         across {} channel(s) of {} MiB each",
                        needed >> 20,
                        capacity >> 20,
                        mem.channels,
                        geometry.capacity_bytes() >> 20
                    ),
                )
                .with_context(
                    json!({
                        "rule": "MCM406",
                        "inequality": "layout_total_bytes <= capacity_bytes",
                        "values": {
                            "needed_bytes": needed,
                            "capacity_bytes": capacity,
                            "channels": mem.channels,
                            "per_channel_bytes": geometry.capacity_bytes(),
                        },
                    })
                    .to_string(),
                ),
            );
        }
        Err(e) => {
            report.push(
                Diagnostic::new(
                    "MCM406",
                    Severity::Error,
                    format!("frame-buffer layout cannot be computed: {e}"),
                )
                .with_context(
                    json!({
                        "rule": "MCM406",
                        "inequality": "layout is computable",
                        "values": {"error": e.to_string()},
                    })
                    .to_string(),
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    #[test]
    fn the_paper_grid_footprints_fit() {
        for p in [
            HdOperatingPoint::Hd720p30,
            HdOperatingPoint::Hd720p60,
            HdOperatingPoint::Hd1080p30,
            HdOperatingPoint::Hd1080p60,
        ] {
            let r = lint_footprint(&UseCase::hd(p), &MemoryConfig::paper(1, 400));
            assert!(r.is_clean(), "{p:?}: {}", r.render_human());
        }
    }

    #[test]
    fn uhd_on_one_channel_overflows_with_a_witnessed_406() {
        let r = lint_footprint(
            &UseCase::hd(HdOperatingPoint::Uhd2160p30),
            &MemoryConfig::paper(1, 400),
        );
        assert_eq!(r.ids(), vec!["MCM406"], "{}", r.render_human());
        assert!(r.has_errors());
        let d = &r.diagnostics[0];
        let ctx: serde_json::Value = serde_json::from_str(d.context.as_deref().unwrap()).unwrap();
        let needed = ctx["values"]["needed_bytes"].as_u64().unwrap();
        let capacity = ctx["values"]["capacity_bytes"].as_u64().unwrap();
        assert!(needed > capacity, "witness numbers must show the violation");
        assert_eq!(capacity, 64 << 20);
    }

    #[test]
    fn table_i_model_matches_the_use_case_entry_point() {
        use mcm_load::Workload;
        for (p, ch) in [
            (HdOperatingPoint::Hd1080p30, 1),
            (HdOperatingPoint::Uhd2160p30, 1),
        ] {
            let mem = MemoryConfig::paper(ch, 400);
            let uc = UseCase::hd(p);
            let via_uc = lint_footprint(&uc, &mem);
            let via_model = lint_footprint_model(Workload::TableI.model(&uc).as_ref(), &mem);
            assert_eq!(via_uc.ids(), via_model.ids());
            assert_eq!(via_uc.render_human(), via_model.render_human());
        }
    }

    #[test]
    fn tenants_multiply_the_footprint() {
        use mcm_load::Workload;
        // 1080p30's buffers fit one channel on their own, but several
        // contending tenants' disjoint working sets do not.
        let mem = MemoryConfig::paper(1, 400);
        let uc = UseCase::hd(HdOperatingPoint::Hd1080p30);
        assert!(lint_footprint(&uc, &mem).is_clean());
        let mt = Workload::MultiTenant(8).model(&uc);
        let r = lint_footprint_model(mt.as_ref(), &mem);
        assert!(r.has_errors(), "{}", r.render_human());
        assert_eq!(r.ids(), vec!["MCM406"]);
    }

    #[test]
    fn uhd_fits_on_enough_channels() {
        let r = lint_footprint(
            &UseCase::hd(HdOperatingPoint::Uhd2160p30),
            &MemoryConfig::paper(8, 400),
        );
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn uhd_fits_few_channels_of_the_large_capacity_part() {
        // The ceiling is a datasheet field: the same 2160p30 working set
        // that overflows one 64 MiB channel is clean on the 2 Gb part.
        for channels in [1, 2] {
            let mut mem = MemoryConfig::paper(channels, 400);
            mem.controller.cluster.geometry = mcm_dram::Geometry::large_capacity_mobile_ddr();
            let r = lint_footprint(&UseCase::hd(HdOperatingPoint::Uhd2160p30), &mem);
            assert!(r.is_clean(), "{channels} ch: {}", r.render_human());
        }
    }
}
