//! Property tests for the timing lints: any randomly generated datasheet
//! that satisfies the analyzer's documented preconditions by construction
//! must come back clean, and a targeted mutation of such a datasheet must
//! always be flagged. This pins the analyzer's false-positive rate at
//! zero over the constructible-valid region — a lint that rejected
//! healthy configs would make `mcm run`'s static refusal unusable.

use mcm_analyze::lint_timing;
use mcm_dram::{Geometry, TimingParams};
use proptest::prelude::*;

/// A random timing table that is valid by construction:
///
/// * row cycle closes with at least two 200 MHz clock periods of slack,
///   so ceil-rounding cannot re-open it at any clock in the window
///   (MCM401);
/// * `tFAW >= 4 * tRRD`, so the four-activate window binds (MCM402);
/// * refresh duty `tRFC/tREFI <= 1/12`, under the 10 % advisory
///   threshold (MCM403);
/// * `tXSR >= tRFC`, `tXP >= 1` and a power-down residency far below
///   `tREFI` (MCM404).
fn arb_valid_timing() -> impl Strategy<Value = (TimingParams, u64)> {
    (
        (5.0f64..20.0, 5.0f64..20.0, 25.0f64..50.0, 10.0f64..40.0),
        (5.0f64..15.0, 0.0f64..20.0, 60.0f64..140.0, 12u32..80),
        (0.0f64..100.0, 1u64..4, 1u64..4, 200u64..=533),
    )
        .prop_map(
            |(
                (rcd, rp, ras, rc_slack),
                (rrd, faw_extra, rfc, refi_mul),
                (xsr_extra, xp, cke, clock),
            )| {
                let mut t = TimingParams::next_gen_mobile_ddr();
                t.t_rcd_ns = rcd;
                t.t_rp_ns = rp;
                t.t_ras_ns = ras;
                t.t_rc_ns = ras + rp + rc_slack;
                t.t_rrd_ns = rrd;
                t.t_faw_ns = 4.0 * rrd + faw_extra;
                t.t_rfc_ns = rfc;
                t.t_refi_ns = rfc * refi_mul as f64;
                t.t_xsr_ns = rfc + xsr_extra;
                t.t_xp_ck = xp;
                t.t_cke_min_ck = cke;
                (t, clock)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated datasheet passes the device's own `validate`,
    /// resolves at its clock, and lints clean.
    #[test]
    fn valid_datasheets_lint_clean(tc in arb_valid_timing()) {
        let (t, clock) = tc;
        let g = Geometry::next_gen_mobile_ddr();
        prop_assert!(t.validate().is_ok(), "validate rejected a generated table");
        prop_assert!(t.resolve(clock, &g).is_ok(), "resolve rejected {clock} MHz");
        let r = lint_timing(&t, clock, &g);
        prop_assert!(r.is_clean(), "false positive at {clock} MHz: {}", r.render_human());
    }

    /// Re-opening the row cycle on any otherwise-valid datasheet is
    /// always caught as MCM401 — detection does not depend on which
    /// corner of the parameter space the rest of the table sits in.
    #[test]
    fn broken_row_cycle_is_always_flagged(tc in arb_valid_timing()) {
        let (t, clock) = tc;
        let g = Geometry::next_gen_mobile_ddr();
        let mut t = t;
        t.t_rc_ns = t.t_ras_ns + t.t_rp_ns - 1.0;
        let r = lint_timing(&t, clock, &g);
        prop_assert!(r.has_errors(), "missed: {}", r.render_human());
        prop_assert!(r.ids().contains(&"MCM401"), "wrong rule: {:?}", r.ids());
    }

    /// Starving the refresh budget on any otherwise-valid datasheet is
    /// always caught as an MCM403 error.
    #[test]
    fn refresh_starvation_is_always_flagged(tc in arb_valid_timing()) {
        let (t, clock) = tc;
        let g = Geometry::next_gen_mobile_ddr();
        let mut t = t;
        // Keep validate() happy (tREFI > tRFC) but push the duty cycle
        // over the 50 % hard-error line.
        t.t_refi_ns = t.t_rfc_ns * 1.5;
        let r = lint_timing(&t, clock, &g);
        prop_assert!(r.has_errors(), "missed: {}", r.render_human());
        prop_assert!(r.ids().contains(&"MCM403"), "wrong rule: {:?}", r.ids());
    }
}
