//! The soundness cross-check that backs the crate's contract: an
//! error-severity finding from the feasibility rules means the point
//! *must* fail dynamically — either the frame layout refuses to build or
//! the simulated frame misses its deadline outright. If this test fails,
//! the analyzer has condemned a point the simulator can serve, and
//! `mcm run`'s static refusal would be rejecting healthy configs.

use mcm_analyze::{analyze_experiment, verdict};
use mcm_core::{Experiment, RealTimeVerdict, RunOptions};
use mcm_load::HdOperatingPoint;

/// The paper's five Table I operating points at their published channel
/// counts: all must lint clean, or the analyzer contradicts the paper's
/// own feasibility results.
#[test]
fn paper_golden_configs_lint_clean() {
    let golden = [
        (HdOperatingPoint::Hd720p30, 4u32),
        (HdOperatingPoint::Hd720p60, 4),
        (HdOperatingPoint::Hd1080p30, 4),
        (HdOperatingPoint::Hd1080p60, 4),
        (HdOperatingPoint::Uhd2160p30, 8),
    ];
    for (point, channels) in golden {
        let exp = Experiment::paper(point, channels, 400);
        let r = analyze_experiment(&exp);
        assert!(r.is_clean(), "{point:?} x{channels}: {}", r.render_human());
    }
}

/// Sampled-grid soundness: every point the analyzer condemns must fail
/// when actually simulated. The op cap keeps each simulation quick; the
/// access-time extrapolation it implies cannot rescue a point whose
/// demand exceeds the physical roofline.
#[test]
fn static_errors_imply_dynamic_failure() {
    let mut condemned = 0;
    for point in HdOperatingPoint::ALL {
        for channels in [1u32, 2, 4, 8] {
            for clock in [200u64, 400] {
                let mut exp = Experiment::paper(point, channels, clock);
                exp.op_limit = Some(20_000);
                let v = verdict(&exp);
                if v.feasible {
                    continue;
                }
                condemned += 1;
                match exp.run_with(&RunOptions::default()) {
                    // Refused before the first cycle (layout overflow):
                    // as condemned, only sooner.
                    Err(_) => {}
                    Ok(out) => {
                        let frame = out.into_frame().expect("single-frame run");
                        assert!(
                            matches!(frame.verdict, RealTimeVerdict::Fails),
                            "{point:?} x{channels}ch @ {clock} MHz: statically \
                             condemned ({:?}) but simulated as {}",
                            v.reason(),
                            frame.verdict
                        );
                    }
                }
            }
        }
    }
    // The grid is built to contain a sizeable infeasible region; if this
    // drops to zero the cross-check has silently stopped checking.
    assert!(
        condemned >= 8,
        "only {condemned} condemned points in the grid"
    );
}
