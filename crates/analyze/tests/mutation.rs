//! Mutation-style precision tests: start from a known-good datasheet or
//! paper configuration, inject exactly one defect class, and assert that
//! the analyzer reports exactly the rule IDs that defect maps to — no
//! more, no less. This pins both the detection power and the precision
//! of the MCM4xx catalogue, in the same style as `mcm-verify`'s trace
//! mutation suite.

use mcm_analyze::{analyze_experiment, lint_footprint, lint_roofline, lint_timing};
use mcm_core::Experiment;
use mcm_dram::{Geometry, TimingParams};
use mcm_load::HdOperatingPoint;
use mcm_verify::Severity;

fn base() -> (TimingParams, Geometry) {
    (
        TimingParams::next_gen_mobile_ddr(),
        Geometry::next_gen_mobile_ddr(),
    )
}

#[test]
fn the_unmutated_datasheet_is_clean() {
    let (t, g) = base();
    let r = lint_timing(&t, 400, &g);
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn mcm401_row_cycle_that_does_not_close() {
    let (mut t, g) = base();
    t.t_rc_ns = t.t_ras_ns + t.t_rp_ns - 5.0;
    let r = lint_timing(&t, 400, &g);
    assert_eq!(r.ids(), vec!["MCM401"], "{}", r.render_human());
    assert!(r.has_errors());
}

#[test]
fn mcm401_clock_outside_the_device_window() {
    let (t, g) = base();
    for clock in [100u64, 600] {
        let r = lint_timing(&t, clock, &g);
        assert_eq!(r.ids(), vec!["MCM401"], "{clock} MHz: {}", r.render_human());
        assert!(r.has_errors());
    }
}

#[test]
fn mcm402_four_activate_window_that_never_binds() {
    let (mut t, g) = base();
    t.t_faw_ns = 3.0 * t.t_rrd_ns;
    let r = lint_timing(&t, 400, &g);
    assert_eq!(r.ids(), vec!["MCM402"], "{}", r.render_human());
    // A vacuous window is a datasheet smell, not a hard error.
    assert!(!r.has_errors());
    assert_eq!(r.count(Severity::Warning), 1);
}

#[test]
fn mcm403_refresh_duty_over_half() {
    let (mut t, g) = base();
    t.t_rfc_ns = 4_000.0; // 51.2 % of tREFI
    t.t_xsr_ns = 4_000.0; // keep MCM404 (tXSR >= tRFC) out of the blast radius
    let r = lint_timing(&t, 400, &g);
    assert_eq!(r.ids(), vec!["MCM403"], "{}", r.render_human());
    assert!(r.has_errors());
}

#[test]
fn mcm404_self_refresh_exit_shorter_than_a_refresh() {
    let (mut t, g) = base();
    t.t_xsr_ns = t.t_rfc_ns - 10.0;
    let r = lint_timing(&t, 400, &g);
    assert_eq!(r.ids(), vec!["MCM404"], "{}", r.render_human());
    assert!(r.has_errors());
}

#[test]
fn mcm404_power_down_residency_overruns_refresh() {
    let (mut t, g) = base();
    t.t_cke_min_ck = 10_000; // 25 us at 400 MHz, vs tREFI = 7.8 us
    let r = lint_timing(&t, 400, &g);
    assert_eq!(r.ids(), vec!["MCM404"], "{}", r.render_human());
    assert!(r.has_errors());
}

#[test]
fn mcm405_demand_over_the_roofline() {
    // 2160p30 on four channels fits in memory but exceeds what four
    // 32-bit channels can move: exactly the roofline rule, nothing else.
    let exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 4, 400);
    let r = analyze_experiment(&exp);
    assert_eq!(r.ids(), vec!["MCM405"], "{}", r.render_human());
    assert!(r.has_errors());
}

#[test]
fn mcm406_frame_buffers_that_do_not_fit() {
    let exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 1, 400);
    let r = lint_footprint(&exp.use_case, &exp.memory);
    assert_eq!(r.ids(), vec!["MCM406"], "{}", r.render_human());
    assert!(r.has_errors());
    // The whole-experiment pass stacks the bandwidth error on top.
    let r = analyze_experiment(&exp);
    assert_eq!(r.ids(), vec!["MCM405", "MCM406"], "{}", r.render_human());
}

#[test]
fn feasible_points_stay_silent_under_both_feasibility_rules() {
    for (point, channels) in [
        (HdOperatingPoint::Hd1080p30, 4u32),
        (HdOperatingPoint::Uhd2160p30, 8),
    ] {
        let exp = Experiment::paper(point, channels, 400);
        let r = lint_roofline(&exp.use_case, &exp.memory);
        assert!(r.is_clean(), "{point:?} x{channels}: {}", r.render_human());
        let r = lint_footprint(&exp.use_case, &exp.memory);
        assert!(r.is_clean(), "{point:?} x{channels}: {}", r.render_human());
    }
}
