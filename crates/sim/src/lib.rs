//! # mcm-sim — discrete-event simulation kernel
//!
//! The foundation of the `mcmem` workspace, which reproduces
//! *"A case for multi-channel memories in video recording"* (Aho, Nikara,
//! Tuominen, Kuusilinna — DATE 2009).
//!
//! The paper built its models in a commercial SystemC electronic-system-level
//! environment as untimed transaction-level models with separate timing and
//! power annotations. This crate provides the equivalent substrate from
//! scratch:
//!
//! * [`SimTime`] / [`Frequency`] / [`ClockDomain`] — picosecond-exact time
//!   and clock arithmetic (no cumulative rounding across millions of DRAM
//!   cycles).
//! * [`Simulation`] / [`Component`] / [`Ctx`] — a deterministic event queue
//!   delivering timestamped messages between registered components.
//! * [`stats`] — counters, running scalars, state-residency tracking (the
//!   basis of DRAM background-power accounting) and latency histograms.
//! * [`trace`] — an optional bounded command trace for debugging and tests.
//!
//! # Examples
//!
//! ```
//! use mcm_sim::{ClockDomain, Frequency, SimTime};
//!
//! // A 400 MHz DDR interface clock: tRCD = 15 ns is 6 clock cycles.
//! let clk = ClockDomain::new(Frequency::from_mhz(400)).unwrap();
//! assert_eq!(clk.ns_to_cycles_ceil(15.0), 6);
//! assert_eq!(clk.time_of_cycles(6), SimTime::from_ns(15));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod queue;
pub mod stats;
mod time;
pub mod trace;

pub use engine::{Component, ComponentId, Ctx, SimError, Simulation};
pub use queue::QueueKind;
pub use time::{ClockDomain, Frequency, SimTime, ZeroFrequencyError};
