//! Lightweight statistics primitives used by the memory-system models:
//! event counters, running scalar statistics, time-weighted state residency,
//! and fixed-bucket latency histograms.

use core::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use mcm_sim::stats::Counter;
///
/// let mut reads = Counter::new("reads");
/// reads.add(3);
/// reads.inc();
/// assert_eq!(reads.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Running min/max/mean over a stream of `f64` samples (Welford mean).
#[derive(Debug, Clone, Default)]
pub struct Scalar {
    count: u64,
    mean: f64,
    min: f64,
    max: f64,
}

impl Scalar {
    /// Creates an empty statistic.
    pub fn new() -> Self {
        Scalar::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Minimum sample, or `None` before any sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` before any sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Tracks how long a model spends in each of a small fixed set of states —
/// the backbone of the DRAM background-power accounting (standby vs.
/// power-down residency).
///
/// States are indexed `0..N`. Residency is closed out lazily: call
/// [`StateResidency::switch`] on every transition and
/// [`StateResidency::finish`] once at the end of the simulation.
///
/// # Examples
///
/// ```
/// use mcm_sim::stats::StateResidency;
/// use mcm_sim::SimTime;
///
/// let mut r = StateResidency::<2>::new(0, SimTime::ZERO);
/// r.switch(1, SimTime::from_ns(40));
/// r.finish(SimTime::from_ns(100));
/// assert_eq!(r.time_in(0), SimTime::from_ns(40));
/// assert_eq!(r.time_in(1), SimTime::from_ns(60));
/// ```
#[derive(Debug, Clone)]
pub struct StateResidency<const N: usize> {
    current: usize,
    since: SimTime,
    total: [SimTime; N],
    finished: bool,
}

impl<const N: usize> StateResidency<N> {
    /// Starts tracking in `initial` state at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `initial >= N`.
    pub fn new(initial: usize, at: SimTime) -> Self {
        assert!(initial < N, "state index {initial} out of range 0..{N}");
        StateResidency {
            current: initial,
            since: at,
            total: [SimTime::ZERO; N],
            finished: false,
        }
    }

    /// The state being accumulated right now.
    #[inline]
    pub fn current(&self) -> usize {
        self.current
    }

    /// Switches to `state` at time `at`, closing out the previous interval.
    ///
    /// # Panics
    ///
    /// Panics if `state >= N`, if `at` precedes the last transition, or if
    /// the tracker was already finished.
    pub fn switch(&mut self, state: usize, at: SimTime) {
        assert!(state < N, "state index {state} out of range 0..{N}");
        assert!(!self.finished, "residency tracker already finished");
        assert!(
            at >= self.since,
            "residency switch going backwards: {} < {}",
            at,
            self.since
        );
        self.total[self.current] += at - self.since;
        self.current = state;
        self.since = at;
    }

    /// Closes the final interval at `at`. Further switches panic.
    pub fn finish(&mut self, at: SimTime) {
        assert!(!self.finished, "residency tracker already finished");
        assert!(at >= self.since, "finish time precedes last switch");
        self.total[self.current] += at - self.since;
        self.since = at;
        self.finished = true;
    }

    /// Total time accumulated in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state >= N`.
    pub fn time_in(&self, state: usize) -> SimTime {
        self.total[state]
    }

    /// Sum of the residencies over all states.
    pub fn total_tracked(&self) -> SimTime {
        self.total.iter().fold(SimTime::ZERO, |acc, &t| acc + t)
    }
}

/// A latency histogram with logarithmic (power-of-two nanosecond) buckets.
///
/// Bucket `i` covers latencies in `[2^i, 2^(i+1))` nanoseconds, with bucket 0
/// additionally covering everything below 1 ns.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ps: u128,
    max: SimTime,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Number of logarithmic buckets (covers up to ~2^40 ns ≈ 18 minutes).
    pub const BUCKETS: usize = 40;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum_ps: 0,
            max: SimTime::ZERO,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        let ns = latency.as_ps() / 1_000;
        let idx = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ps += latency.as_ps() as u128;
        self.max = self.max.max(latency);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or `None` before any sample.
    pub fn mean(&self) -> Option<SimTime> {
        (self.count > 0).then(|| SimTime::from_ps((self.sum_ps / self.count as u128) as u64))
    }

    /// Maximum recorded latency.
    #[inline]
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// Approximate latency at quantile `q` in `[0, 1]`, resolved to bucket
    /// upper bounds. Returns `None` before any sample.
    pub fn quantile(&self, q: f64) -> Option<SimTime> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(SimTime::from_ns(1u64 << (i + 1)));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 11);
        assert_eq!(c.to_string(), "x = 11");
    }

    #[test]
    fn scalar_tracks_min_max_mean() {
        let mut s = Scalar::new();
        assert_eq!(s.mean(), None);
        for x in [2.0, 4.0, 6.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn residency_partitions_time() {
        let mut r = StateResidency::<3>::new(0, SimTime::from_ns(10));
        r.switch(2, SimTime::from_ns(30));
        r.switch(1, SimTime::from_ns(30)); // zero-length stay is fine
        r.finish(SimTime::from_ns(100));
        assert_eq!(r.time_in(0), SimTime::from_ns(20));
        assert_eq!(r.time_in(2), SimTime::ZERO);
        assert_eq!(r.time_in(1), SimTime::from_ns(70));
        assert_eq!(r.total_tracked(), SimTime::from_ns(90));
    }

    #[test]
    #[should_panic(expected = "going backwards")]
    fn residency_rejects_backwards_switch() {
        let mut r = StateResidency::<2>::new(0, SimTime::from_ns(10));
        r.switch(1, SimTime::from_ns(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn residency_rejects_bad_state() {
        let _ = StateResidency::<2>::new(2, SimTime::ZERO);
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.mean(), None);
        for ns in [10u64, 20, 30, 40] {
            h.record(SimTime::from_ns(ns));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(SimTime::from_ns(25)));
        assert_eq!(h.max(), SimTime::from_ns(40));
        // All samples are below 64 ns, so p100 resolves to a <=64 ns bucket.
        assert!(h.quantile(1.0).unwrap() <= SimTime::from_ns(64));
        assert!(h.quantile(0.0).is_some());
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn histogram_sub_ns_goes_to_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_ps(500));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).unwrap() >= SimTime::from_ps(500));
    }
}
