//! The discrete-event simulation engine.
//!
//! This is the reproduction's substitute for the commercial SystemC ESL
//! environment the paper used: components exchange timestamped messages
//! through a deterministic event queue; models are untimed at the transaction
//! level and annotate their own timing, exactly as the paper describes its
//! TLMs ("untimed transaction level models associated with separate timing
//! and power information").
//!
//! The engine is generic over the application's message type `M`, so each
//! simulation defines one message enum and any number of [`Component`]
//! implementations.

use core::fmt;
use std::sync::Arc;

use mcm_obs::Recorder;

use crate::queue::{EventQueue, QueuedEvent};
use crate::time::SimTime;
use crate::QueueKind;

/// Identifies a component registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// The raw index of this component in registration order.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component#{}", self.0)
    }
}

/// A simulation model: reacts to delivered messages and schedules new ones.
///
/// Components never hold references to each other; all interaction flows
/// through timestamped messages, which keeps the simulation deterministic
/// and the borrow checker satisfied.
pub trait Component<M> {
    /// Handles a message delivered at `ctx.now()`.
    fn handle(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// Short human-readable name used in traces and error messages.
    fn name(&self) -> &str {
        "component"
    }
}

/// Scheduling context handed to a component while it handles a message.
///
/// Messages scheduled through the context are committed to the event queue
/// when the handler returns.
pub struct Ctx<'a, M> {
    // (not Debug: holds a live outbox borrow; summarized manually below)
    now: SimTime,
    self_id: ComponentId,
    outbox: &'a mut Vec<(SimTime, ComponentId, M)>,
    stop: &'a mut bool,
}

impl<'a, M> fmt::Debug for Ctx<'a, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("self_id", &self.self_id)
            .field("pending_sends", &self.outbox.len())
            .finish()
    }
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently executing.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `to` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: events may not be
    /// scheduled in the past.
    pub fn send_at(&mut self, at: SimTime, to: ComponentId, msg: M) {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={}, at={}",
            self.now,
            at
        );
        self.outbox.push((at, to, msg));
    }

    /// Schedules `msg` for delivery to `to` after `delay`.
    pub fn send_after(&mut self, delay: SimTime, to: ComponentId, msg: M) {
        self.outbox.push((self.now + delay, to, msg));
    }

    /// Schedules `msg` for delivery to `to` at the current time (after all
    /// other events already queued for this time).
    pub fn send_now(&mut self, to: ComponentId, msg: M) {
        self.outbox.push((self.now, to, msg));
    }

    /// Schedules a message to this component itself after `delay`.
    pub fn wake_after(&mut self, delay: SimTime, msg: M) {
        let id = self.self_id;
        self.send_after(delay, id, msg);
    }

    /// Requests that the simulation stop once the current handler returns.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// Errors reported by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message was addressed to a component id that was never registered.
    UnknownComponent {
        /// The offending destination.
        id: ComponentId,
        /// Number of registered components.
        registered: usize,
    },
    /// The configured event budget was exhausted (runaway-simulation guard).
    EventBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownComponent { id, registered } => write!(
                f,
                "message addressed to {id}, but only {registered} components are registered"
            ),
            SimError::EventBudgetExhausted { budget } => {
                write!(f, "event budget of {budget} events exhausted")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A deterministic discrete-event simulation over message type `M`.
///
/// # Examples
///
/// A two-component ping/pong that stops after three exchanges:
///
/// ```
/// use mcm_sim::{Component, Ctx, Simulation, SimTime};
///
/// struct Ping { peer: Option<mcm_sim::ComponentId>, count: u32 }
///
/// impl Component<u32> for Ping {
///     fn handle(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
///         self.count += 1;
///         if self.count >= 3 {
///             ctx.request_stop();
///         } else if let Some(peer) = self.peer {
///             ctx.send_after(SimTime::from_ns(10), peer, msg + 1);
///         }
///     }
/// }
///
/// let mut sim = Simulation::new();
/// let a = sim.add_component(Ping { peer: None, count: 0 });
/// let b = sim.add_component(Ping { peer: Some(a), count: 0 });
/// sim.component_mut::<Ping>(a).unwrap().peer = Some(b);
/// sim.schedule(SimTime::ZERO, a, 0);
/// sim.run().unwrap();
/// assert!(sim.now() >= SimTime::ZERO);
/// ```
pub struct Simulation<M> {
    now: SimTime,
    queue: EventQueue<M>,
    components: Vec<Box<dyn ComponentObj<M>>>,
    next_seq: u64,
    events_fired: u64,
    event_budget: Option<u64>,
    outbox: Vec<(SimTime, ComponentId, M)>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl<M> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("components", &self.components.len())
            .field("pending_events", &self.queue.len())
            .field("events_fired", &self.events_fired)
            .finish()
    }
}

impl<M> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Simulation<M> {
    /// Creates an empty simulation at time zero with no event budget, using
    /// the default [`QueueKind::Calendar`] event queue.
    pub fn new() -> Self {
        Self::with_queue(QueueKind::default())
    }

    /// Creates an empty simulation backed by the given event-queue
    /// implementation. Both kinds deliver events in identical order; see
    /// [`QueueKind`].
    pub fn with_queue(kind: QueueKind) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(kind),
            components: Vec::new(),
            next_seq: 0,
            events_fired: 0,
            event_budget: None,
            outbox: Vec::new(),
            recorder: None,
        }
    }

    /// The event-queue implementation this simulation runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Attaches a recorder; every fired event reports the remaining queue
    /// depth through [`Recorder::record_sim_event`]. Without one, the
    /// kernel's hot path pays a single branch.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Limits the total number of events the simulation may fire; exceeding
    /// it makes [`Simulation::run`] return [`SimError::EventBudgetExhausted`].
    /// Useful as a runaway guard in tests.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
    }

    /// Registers a component and returns its id.
    pub fn add_component<C: Component<M> + 'static>(&mut self, c: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Box::new(c));
        id
    }

    /// Mutable access to a registered component, downcast to its concrete
    /// type. Returns `None` if the id is unknown or the type does not match.
    ///
    /// Intended for wiring before the run and for extracting results after
    /// it; during the run components interact through messages only.
    pub fn component_mut<C: Component<M> + 'static>(&mut self, id: ComponentId) -> Option<&mut C> {
        self.components
            .get_mut(id.0)
            .and_then(|b| b.as_any_mut().downcast_mut::<C>())
    }

    /// Current simulation time (the timestamp of the last fired event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an initial message from outside any component.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time.
    pub fn schedule(&mut self, at: SimTime, to: ComponentId, msg: M) {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueuedEvent { at, seq, to, msg });
    }

    /// Fires a single event. Returns `Ok(false)` when the queue is empty.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let Some(ev) = self.queue.pop() else {
            return Ok(false);
        };
        self.fire(ev)?;
        Ok(true)
    }

    /// Delivers one already-dequeued event.
    fn fire(&mut self, ev: QueuedEvent<M>) -> Result<(), SimError> {
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.events_fired += 1;
        if let Some(recorder) = &self.recorder {
            recorder.record_sim_event(self.queue.len() as u64, ev.at.as_ps());
        }
        if let Some(budget) = self.event_budget {
            if self.events_fired > budget {
                return Err(SimError::EventBudgetExhausted { budget });
            }
        }
        let n = self.components.len();
        let Some(component) = self.components.get_mut(ev.to.0) else {
            return Err(SimError::UnknownComponent {
                id: ev.to,
                registered: n,
            });
        };
        let mut stop = false;
        let mut ctx = Ctx {
            now: self.now,
            self_id: ev.to,
            outbox: &mut self.outbox,
            stop: &mut stop,
        };
        component.handle(ev.msg, &mut ctx);
        for (at, to, msg) in self.outbox.drain(..) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(QueuedEvent { at, seq, to, msg });
        }
        if stop {
            self.queue.clear();
        }
        Ok(())
    }

    /// Runs until the event queue drains, a component requests a stop, or an
    /// error occurs. Returns the final simulation time.
    pub fn run(&mut self) -> Result<SimTime, SimError> {
        while self.step()? {}
        Ok(self.now)
    }

    /// Runs until `deadline` (inclusive); events after it remain queued.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<SimTime, SimError> {
        while let Some(ev) = self.queue.pop_at_or_before(deadline) {
            self.fire(ev)?;
        }
        Ok(self.now)
    }
}

/// Internal object-safe combination of [`Component`] and `Any` access,
/// enabling [`Simulation::component_mut`]. Implemented automatically for
/// every `'static` component.
trait ComponentObj<M>: Component<M> {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<M, T: Component<M> + 'static> ComponentObj<M> for T {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Tick(u32),
    }

    struct Counter {
        fired_at: Vec<(SimTime, u32)>,
        reschedule: bool,
    }

    impl Component<Msg> for Counter {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            let Msg::Tick(n) = msg;
            self.fired_at.push((ctx.now(), n));
            if self.reschedule && n < 5 {
                ctx.wake_after(SimTime::from_ns(1), Msg::Tick(n + 1));
            }
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            fired_at: vec![],
            reschedule: false,
        });
        sim.schedule(SimTime::from_ns(30), c, Msg::Tick(3));
        sim.schedule(SimTime::from_ns(10), c, Msg::Tick(1));
        sim.schedule(SimTime::from_ns(20), c, Msg::Tick(2));
        sim.run().unwrap();
        let counter: &mut Counter = sim.component_mut(c).unwrap();
        let order: Vec<u32> = counter.fired_at.iter().map(|&(_, n)| n).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            fired_at: vec![],
            reschedule: false,
        });
        let t = SimTime::from_ns(5);
        for n in 0..10 {
            sim.schedule(t, c, Msg::Tick(n));
        }
        sim.run().unwrap();
        let counter: &mut Counter = sim.component_mut(c).unwrap();
        let order: Vec<u32> = counter.fired_at.iter().map(|&(_, n)| n).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rescheduling_advances_time() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            fired_at: vec![],
            reschedule: true,
        });
        sim.schedule(SimTime::ZERO, c, Msg::Tick(0));
        let end = sim.run().unwrap();
        assert_eq!(end, SimTime::from_ns(5));
        assert_eq!(sim.events_fired(), 6);
    }

    #[test]
    fn unknown_component_is_an_error() {
        let mut sim: Simulation<Msg> = Simulation::new();
        let bogus = ComponentId(42);
        sim.schedule(SimTime::ZERO, bogus, Msg::Tick(0));
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::UnknownComponent { .. }));
        assert!(err.to_string().contains("component#42"));
    }

    #[test]
    fn event_budget_guards_runaways() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            fired_at: vec![],
            reschedule: true,
        });
        sim.set_event_budget(3);
        sim.schedule(SimTime::ZERO, c, Msg::Tick(0));
        let err = sim.run().unwrap_err();
        assert_eq!(err, SimError::EventBudgetExhausted { budget: 3 });
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            fired_at: vec![],
            reschedule: false,
        });
        sim.schedule(SimTime::from_ns(10), c, Msg::Tick(1));
        sim.schedule(SimTime::from_ns(100), c, Msg::Tick(2));
        sim.run_until(SimTime::from_ns(50)).unwrap();
        assert_eq!(sim.pending_events(), 1);
        sim.run().unwrap();
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.now(), SimTime::from_ns(100));
    }

    #[test]
    fn recorder_sees_every_fired_event() {
        let recorder = Arc::new(mcm_obs::StatsRecorder::new());
        let mut sim = Simulation::new();
        let c = sim.add_component(Counter {
            fired_at: vec![],
            reschedule: true,
        });
        sim.set_recorder(recorder.clone());
        sim.schedule(SimTime::ZERO, c, Msg::Tick(0));
        sim.run().unwrap();
        let report = recorder.report();
        assert_eq!(report.kernel.events, sim.events_fired());
        assert_eq!(report.kernel.pending.count, sim.events_fired());
        // The self-rescheduling counter schedules its next tick only after
        // the current one fires, so the queue is empty at every fire.
        assert_eq!(report.kernel.pending.max, Some(0));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulation<Msg> = Simulation::new();
        let c = sim.add_component(Counter {
            fired_at: vec![],
            reschedule: false,
        });
        sim.schedule(SimTime::from_ns(10), c, Msg::Tick(1));
        sim.run().unwrap();
        sim.schedule(SimTime::from_ns(5), c, Msg::Tick(2));
    }
}
