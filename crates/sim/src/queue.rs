//! Pending-event storage for the simulation kernel.
//!
//! Two interchangeable implementations live behind [`EventQueue`]:
//!
//! * [`QueueKind::Calendar`] — a Brown-style calendar queue: events hash into
//!   power-of-two time buckets (`(at_ps >> shift) & mask`), so push and pop
//!   are O(1) amortized instead of the heap's O(log n). The bucket count and
//!   width adapt to the live event population with purely deterministic
//!   rules (no randomness, no wall-clock), and ties at the same timestamp
//!   are broken by scheduling sequence number, so delivery order is
//!   bit-identical to the binary heap's.
//! * [`QueueKind::BinaryHeap`] — the original `BinaryHeap<Reverse<…>>`
//!   ordering, kept selectable for parity tests and benchmarking.
//!
//! Both orderings deliver events by ascending `(at, seq)`; the parity tests
//! in `tests/queue_parity.rs` and the cross-engine suite in `mcm-core` hold
//! them to that contract.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;
use crate::ComponentId;

/// Queue entry; ordered by (time, sequence) so simultaneous events fire in
/// scheduling order — the engine is fully deterministic.
pub(crate) struct QueuedEvent<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) to: ComponentId,
    pub(crate) msg: M,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Selects the pending-event data structure used by a
/// [`Simulation`](crate::Simulation).
///
/// Both kinds deliver events in identical `(time, sequence)` order; the
/// calendar queue is the faster default, the binary heap is retained as the
/// reference ordering for parity tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Adaptive calendar queue with O(1) amortized push/pop (default).
    #[default]
    Calendar,
    /// The original `BinaryHeap<Reverse<…>>` with O(log n) operations.
    BinaryHeap,
}

/// Dispatch wrapper over the two queue implementations.
pub(crate) enum EventQueue<M> {
    Heap(BinaryHeap<Reverse<QueuedEvent<M>>>),
    Calendar(CalendarQueue<M>),
}

impl<M> EventQueue<M> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            QueueKind::BinaryHeap => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    pub(crate) fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Heap(_) => QueueKind::BinaryHeap,
            EventQueue::Calendar(_) => QueueKind::Calendar,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, ev: QueuedEvent<M>) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(ev)),
            EventQueue::Calendar(c) => c.push(ev),
        }
    }

    /// Removes and returns the earliest `(at, seq)` event.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<QueuedEvent<M>> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(ev)| ev),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    /// Removes and returns the earliest event iff its time is `<= deadline`;
    /// otherwise leaves the queue untouched.
    pub(crate) fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<QueuedEvent<M>> {
        match self {
            EventQueue::Heap(h) => {
                if matches!(h.peek(), Some(Reverse(ev)) if ev.at <= deadline) {
                    h.pop().map(|Reverse(ev)| ev)
                } else {
                    None
                }
            }
            EventQueue::Calendar(c) => c.pop_at_or_before(deadline),
        }
    }

    pub(crate) fn clear(&mut self) {
        match self {
            EventQueue::Heap(h) => h.clear(),
            EventQueue::Calendar(c) => c.clear(),
        }
    }
}

/// Smallest bucket count the calendar ever uses.
const MIN_BUCKETS: usize = 16;
/// Initial log2 bucket width in picoseconds (8192 ps ≈ a few DRAM cycles);
/// resizes re-derive it from the live event population.
const INITIAL_SHIFT: u32 = 13;

/// A deterministic adaptive calendar queue (R. Brown, CACM 1988).
///
/// Events with time `t` (in ps) live in bucket `(t >> shift) & mask`; a
/// "year" is `bucket_count << shift` ps. The only committed scan state is
/// `floor_ps`, a proven lower bound on every current *and future* event
/// time: it advances exactly to each popped event's timestamp, which is the
/// global minimum, and the engine never schedules events before the last
/// delivery time. Each pop hunts forward from the floor's bucket with local
/// cursors, so a declined conditional pop or a push "behind" a previous hunt
/// can never corrupt ordering.
pub(crate) struct CalendarQueue<M> {
    buckets: Vec<Vec<QueuedEvent<M>>>,
    /// `buckets.len() - 1`; the bucket count is always a power of two.
    mask: usize,
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    len: usize,
    /// Lower bound (ps) on all queued and future event times.
    floor_ps: u64,
}

impl<M> CalendarQueue<M> {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(MIN_BUCKETS);
        buckets.resize_with(MIN_BUCKETS, Vec::new);
        CalendarQueue {
            buckets,
            mask: MIN_BUCKETS - 1,
            shift: INITIAL_SHIFT,
            len: 0,
            floor_ps: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, at_ps: u64) -> usize {
        ((at_ps >> self.shift) as usize) & self.mask
    }

    fn push(&mut self, ev: QueuedEvent<M>) {
        debug_assert!(ev.at.as_ps() >= self.floor_ps, "push below queue floor");
        let b = self.bucket_of(ev.at.as_ps());
        self.buckets[b].push(ev);
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent<M>> {
        let (b, i) = self.locate_min()?;
        self.take(b, i)
    }

    fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<QueuedEvent<M>> {
        let (b, i) = self.locate_min()?;
        if self.buckets[b][i].at > deadline {
            return None;
        }
        self.take(b, i)
    }

    fn take(&mut self, b: usize, i: usize) -> Option<QueuedEvent<M>> {
        let ev = self.buckets[b].swap_remove(i);
        self.len -= 1;
        // The removed event is the global minimum, and the engine never
        // schedules before the last delivered time, so its timestamp is a
        // sound new floor.
        self.floor_ps = ev.at.as_ps();
        let n = self.buckets.len();
        if n > MIN_BUCKETS && self.len * 2 < n {
            self.resize(n / 2);
        }
        Some(ev)
    }

    /// Finds the earliest `(at, seq)` event and returns its (bucket, index)
    /// without removing it or mutating any state.
    fn locate_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let width = 1u64 << self.shift;
        let mut cur = self.bucket_of(self.floor_ps);
        let mut top = ((self.floor_ps >> self.shift) << self.shift).saturating_add(width);
        // Scan at most one full year bucket-by-bucket; each step only looks
        // at events belonging to the current year (at < top).
        for _ in 0..self.buckets.len() {
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, ev) in self.buckets[cur].iter().enumerate() {
                if ev.at.as_ps() < top {
                    let key = (ev.at, ev.seq);
                    if best.is_none_or(|(_, at, seq)| key < (at, seq)) {
                        best = Some((i, ev.at, ev.seq));
                    }
                }
            }
            if let Some((i, _, _)) = best {
                return Some((cur, i));
            }
            cur = (cur + 1) & self.mask;
            top = top.saturating_add(width);
        }
        // Sparse tail: nothing within a whole year of the floor. Fall back
        // to a direct global-minimum search.
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, ev) in bucket.iter().enumerate() {
                let key = (ev.at, ev.seq);
                if best.is_none_or(|(_, _, at, seq)| key < (at, seq)) {
                    best = Some((b, i, ev.at, ev.seq));
                }
            }
        }
        let (b, i, _, _) = best.expect("len > 0 but no event found");
        Some((b, i))
    }

    /// Rebuilds with `new_count` buckets and a bucket width re-derived from
    /// the live population's time span — entirely deterministic.
    fn resize(&mut self, new_count: usize) {
        let mut events: Vec<QueuedEvent<M>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            events.append(bucket);
        }
        debug_assert_eq!(events.len(), self.len);
        if events.len() > 1 {
            let min = events.iter().map(|e| e.at.as_ps()).min().unwrap();
            let max = events.iter().map(|e| e.at.as_ps()).max().unwrap();
            if max > min {
                // Aim for ~4 average inter-event gaps per bucket.
                let gap = ((max - min) / events.len() as u64).max(1);
                let width = gap.saturating_mul(4);
                self.shift = (63 - width.leading_zeros()).clamp(6, 44);
            }
        }
        self.buckets.clear();
        self.buckets.resize_with(new_count, Vec::new);
        self.mask = new_count - 1;
        for ev in events {
            let b = ((ev.at.as_ps() >> self.shift) as usize) & self.mask;
            self.buckets[b].push(ev);
        }
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ps: u64, seq: u64) -> QueuedEvent<u32> {
        QueuedEvent {
            at: SimTime::from_ps(at_ps),
            seq,
            to: ComponentId(0),
            msg: seq as u32,
        }
    }

    fn drain<M>(q: &mut EventQueue<M>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.at.as_ps(), e.seq));
        }
        out
    }

    #[test]
    fn calendar_matches_heap_on_mixed_schedule() {
        let mut cal = EventQueue::new(QueueKind::Calendar);
        let mut heap = EventQueue::new(QueueKind::BinaryHeap);
        // Deterministic pseudo-random schedule: clustered, duplicate, and
        // far-future timestamps.
        let mut x = 0x2545f4914f6cdd1du64;
        let mut seq = 0u64;
        for round in 0..5u64 {
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let at = round * 1_000_000 + (x % 50_000);
                cal.push(ev(at, seq));
                heap.push(ev(at, seq));
                seq += 1;
            }
            // Same-timestamp burst: FIFO tiebreak must hold.
            for _ in 0..20 {
                let at = round * 1_000_000 + 777;
                cal.push(ev(at, seq));
                heap.push(ev(at, seq));
                seq += 1;
            }
        }
        // One event a long "year" away to exercise the sparse-tail search.
        cal.push(ev(u64::MAX / 2, seq));
        heap.push(ev(u64::MAX / 2, seq));
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut cal = EventQueue::new(QueueKind::Calendar);
        let mut heap = EventQueue::new(QueueKind::BinaryHeap);
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut cal_out = Vec::new();
        let mut heap_out = Vec::new();
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Push 0–2 events at or after `now`, then pop one.
            for _ in 0..(x % 3) {
                let at = now + (x % 10_000);
                cal.push(ev(at, seq));
                heap.push(ev(at, seq));
                seq += 1;
            }
            if let Some(e) = cal.pop() {
                now = e.at.as_ps();
                cal_out.push((e.at.as_ps(), e.seq));
            }
            if let Some(e) = heap.pop() {
                heap_out.push((e.at.as_ps(), e.seq));
            }
        }
        cal_out.extend(drain(&mut cal));
        heap_out.extend(drain(&mut heap));
        assert_eq!(cal_out, heap_out);
    }

    #[test]
    fn pop_at_or_before_respects_deadline() {
        for kind in [QueueKind::Calendar, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            q.push(ev(100, 0));
            q.push(ev(200, 1));
            assert!(q.pop_at_or_before(SimTime::from_ps(50)).is_none());
            assert_eq!(q.len(), 2);
            let e = q.pop_at_or_before(SimTime::from_ps(150)).unwrap();
            assert_eq!((e.at.as_ps(), e.seq), (100, 0));
            assert!(q.pop_at_or_before(SimTime::from_ps(150)).is_none());
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn grow_and_shrink_preserve_order() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        for seq in 0..10_000u64 {
            q.push(ev(seq * 17 % 4096, seq));
        }
        assert_eq!(q.len(), 10_000);
        let drained = drain(&mut q);
        let mut expect = drained.clone();
        expect.sort();
        assert_eq!(drained, expect);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn clear_empties_queue() {
        for kind in [QueueKind::Calendar, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            for seq in 0..100 {
                q.push(ev(seq, seq));
            }
            q.clear();
            assert_eq!(q.len(), 0);
            assert!(q.pop().is_none());
            assert_eq!(q.kind(), kind);
        }
    }
}
