//! Optional command/event tracing.
//!
//! Models push [`TraceRecord`]s into a [`Tracer`]; the tracer either drops
//! them (disabled — the default, zero allocation on the hot path) or retains
//! the most recent `capacity` records in a ring buffer for post-mortem
//! inspection in tests and debugging sessions.

use std::collections::VecDeque;

use crate::time::SimTime;

/// One traced occurrence: a timestamped, labelled event with an optional
/// numeric payload (e.g. an address or a bank index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event occurred.
    pub at: SimTime,
    /// Which model produced it (static label, e.g. `"ch0.ctrl"`).
    pub source: &'static str,
    /// What happened (static label, e.g. `"ACT"`).
    pub kind: &'static str,
    /// Free-form payload (address, bank, row…).
    pub detail: u64,
}

/// A bounded trace sink.
///
/// # Examples
///
/// ```
/// use mcm_sim::trace::Tracer;
/// use mcm_sim::SimTime;
///
/// let mut t = Tracer::enabled(2);
/// t.record(SimTime::from_ns(1), "ctrl", "ACT", 3);
/// t.record(SimTime::from_ns(2), "ctrl", "RD", 3);
/// t.record(SimTime::from_ns(3), "ctrl", "PRE", 3);
/// // Capacity 2: the oldest record was evicted.
/// assert_eq!(t.records().len(), 2);
/// assert_eq!(t.records()[0].kind, "RD");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<VecDeque<TraceRecord>>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer: all records are discarded without allocation.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer retaining the last `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be non-zero");
        Tracer {
            buf: Some(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether records are being retained.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, at: SimTime, source: &'static str, kind: &'static str, detail: u64) {
        if let Some(buf) = &mut self.buf {
            if buf.len() == self.capacity {
                buf.pop_front();
                self.dropped += 1;
            }
            buf.push_back(TraceRecord {
                at,
                source,
                kind,
                detail,
            });
        }
    }

    /// The retained records, oldest first. Empty when disabled.
    pub fn records(&self) -> Vec<&TraceRecord> {
        match &self.buf {
            Some(buf) => buf.iter().collect(),
            None => Vec::new(),
        }
    }

    /// Number of records evicted due to the capacity bound.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records of a given kind, oldest first.
    pub fn records_of_kind(&self, kind: &str) -> Vec<&TraceRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.kind == kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_drops_everything() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, "a", "X", 0);
        assert!(!t.is_enabled());
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::enabled(3);
        for i in 0..5 {
            t.record(SimTime::from_ns(i), "src", "K", i);
        }
        let recs = t.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].detail, 2);
        assert_eq!(recs[2].detail, 4);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn filter_by_kind() {
        let mut t = Tracer::enabled(10);
        t.record(SimTime::ZERO, "src", "ACT", 1);
        t.record(SimTime::ZERO, "src", "RD", 2);
        t.record(SimTime::ZERO, "src", "ACT", 3);
        let acts = t.records_of_kind("ACT");
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[1].detail, 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Tracer::enabled(0);
    }
}
