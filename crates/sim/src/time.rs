//! Simulation time, frequency and clock-domain arithmetic.
//!
//! The kernel measures time in integer **picoseconds** ([`SimTime`]), which is
//! fine enough to represent every interface clock the paper's DDR2-range
//! next-generation mobile DDR SDRAM can use (200–533 MHz, i.e. periods of
//! 5000 ps down to ~1876 ps) without cumulative rounding error: cycle indices
//! are converted to absolute times with a multiply-then-divide in 128-bit
//! arithmetic instead of accumulating a rounded period.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute simulation time or a duration, in picoseconds.
///
/// `SimTime` is a transparent newtype over `u64`; the full range covers about
/// 213 days of simulated time, far beyond the per-frame horizons simulated
/// here (tens of milliseconds).
///
/// # Examples
///
/// ```
/// use mcm_sim::SimTime;
///
/// let t = SimTime::from_ns(5) + SimTime::from_ps(250);
/// assert_eq!(t.as_ps(), 5_250);
/// assert!(t < SimTime::from_us(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero (also the default value).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_s(s: u64) -> Self {
        SimTime(s * PS_PER_S)
    }

    /// Creates a time from a floating-point nanosecond value, rounding to the
    /// nearest picosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        SimTime((ns * PS_PER_NS as f64).round().max(0.0) as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds (lossy).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time in microseconds (lossy).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time in milliseconds (lossy).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Time in seconds (lossy).
    #[inline]
    pub fn as_s_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0 s")
        } else if ps < PS_PER_NS {
            write!(f, "{ps} ps")
        } else if ps < PS_PER_US {
            write!(f, "{:.3} ns", self.as_ns_f64())
        } else if ps < PS_PER_MS {
            write!(f, "{:.3} us", self.as_us_f64())
        } else if ps < PS_PER_S {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else {
            write!(f, "{:.3} s", self.as_s_f64())
        }
    }
}

/// A clock frequency in integer hertz.
///
/// # Examples
///
/// ```
/// use mcm_sim::Frequency;
///
/// let f = Frequency::from_mhz(400);
/// assert_eq!(f.as_hz(), 400_000_000);
/// assert_eq!(f.period().as_ps(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from hertz. Zero is permitted at construction but
    /// rejected by [`ClockDomain::new`].
    #[inline]
    pub const fn from_hz(hz: u64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from kilohertz.
    #[inline]
    pub const fn from_khz(khz: u64) -> Self {
        Frequency(khz * 1_000)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: u64) -> Self {
        Frequency(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: u64) -> Self {
        Frequency(ghz * 1_000_000_000)
    }

    /// Frequency in hertz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Frequency in megahertz (lossy).
    #[inline]
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Nominal clock period, rounded to the nearest picosecond.
    ///
    /// Use [`ClockDomain`] when converting *cycle counts* to times; this
    /// rounded period is only for display and coarse estimates.
    #[inline]
    pub fn period(self) -> SimTime {
        assert!(self.0 > 0, "period of a zero frequency");
        SimTime::from_ps(((PS_PER_S as u128 + (self.0 / 2) as u128) / self.0 as u128) as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(100_000_000) {
            write!(f, "{:.1} GHz", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{} MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

/// Error returned when constructing a [`ClockDomain`] from a zero frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroFrequencyError;

impl fmt::Display for ZeroFrequencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clock domain frequency must be non-zero")
    }
}

impl std::error::Error for ZeroFrequencyError {}

/// Exact cycle-count ↔ time conversion for one clock.
///
/// All conversions compute `cycles * 10^12 / f` in 128-bit arithmetic so that
/// cycle N of a 533 MHz clock lands on the mathematically correct picosecond
/// regardless of N; there is no accumulated drift from a rounded period.
///
/// DDR devices transfer data on both clock edges; [`ClockDomain::time_of_half_cycles`]
/// provides half-cycle resolution for bus-occupancy bookkeeping.
///
/// # Examples
///
/// ```
/// use mcm_sim::{ClockDomain, Frequency, SimTime};
///
/// let clk = ClockDomain::new(Frequency::from_mhz(533)).unwrap();
/// // 533 million cycles land exactly on the 1-second boundary.
/// assert_eq!(clk.time_of_cycles(533_000_000), SimTime::from_s(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    freq: Frequency,
    /// Clock period in whole picoseconds when the frequency divides 10^12
    /// evenly (e.g. 400 MHz → 2500 ps), else 0. Caching it turns the hot
    /// cycle↔time conversions into single u64 multiplies/divides instead of
    /// 128-bit divisions, with bit-identical results.
    exact_period_ps: u64,
}

impl ClockDomain {
    /// Creates a clock domain. Fails on a zero frequency.
    pub fn new(freq: Frequency) -> Result<Self, ZeroFrequencyError> {
        if freq.as_hz() == 0 {
            Err(ZeroFrequencyError)
        } else {
            let hz = freq.as_hz();
            let exact_period_ps = if PS_PER_S.is_multiple_of(hz) {
                PS_PER_S / hz
            } else {
                0
            };
            Ok(ClockDomain {
                freq,
                exact_period_ps,
            })
        }
    }

    /// The domain's frequency.
    #[inline]
    pub fn frequency(self) -> Frequency {
        self.freq
    }

    /// Nominal period (rounded); see [`Frequency::period`].
    #[inline]
    pub fn period(self) -> SimTime {
        self.freq.period()
    }

    /// Absolute time of cycle index `cycles` (cycle 0 is at time 0),
    /// rounded to the nearest picosecond.
    #[inline]
    pub fn time_of_cycles(self, cycles: u64) -> SimTime {
        if self.exact_period_ps != 0 {
            // Wrapping multiply matches the `as u64` truncation of the
            // general path for (absurd) cycle counts beyond SimTime's range.
            return SimTime::from_ps(cycles.wrapping_mul(self.exact_period_ps));
        }
        let hz = self.freq.as_hz() as u128;
        let ps = (cycles as u128 * PS_PER_S as u128 + hz / 2) / hz;
        SimTime::from_ps(ps as u64)
    }

    /// Absolute time of half-cycle index `half_cycles` (two half-cycles per
    /// clock cycle; DDR data beats occupy one half-cycle each).
    #[inline]
    pub fn time_of_half_cycles(self, half_cycles: u64) -> SimTime {
        if self.exact_period_ps != 0 && self.exact_period_ps & 1 == 0 {
            return SimTime::from_ps(half_cycles.wrapping_mul(self.exact_period_ps >> 1));
        }
        let hz2 = 2 * self.freq.as_hz() as u128;
        let ps = (half_cycles as u128 * PS_PER_S as u128 + hz2 / 2) / hz2;
        SimTime::from_ps(ps as u64)
    }

    /// Number of whole cycles that have *completed* by time `t`
    /// (i.e. `floor(t / period)` computed exactly).
    #[inline]
    pub fn cycles_at(self, t: SimTime) -> u64 {
        if let Some(cycles) = t.as_ps().checked_div(self.exact_period_ps) {
            return cycles;
        }
        let hz = self.freq.as_hz() as u128;
        ((t.as_ps() as u128 * hz) / PS_PER_S as u128) as u64
    }

    /// Smallest cycle index whose edge is at or after `t`
    /// (i.e. `ceil(t / period)` computed exactly).
    #[inline]
    pub fn cycles_ceil(self, t: SimTime) -> u64 {
        if self.exact_period_ps != 0 {
            return t.as_ps().div_ceil(self.exact_period_ps);
        }
        let hz = self.freq.as_hz() as u128;
        let num = t.as_ps() as u128 * hz;
        let den = PS_PER_S as u128;
        num.div_ceil(den) as u64
    }

    /// Converts a duration given in nanoseconds to a whole number of cycles,
    /// rounding up — the standard "analog parameter to cycle count"
    /// conversion used for DRAM timing constraints like tRCD = 15 ns.
    #[inline]
    pub fn ns_to_cycles_ceil(self, ns: f64) -> u64 {
        assert!(ns >= 0.0, "negative duration");
        let cycles = ns * 1e-9 * self.freq.as_hz() as f64;
        // Guard against representation noise pushing an exact multiple up.
        let rounded = cycles.round();
        if (cycles - rounded).abs() < 1e-9 {
            rounded as u64
        } else {
            cycles.ceil() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_s(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ps(), 14_000);
        assert_eq!((a - b).as_ps(), 6_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_ns(6)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
    }

    #[test]
    fn simtime_display_uses_natural_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0 s");
        assert_eq!(SimTime::from_ps(500).to_string(), "500 ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5.000 ns");
        assert_eq!(SimTime::from_ms(33).to_string(), "33.000 ms");
    }

    #[test]
    fn from_ns_f64_rounds_and_clamps() {
        assert_eq!(SimTime::from_ns_f64(1.0004).as_ps(), 1_000);
        assert_eq!(SimTime::from_ns_f64(1.0006).as_ps(), 1_001);
        assert_eq!(SimTime::from_ns_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn frequency_period_rounds() {
        assert_eq!(Frequency::from_mhz(200).period(), SimTime::from_ps(5_000));
        assert_eq!(Frequency::from_mhz(400).period(), SimTime::from_ps(2_500));
        // 533 MHz -> 1876.17 ps, rounds to 1876.
        assert_eq!(Frequency::from_mhz(533).period(), SimTime::from_ps(1_876));
    }

    #[test]
    fn frequency_display() {
        assert_eq!(Frequency::from_mhz(400).to_string(), "400 MHz");
        assert_eq!(Frequency::from_ghz(2).to_string(), "2.0 GHz");
        assert_eq!(Frequency::from_hz(999).to_string(), "999 Hz");
    }

    #[test]
    fn clock_domain_rejects_zero() {
        assert!(ClockDomain::new(Frequency::from_hz(0)).is_err());
        let err = ClockDomain::new(Frequency::from_hz(0)).unwrap_err();
        assert!(err.to_string().contains("non-zero"));
    }

    #[test]
    fn cycle_conversion_is_exact_over_long_spans() {
        let clk = ClockDomain::new(Frequency::from_mhz(533)).unwrap();
        assert_eq!(clk.time_of_cycles(533_000_000), SimTime::from_s(1));
        // No drift: cycle-by-cycle deltas are within 1 ps of each other.
        let t1 = clk.time_of_cycles(1_000_000);
        let t2 = clk.time_of_cycles(1_000_001);
        let delta = (t2 - t1).as_ps();
        assert!((1_875..=1_877).contains(&delta), "delta = {delta}");
    }

    #[test]
    fn half_cycles_are_half() {
        let clk = ClockDomain::new(Frequency::from_mhz(400)).unwrap();
        assert_eq!(clk.time_of_half_cycles(2), clk.time_of_cycles(1));
        assert_eq!(clk.time_of_half_cycles(1), SimTime::from_ps(1_250));
    }

    #[test]
    fn cycles_at_and_ceil_are_floor_and_ceil() {
        let clk = ClockDomain::new(Frequency::from_mhz(400)).unwrap(); // 2500 ps
        assert_eq!(clk.cycles_at(SimTime::from_ps(2_499)), 0);
        assert_eq!(clk.cycles_at(SimTime::from_ps(2_500)), 1);
        assert_eq!(clk.cycles_ceil(SimTime::from_ps(2_499)), 1);
        assert_eq!(clk.cycles_ceil(SimTime::from_ps(2_500)), 1);
        assert_eq!(clk.cycles_ceil(SimTime::from_ps(2_501)), 2);
    }

    #[test]
    fn ns_to_cycles_ceil_matches_ddr_practice() {
        let clk = ClockDomain::new(Frequency::from_mhz(200)).unwrap(); // 5 ns
        assert_eq!(clk.ns_to_cycles_ceil(15.0), 3); // tRCD 15 ns = 3 ck
        assert_eq!(clk.ns_to_cycles_ceil(15.1), 4);
        let clk400 = ClockDomain::new(Frequency::from_mhz(400)).unwrap();
        assert_eq!(clk400.ns_to_cycles_ceil(15.0), 6);
        assert_eq!(clk400.ns_to_cycles_ceil(0.0), 0);
    }
}
