//! Property tests for the simulation kernel: delivery order, determinism,
//! and clock-conversion round trips.

use mcm_sim::{ClockDomain, Component, Ctx, Frequency, SimTime, Simulation};
use proptest::prelude::*;

struct Recorder {
    seen: Vec<(SimTime, u64)>,
}

impl Component<u64> for Recorder {
    fn handle(&mut self, msg: u64, ctx: &mut Ctx<'_, u64>) {
        self.seen.push((ctx.now(), msg));
    }
}

proptest! {
    #[test]
    fn events_always_fire_in_nondecreasing_time_order(
        times in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut sim = Simulation::new();
        let c = sim.add_component(Recorder { seen: vec![] });
        for (i, &t) in times.iter().enumerate() {
            sim.schedule(SimTime::from_ps(t), c, i as u64);
        }
        sim.run().unwrap();
        let rec: &mut Recorder = sim.component_mut(c).unwrap();
        prop_assert_eq!(rec.seen.len(), times.len());
        for w in rec.seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
        }
        // Ties break in scheduling order.
        for w in rec.seen.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke out of order");
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(
        times in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let run = || {
            let mut sim = Simulation::new();
            let c = sim.add_component(Recorder { seen: vec![] });
            for (i, &t) in times.iter().enumerate() {
                sim.schedule(SimTime::from_ps(t), c, i as u64);
            }
            sim.run().unwrap();
            let rec: &mut Recorder = sim.component_mut(c).unwrap();
            rec.seen.clone()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn clock_conversions_round_trip(
        mhz in 100u64..2_000,
        cycles in 0u64..1_000_000_000,
    ) {
        let clk = ClockDomain::new(Frequency::from_mhz(mhz)).unwrap();
        let t = clk.time_of_cycles(cycles);
        // cycles_at(time_of(n)) is n or n-1 (edge rounding), never more.
        let back = clk.cycles_at(t);
        prop_assert!(back == cycles || back + 1 == cycles, "{cycles} -> {t} -> {back}");
        // ceil is always >= floor, by at most 1.
        let ceil = clk.cycles_ceil(t);
        prop_assert!(ceil >= back && ceil - back <= 1);
    }

    #[test]
    fn cycle_times_are_strictly_monotone(
        mhz in 100u64..2_000,
        n in 0u64..1_000_000,
    ) {
        let clk = ClockDomain::new(Frequency::from_mhz(mhz)).unwrap();
        prop_assert!(clk.time_of_cycles(n) < clk.time_of_cycles(n + 1));
        prop_assert!(clk.time_of_half_cycles(2 * n) == clk.time_of_cycles(n));
    }

    #[test]
    fn ns_to_cycles_ceil_is_sufficient(
        mhz in 100u64..2_000,
        ns_tenths in 0u64..10_000,
    ) {
        // The cycle count returned must span at least the requested time.
        let ns = ns_tenths as f64 / 10.0;
        let clk = ClockDomain::new(Frequency::from_mhz(mhz)).unwrap();
        let cycles = clk.ns_to_cycles_ceil(ns);
        let spanned = clk.time_of_cycles(cycles).as_ns_f64();
        prop_assert!(spanned + 1e-6 >= ns, "{cycles} cycles = {spanned} ns < {ns} ns");
    }
}
