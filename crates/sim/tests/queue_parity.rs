//! Parity: the calendar queue and the legacy binary heap must deliver
//! identical event sequences — same times, same payloads, same tiebreaks.

use mcm_sim::{Component, Ctx, QueueKind, SimTime, Simulation};
use proptest::prelude::*;

/// Records every delivery and optionally re-schedules follow-up events,
/// exercising mid-run pushes at and after the current time.
struct Echo {
    seen: Vec<(SimTime, u64)>,
    fanout: u32,
}

impl Component<u64> for Echo {
    fn handle(&mut self, msg: u64, ctx: &mut Ctx<'_, u64>) {
        self.seen.push((ctx.now(), msg));
        if self.fanout > 0 && msg.is_multiple_of(7) && msg > 0 {
            for k in 0..self.fanout as u64 {
                // A same-time event and a short- and long-horizon event.
                ctx.send_now(ctx.self_id(), msg.wrapping_mul(1_000).wrapping_add(k));
                ctx.send_after(
                    SimTime::from_ps(13 + k),
                    ctx.self_id(),
                    msg.wrapping_mul(1_000).wrapping_add(100 + k),
                );
                ctx.send_after(
                    SimTime::from_us(3),
                    ctx.self_id(),
                    msg.wrapping_mul(1_000).wrapping_add(200 + k),
                );
            }
            self.fanout -= 1;
        }
    }
}

fn run_with(kind: QueueKind, times: &[u64], fanout: u32) -> Vec<(SimTime, u64)> {
    let mut sim = Simulation::with_queue(kind);
    assert_eq!(sim.queue_kind(), kind);
    let c = sim.add_component(Echo {
        seen: vec![],
        fanout,
    });
    for (i, &t) in times.iter().enumerate() {
        sim.schedule(SimTime::from_ps(t), c, i as u64);
    }
    sim.run().unwrap();
    sim.component_mut::<Echo>(c).unwrap().seen.clone()
}

#[test]
fn identical_delivery_on_dense_schedule() {
    let times: Vec<u64> = (0..3_000u64)
        .map(|i| (i * 2_654_435_761) % 250_000)
        .collect();
    assert_eq!(
        run_with(QueueKind::Calendar, &times, 40),
        run_with(QueueKind::BinaryHeap, &times, 40)
    );
}

#[test]
fn identical_delivery_with_run_until_windows() {
    for kind in [QueueKind::Calendar, QueueKind::BinaryHeap] {
        let mut sim = Simulation::with_queue(kind);
        let c = sim.add_component(Echo {
            seen: vec![],
            fanout: 5,
        });
        for i in 0..100u64 {
            sim.schedule(SimTime::from_ps(i * 997 % 10_000), c, i);
        }
        // Advance in uneven windows; events past each deadline stay queued.
        for deadline_ns in [1u64, 2, 5, 9, 10_000] {
            sim.run_until(SimTime::from_ns(deadline_ns)).unwrap();
        }
        sim.run().unwrap();
        let seen = sim.component_mut::<Echo>(c).unwrap().seen.clone();
        // Compare against a plain run on the heap.
        let mut reference = Simulation::with_queue(QueueKind::BinaryHeap);
        let r = reference.add_component(Echo {
            seen: vec![],
            fanout: 5,
        });
        for i in 0..100u64 {
            reference.schedule(SimTime::from_ps(i * 997 % 10_000), r, i);
        }
        reference.run().unwrap();
        let expect = reference.component_mut::<Echo>(r).unwrap().seen.clone();
        assert_eq!(seen, expect, "queue kind {kind:?} diverged");
    }
}

proptest! {
    #[test]
    fn queues_never_diverge(
        times in prop::collection::vec(0u64..2_000_000, 1..300),
        fanout in 0u32..20,
    ) {
        prop_assert_eq!(
            run_with(QueueKind::Calendar, &times, fanout),
            run_with(QueueKind::BinaryHeap, &times, fanout)
        );
    }
}
