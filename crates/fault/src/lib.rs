//! `mcm-fault`: deterministic, seed-driven fault injection and
//! graceful-degradation plans for the multi-channel memory subsystem.
//!
//! The paper argues a multi-channel memory can sustain the Table I load;
//! a production camera must also answer what happens when part of that
//! memory *stops* holding up. This crate describes such failures as data:
//! a [`FaultPlan`] is a serde-serializable list of [`FaultSpec`]s plus a
//! [`DegradePolicy`], keyed by the `u64` seed that generated it so sweep
//! cache fingerprints stay stable. The plan carries no behaviour of its
//! own — the channel subsystem, controller and core interpret it:
//!
//! * **Channel loss** ([`FaultSpec::ChannelLoss`]): a channel is dead for
//!   the whole run; survivors are re-interleaved to cover the address
//!   space.
//! * **Flaky channel** ([`FaultSpec::FlakyChannel`]): periodic
//!   unavailability windows; requests retry with backoff and remap to a
//!   surviving neighbour when retries run out.
//! * **Slow bank** ([`FaultSpec::SlowBank`]): degraded tRCD/tRP on one
//!   bank (stuck/slow rows).
//! * **Refresh pressure** ([`FaultSpec::RefreshPressure`]): the refresh
//!   interval divided by a factor — a retention/thermal proxy.
//! * **Controller stall** ([`FaultSpec::CtrlStall`]): periodic windows in
//!   which the controller accepts no new requests.
//!
//! Degradation outcomes (shed stages, retry/remap counts, effective frame
//! rate) are reported through [`DegradeSummary`], and the canonical
//! load-shedding order is [`SHED_PRIORITY`]: viewfinder/display stages
//! drop before encoder reference traffic, never the capture path.

#![deny(missing_docs)]

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Error raised when a plan is malformed for the subsystem it is applied
/// to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A fault names a channel the subsystem does not have.
    BadChannel {
        /// The out-of-range channel.
        channel: u32,
        /// How many channels the subsystem has.
        channels: u32,
    },
    /// The plan is inconsistent (empty windows, zero divisors, …).
    BadPlan {
        /// Human-readable reason.
        reason: String,
    },
    /// Every channel is lost; nothing can degrade gracefully.
    AllChannelsLost,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadChannel { channel, channels } => {
                write!(f, "fault names channel {channel}, subsystem has {channels}")
            }
            FaultError::BadPlan { reason } => write!(f, "bad fault plan: {reason}"),
            FaultError::AllChannelsLost => write!(f, "fault plan loses every channel"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A periodic unavailability window on the interface clock: cycles `c`
/// with `(c + phase) % period < down` are inside a down window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window period, interface-clock cycles.
    pub period: u64,
    /// Down time at the start of each period, cycles (`< period`).
    pub down: u64,
    /// Phase offset, cycles.
    pub phase: u64,
}

impl WindowSpec {
    /// Whether `cycle` falls inside a down window.
    pub fn is_down(&self, cycle: u64) -> bool {
        self.period > 0
            && self.down > 0
            && (cycle.wrapping_add(self.phase)) % self.period < self.down
    }

    /// First cycle at or after `cycle` outside a down window. Monotone in
    /// `cycle`, so arrival adjustment through it preserves FCFS order.
    pub fn next_up(&self, cycle: u64) -> u64 {
        if !self.is_down(cycle) {
            return cycle;
        }
        let into = (cycle.wrapping_add(self.phase)) % self.period;
        cycle + (self.down - into)
    }

    /// Fraction of time the window is up, in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        if self.period == 0 {
            return 1.0;
        }
        1.0 - self.down.min(self.period) as f64 / self.period as f64
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// The channel is dead for the whole run.
    ChannelLoss {
        /// The lost channel.
        channel: u32,
    },
    /// The channel is periodically unavailable.
    FlakyChannel {
        /// The flaky channel.
        channel: u32,
        /// The unavailability window.
        window: WindowSpec,
    },
    /// One bank responds slowly: extra cycles on row activate and
    /// precharge (stuck/slow rows).
    SlowBank {
        /// The channel whose device degrades.
        channel: u32,
        /// The slow bank.
        bank: u32,
        /// Extra tRCD cycles.
        extra_trcd: u64,
        /// Extra tRP cycles.
        extra_trp: u64,
    },
    /// Elevated refresh rate: the refresh interval is divided by this
    /// factor on every channel (retention/thermal proxy).
    RefreshPressure {
        /// tREFI divisor (≥ 2 to have any effect).
        divisor: u64,
    },
    /// The channel's controller periodically accepts no new requests.
    CtrlStall {
        /// The stalling channel.
        channel: u32,
        /// The stall window.
        window: WindowSpec,
    },
}

/// How the subsystem degrades when faults bite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradePolicy {
    /// Retry attempts before a flaky-window request remaps to a surviving
    /// neighbour channel.
    pub max_retries: u32,
    /// Base backoff between retries, interface-clock cycles (attempt `k`
    /// waits `k × backoff_cycles`).
    pub backoff_cycles: u64,
    /// Load-shedding target: shed stages until the planned frame traffic
    /// fits this percentage of the degraded sustainable byte budget.
    pub shed_target_pct: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            max_retries: 3,
            backoff_cycles: 64,
            shed_target_pct: 70,
        }
    }
}

/// Canonical load-shedding order, first-to-shed first, by Table I row
/// label. Viewfinder/display stages go before encoder reference traffic;
/// the capture path (camera, preprocessing, demosaic), audio and the
/// container/media path are never shed — dropping them would corrupt the
/// recording rather than degrade it.
pub const SHED_PRIORITY: [&str; 5] = [
    "DisplayCtrl",
    "Scaling to display",
    "Post proc & digizoom",
    "Video stabilization",
    "Video encoder",
];

/// A complete, deterministic fault scenario.
///
/// The `seed` is part of the plan's identity: two plans generated from the
/// same seed are equal, serialize identically, and therefore hit the same
/// sweep cache entries.
///
/// # Examples
///
/// ```
/// use mcm_fault::FaultPlan;
///
/// let plan = FaultPlan::seeded(7, 4).unwrap();
/// assert_eq!(plan, FaultPlan::seeded(7, 4).unwrap()); // deterministic
/// assert!(plan.validate(4).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed this plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The injected faults.
    pub faults: Vec<FaultSpec>,
    /// How the subsystem degrades in response.
    pub policy: DegradePolicy,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a sweep-axis baseline).
    pub fn healthy() -> Self {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
            policy: DegradePolicy::default(),
        }
    }

    /// A plan that loses exactly one channel.
    pub fn channel_loss(seed: u64, channel: u32) -> Self {
        FaultPlan {
            seed,
            faults: vec![FaultSpec::ChannelLoss { channel }],
            policy: DegradePolicy::default(),
        }
    }

    /// Generates a mixed-fault scenario deterministically from `seed` for
    /// a `channels`-channel subsystem: one lost channel (when more than
    /// one exists), one flaky survivor, one slow bank, refresh pressure
    /// and one controller stall. Same seed, same plan.
    pub fn seeded(seed: u64, channels: u32) -> Result<Self, FaultError> {
        if channels == 0 {
            return Err(FaultError::BadPlan {
                reason: "subsystem must have at least one channel".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        let lost = if channels > 1 {
            let ch = rng.gen_range(0..channels);
            faults.push(FaultSpec::ChannelLoss { channel: ch });
            Some(ch)
        } else {
            None
        };
        // A flaky survivor (skip the lost channel by rotating past it).
        let survivors = channels - lost.map_or(0, |_| 1);
        if survivors > 0 {
            let mut ch = rng.gen_range(0..channels);
            if Some(ch) == lost {
                ch = (ch + 1) % channels;
            }
            let period = 1u64 << rng.gen_range(10..13u32); // 1024..4096 ck
            let down = rng.gen_range(period / 8..period / 2);
            let phase = rng.gen_range(0..period);
            faults.push(FaultSpec::FlakyChannel {
                channel: ch,
                window: WindowSpec {
                    period,
                    down,
                    phase,
                },
            });
        }
        faults.push(FaultSpec::SlowBank {
            channel: rng.gen_range(0..channels),
            bank: rng.gen_range(0..4u32),
            extra_trcd: rng.gen_range(1..5u64),
            extra_trp: rng.gen_range(1..5u64),
        });
        faults.push(FaultSpec::RefreshPressure {
            divisor: rng.gen_range(2..4u64),
        });
        let mut stall_ch = rng.gen_range(0..channels);
        if Some(stall_ch) == lost {
            stall_ch = (stall_ch + 1) % channels;
        }
        let period = 8192u64;
        faults.push(FaultSpec::CtrlStall {
            channel: stall_ch,
            window: WindowSpec {
                period,
                down: rng.gen_range(64..512u64),
                phase: rng.gen_range(0..period),
            },
        });
        Ok(FaultPlan {
            seed,
            faults,
            policy: DegradePolicy::default(),
        })
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Checks the plan against a `channels`-channel subsystem: channel
    /// indices in range, windows and divisors consistent, at least one
    /// channel surviving.
    pub fn validate(&self, channels: u32) -> Result<(), FaultError> {
        let in_range = |channel: u32| {
            if channel >= channels {
                Err(FaultError::BadChannel { channel, channels })
            } else {
                Ok(())
            }
        };
        let window_ok = |w: &WindowSpec, what: &str| {
            if w.period == 0 || w.down == 0 || w.down >= w.period {
                Err(FaultError::BadPlan {
                    reason: format!(
                        "{what} window needs 0 < down < period, got down {} period {}",
                        w.down, w.period
                    ),
                })
            } else {
                Ok(())
            }
        };
        for f in &self.faults {
            match f {
                FaultSpec::ChannelLoss { channel } => in_range(*channel)?,
                FaultSpec::FlakyChannel { channel, window } => {
                    in_range(*channel)?;
                    window_ok(window, "flaky")?;
                }
                FaultSpec::SlowBank {
                    channel,
                    extra_trcd,
                    extra_trp,
                    ..
                } => {
                    in_range(*channel)?;
                    if *extra_trcd == 0 && *extra_trp == 0 {
                        return Err(FaultError::BadPlan {
                            reason: "slow bank with no extra latency".into(),
                        });
                    }
                }
                FaultSpec::RefreshPressure { divisor } => {
                    if *divisor == 0 {
                        return Err(FaultError::BadPlan {
                            reason: "refresh-pressure divisor must be non-zero".into(),
                        });
                    }
                }
                FaultSpec::CtrlStall { channel, window } => {
                    in_range(*channel)?;
                    window_ok(window, "stall")?;
                }
            }
        }
        if self.policy.max_retries == 0 {
            return Err(FaultError::BadPlan {
                reason: "policy needs at least one retry attempt".into(),
            });
        }
        if self.policy.shed_target_pct == 0 || self.policy.shed_target_pct > 100 {
            return Err(FaultError::BadPlan {
                reason: format!(
                    "shed target {} % must be in 1..=100",
                    self.policy.shed_target_pct
                ),
            });
        }
        if self.survivors(channels).is_empty() {
            return Err(FaultError::AllChannelsLost);
        }
        Ok(())
    }

    /// Channels lost for the whole run, sorted and deduplicated.
    pub fn lost_channels(&self) -> Vec<u32> {
        let mut lost: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultSpec::ChannelLoss { channel } => Some(*channel),
                _ => None,
            })
            .collect();
        lost.sort_unstable();
        lost.dedup();
        lost
    }

    /// Surviving physical channels of a `channels`-channel subsystem, in
    /// ascending order (the degraded interleave's slot → channel map).
    pub fn survivors(&self, channels: u32) -> Vec<u32> {
        let lost = self.lost_channels();
        (0..channels).filter(|c| !lost.contains(c)).collect()
    }

    /// The flaky window on `channel`, if one is injected.
    pub fn flaky_window(&self, channel: u32) -> Option<WindowSpec> {
        self.faults.iter().find_map(|f| match f {
            FaultSpec::FlakyChannel { channel: c, window } if *c == channel => Some(*window),
            _ => None,
        })
    }

    /// The controller-stall window on `channel`, if one is injected.
    pub fn stall_window(&self, channel: u32) -> Option<WindowSpec> {
        self.faults.iter().find_map(|f| match f {
            FaultSpec::CtrlStall { channel: c, window } if *c == channel => Some(*window),
            _ => None,
        })
    }

    /// Combined refresh-interval divisor (product of all refresh-pressure
    /// faults; `1` when none is injected).
    pub fn refresh_divisor(&self) -> u64 {
        self.faults
            .iter()
            .map(|f| match f {
                FaultSpec::RefreshPressure { divisor } => (*divisor).max(1),
                _ => 1,
            })
            .product()
    }

    /// Per-bank latency penalties: `(channel, bank, extra_trcd, extra_trp)`.
    pub fn bank_penalties(&self) -> impl Iterator<Item = (u32, u32, u64, u64)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            FaultSpec::SlowBank {
                channel,
                bank,
                extra_trcd,
                extra_trp,
            } => Some((*channel, *bank, *extra_trcd, *extra_trp)),
            _ => None,
        })
    }

    /// Mean availability over the given surviving channels (flaky windows
    /// only; a channel with no flaky fault counts as fully available).
    pub fn mean_availability(&self, survivors: &[u32]) -> f64 {
        if survivors.is_empty() {
            return 0.0;
        }
        survivors
            .iter()
            .map(|&c| self.flaky_window(c).map_or(1.0, |w| w.availability()))
            .sum::<f64>()
            / survivors.len() as f64
    }

    /// One-line-per-fault human rendering (the `mcm fault` subcommand's
    /// describe output).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "fault plan (seed {:#x}): {} fault(s), policy retries={} backoff={}ck shed-target={}%\n",
            self.seed,
            self.faults.len(),
            self.policy.max_retries,
            self.policy.backoff_cycles,
            self.policy.shed_target_pct
        );
        for f in &self.faults {
            let line = match f {
                FaultSpec::ChannelLoss { channel } => {
                    format!("  channel {channel}: lost for the whole run")
                }
                FaultSpec::FlakyChannel { channel, window } => format!(
                    "  channel {channel}: flaky, down {}/{} ck (phase {}, {:.1}% available)",
                    window.down,
                    window.period,
                    window.phase,
                    window.availability() * 100.0
                ),
                FaultSpec::SlowBank {
                    channel,
                    bank,
                    extra_trcd,
                    extra_trp,
                } => format!(
                    "  channel {channel} bank {bank}: slow rows, +{extra_trcd} ck tRCD, +{extra_trp} ck tRP"
                ),
                FaultSpec::RefreshPressure { divisor } => {
                    format!("  all channels: refresh pressure, tREFI ÷ {divisor}")
                }
                FaultSpec::CtrlStall { channel, window } => format!(
                    "  channel {channel}: controller stalls {}/{} ck (phase {})",
                    window.down, window.period, window.phase
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Per-stage shed accounting: a Table I stage dropped by the load-shedding
/// policy and the bytes it would have moved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageShed {
    /// Table I row label of the shed stage.
    pub stage: String,
    /// Bytes that stage would have moved this frame.
    pub bytes: u64,
}

/// What graceful degradation did to one run: reported inside the frame
/// result so callers (CLI, sweep, verify) see the degraded-mode outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeSummary {
    /// Channels lost for the whole run.
    pub lost_channels: Vec<u32>,
    /// Channels that carried traffic.
    pub surviving_channels: u32,
    /// Flaky-window hits (requests that arrived inside a down window).
    pub flaky_hits: u64,
    /// Retry attempts made on flaky windows.
    pub retries: u64,
    /// Requests remapped to a neighbour channel after retries ran out.
    pub remaps: u64,
    /// Stages shed, in shed order, with their per-stage bytes.
    pub shed: Vec<StageShed>,
    /// Total bytes shed (sum over [`DegradeSummary::shed`]).
    pub shed_bytes: u64,
    /// Bytes the undegraded frame would have moved.
    pub planned_bytes_full: u64,
    /// Bytes planned after shedding (simulated plan).
    pub planned_bytes_after_shed: u64,
    /// Frame rate the degraded subsystem actually sustains; equals
    /// `nominal_fps` when the degraded run still meets its budget.
    pub effective_fps: f64,
    /// The use case's nominal capture rate.
    pub nominal_fps: u32,
}

impl DegradeSummary {
    /// Whether the degraded run still delivers the nominal frame rate.
    pub fn holds_frame_rate(&self) -> bool {
        self.effective_fps >= self.nominal_fps as f64
    }
}

impl fmt::Display for DegradeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch surviving, {} shed ({} B), {:.1}/{} fps",
            self.surviving_channels,
            self.shed.len(),
            self.shed_bytes,
            self.effective_fps,
            self.nominal_fps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_math() {
        let w = WindowSpec {
            period: 100,
            down: 20,
            phase: 0,
        };
        assert!(w.is_down(0));
        assert!(w.is_down(19));
        assert!(!w.is_down(20));
        assert!(!w.is_down(99));
        assert!(w.is_down(100));
        assert_eq!(w.next_up(5), 20);
        assert_eq!(w.next_up(20), 20);
        assert_eq!(w.next_up(105), 120);
        assert!((w.availability() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn next_up_is_monotone() {
        let w = WindowSpec {
            period: 64,
            down: 16,
            phase: 7,
        };
        let mut prev = 0;
        for c in 0..1000u64 {
            let up = w.next_up(c);
            assert!(up >= c);
            assert!(!w.is_down(up));
            assert!(up >= prev, "next_up must be monotone");
            prev = up;
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 4).unwrap();
        let b = FaultPlan::seeded(42, 4).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_plans_validate_for_their_subsystem() {
        for seed in 0..50u64 {
            for channels in [1u32, 2, 4, 8] {
                let plan = FaultPlan::seeded(seed, channels).unwrap();
                plan.validate(channels)
                    .unwrap_or_else(|e| panic!("seed {seed} channels {channels}: {e}"));
            }
        }
    }

    #[test]
    fn channel_loss_plan_survivors() {
        let plan = FaultPlan::channel_loss(1, 2);
        assert_eq!(plan.lost_channels(), vec![2]);
        assert_eq!(plan.survivors(4), vec![0, 1, 3]);
        assert!(plan.validate(4).is_ok());
        assert!(matches!(
            plan.validate(2),
            Err(FaultError::BadChannel { .. })
        ));
    }

    #[test]
    fn all_channels_lost_rejected() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                FaultSpec::ChannelLoss { channel: 0 },
                FaultSpec::ChannelLoss { channel: 1 },
            ],
            policy: DegradePolicy::default(),
        };
        assert_eq!(plan.validate(2), Err(FaultError::AllChannelsLost));
    }

    #[test]
    fn bad_windows_and_policies_rejected() {
        let mut plan = FaultPlan::healthy();
        plan.faults.push(FaultSpec::FlakyChannel {
            channel: 0,
            window: WindowSpec {
                period: 10,
                down: 10,
                phase: 0,
            },
        });
        assert!(matches!(plan.validate(1), Err(FaultError::BadPlan { .. })));

        let mut plan = FaultPlan::healthy();
        plan.policy.shed_target_pct = 0;
        assert!(matches!(plan.validate(1), Err(FaultError::BadPlan { .. })));

        let mut plan = FaultPlan::healthy();
        plan.policy.max_retries = 0;
        assert!(matches!(plan.validate(1), Err(FaultError::BadPlan { .. })));
    }

    #[test]
    fn accessors_pull_the_right_faults() {
        let plan = FaultPlan {
            seed: 9,
            faults: vec![
                FaultSpec::FlakyChannel {
                    channel: 1,
                    window: WindowSpec {
                        period: 100,
                        down: 10,
                        phase: 0,
                    },
                },
                FaultSpec::SlowBank {
                    channel: 0,
                    bank: 3,
                    extra_trcd: 2,
                    extra_trp: 1,
                },
                FaultSpec::RefreshPressure { divisor: 2 },
                FaultSpec::RefreshPressure { divisor: 3 },
                FaultSpec::CtrlStall {
                    channel: 2,
                    window: WindowSpec {
                        period: 50,
                        down: 5,
                        phase: 1,
                    },
                },
            ],
            policy: DegradePolicy::default(),
        };
        assert!(plan.flaky_window(1).is_some());
        assert!(plan.flaky_window(0).is_none());
        assert!(plan.stall_window(2).is_some());
        assert_eq!(plan.refresh_divisor(), 6);
        assert_eq!(
            plan.bank_penalties().collect::<Vec<_>>(),
            vec![(0, 3, 2, 1)]
        );
        let avail = plan.mean_availability(&[0, 1]);
        assert!((avail - 0.95).abs() < 1e-12, "{avail}");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::seeded(0xfeed, 8).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn shed_priority_keeps_the_capture_path() {
        for stage in SHED_PRIORITY {
            assert!(!["Camera I/F", "Preprocess", "Bayer to YUV", "Audio"].contains(&stage));
        }
        // Display drops before the encoder.
        let display = SHED_PRIORITY.iter().position(|&s| s == "DisplayCtrl");
        let encoder = SHED_PRIORITY.iter().position(|&s| s == "Video encoder");
        assert!(display < encoder);
    }

    #[test]
    fn describe_mentions_every_fault() {
        let plan = FaultPlan::seeded(3, 4).unwrap();
        let text = plan.describe();
        assert!(text.contains("seed 0x3"));
        assert!(text.contains("lost"));
        assert!(text.contains("flaky"));
        assert!(text.contains("tREFI"));
    }

    #[test]
    fn summary_display_and_frame_rate() {
        let s = DegradeSummary {
            lost_channels: vec![1],
            surviving_channels: 3,
            flaky_hits: 4,
            retries: 6,
            remaps: 1,
            shed: vec![StageShed {
                stage: "DisplayCtrl".into(),
                bytes: 1000,
            }],
            shed_bytes: 1000,
            planned_bytes_full: 10_000,
            planned_bytes_after_shed: 9_000,
            effective_fps: 30.0,
            nominal_fps: 30,
        };
        assert!(s.holds_frame_rate());
        assert!(s.to_string().contains("3ch surviving"));
    }
}
