//! The shared scheduling path behind sweeps, figure batches and `mcm serve`.
//!
//! [`Executor`] is the asynchronous job API every consumer drives:
//! [`run_sweep_on`](crate::run_sweep_on) submits one job and blocks on
//! [`Executor::collect`]; the figure harness routes its batches through the
//! same machinery via [`ParallelRunner`](crate::ParallelRunner); the server
//! keeps many jobs in flight, polls their progress, and cancels them on
//! client request. [`RayonExecutor`] is the one implementation: a bounded
//! number of concurrent jobs, each executed on the rayon pool with the
//! engine's full per-point pipeline (static prelint, content-key cache
//! lookup, panic-isolated simulation, cache write-back).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mcm_core::runner::panic_message;
use mcm_core::{CoreError, Experiment, FrameResult, RunOptions};
use rayon::prelude::*;

use crate::cache::{PointRecord, ResultCache};
use crate::engine::SweepOptions;
use crate::error::SweepError;
use crate::key::content_key;

/// Handle to a submitted job, unique per executor.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, waiting for a free job slot.
    Queued,
    /// Executing on the pool.
    Running,
    /// Every item finished; the result is ready to collect.
    Done,
    /// Cancelled; items that had not started carry
    /// [`SweepError::Cancelled`], finished items keep their results.
    Cancelled,
}

impl JobState {
    /// Whether the job has stopped executing (result available).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled)
    }

    /// Lower-case wire name (`queued` / `running` / `done` / `cancelled`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// A progress snapshot of one job, cheap to poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Lifecycle state.
    pub state: JobState,
    /// Items finished so far (any way: simulated, cached, prelinted,
    /// cancelled).
    pub done: usize,
    /// Items in the job.
    pub total: usize,
}

/// One unit of work: a fully built experiment plus the fault plan (if any)
/// that joins the job-wide [`RunOptions`] before keying and simulation.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Human-readable coordinates, carried through to the outcome.
    pub label: String,
    /// The experiment to run.
    pub experiment: Experiment,
    /// Fault plan for this item; degraded and healthy items never share a
    /// content key.
    pub faults: Option<mcm_fault::FaultPlan>,
}

impl WorkItem {
    /// An item without faults.
    pub fn new(label: impl Into<String>, experiment: Experiment) -> Self {
        WorkItem {
            label: label.into(),
            experiment,
            faults: None,
        }
    }
}

/// The result of one [`WorkItem`], with full provenance: how the answer
/// was produced (simulated / cache hit / static prelint), under which
/// content key, how long it took, and the observability distillation when
/// one was recorded.
#[derive(Debug, Clone)]
pub struct WorkOutcome {
    /// The item's label.
    pub label: String,
    /// The distilled result, or why this item failed.
    pub outcome: Result<PointRecord, SweepError>,
    /// Whether the result came from the cache (no simulation ran).
    pub cached: bool,
    /// Whether the static analyzer answered this item (no simulation ran).
    pub prelinted: bool,
    /// Shared content key ([`content_key`]) of this item, when computable.
    /// Prelinted items carry `None` — they bypass the keyed store entirely.
    pub key: Option<u64>,
    /// Whether the result came from the job's checkpoint log (a previous
    /// run of the same sweep completed this item before dying). Distinct
    /// from [`WorkOutcome::cached`]: the log belongs to one sweep, the
    /// cache is shared across sweeps.
    pub resumed: bool,
    /// Wall-clock time spent on this item (lookup or simulation).
    pub elapsed: Duration,
    /// Observability distillation, when observation was requested and the
    /// item actually simulated.
    pub obs: Option<mcm_obs::ObsSummary>,
}

/// The scheduling API shared by `run_sweep_on`, the figure harness and
/// `mcm serve`: submit a batch, poll its progress, cancel it, collect the
/// outcomes.
///
/// Implementations execute items with the full engine pipeline — static
/// prelint, content-key cache lookup, panic-isolated simulation, cache
/// write-back — under the submitted [`SweepOptions`].
pub trait Executor: Send + Sync {
    /// Queues a batch for execution and returns its handle. Fails fast on
    /// invalid options (multi-frame runs) or an unusable cache directory;
    /// per-item failures are carried in the collected outcomes instead.
    fn submit(&self, items: Vec<WorkItem>, options: SweepOptions) -> Result<JobId, SweepError>;

    /// A progress snapshot, or `None` for an unknown job.
    fn poll(&self, job: JobId) -> Option<JobSnapshot>;

    /// Requests cooperative cancellation. Returns whether the request
    /// landed (the job exists and had not already finished). Items not yet
    /// started resolve to [`SweepError::Cancelled`]; in-flight items run to
    /// completion.
    fn cancel(&self, job: JobId) -> bool;

    /// Blocks until the job finishes and takes its outcomes (one per
    /// submitted item, in submission order). A second collect of the same
    /// job — or a bad id — is [`SweepError::UnknownJob`].
    fn collect(&self, job: JobId) -> Result<Vec<WorkOutcome>, SweepError>;
}

struct JobEntry {
    state: JobState,
    done: Arc<AtomicUsize>,
    total: usize,
    cancel: Arc<AtomicBool>,
    result: Option<Vec<WorkOutcome>>,
}

struct Shared {
    jobs: Mutex<BTreeMap<JobId, JobEntry>>,
    /// Signalled whenever any job changes state or finishes.
    changed: Condvar,
    /// Free job slots (bounded concurrency over the rayon pool).
    slots: Mutex<usize>,
    slot_freed: Condvar,
    /// Items actually simulated (not cached, not prelinted) over this
    /// executor's lifetime.
    simulated: AtomicUsize,
    next_id: AtomicU64,
}

/// The rayon-backed [`Executor`]: at most `max_jobs` jobs execute
/// concurrently (excess submissions queue in FIFO-by-slot-wakeup order),
/// and each job runs its items on the rayon pool configured by its own
/// [`SweepOptions::threads`].
///
/// ```
/// use mcm_load::HdOperatingPoint;
/// use mcm_sweep::{Executor, RayonExecutor, SweepOptions, WorkItem};
///
/// let exec = RayonExecutor::new(1);
/// let exp = mcm_core::Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
/// let item = WorkItem::new("720p30/4ch", exp);
/// let job = exec.submit(vec![item], SweepOptions::default()).unwrap();
/// let outcomes = exec.collect(job).unwrap();
/// assert!(outcomes[0].outcome.as_ref().unwrap().feasible);
/// ```
#[derive(Clone)]
pub struct RayonExecutor {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for RayonExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let jobs = self.shared.jobs.lock().expect("executor lock poisoned");
        f.debug_struct("RayonExecutor")
            .field("jobs", &jobs.len())
            .field("simulated", &self.simulated())
            .finish()
    }
}

impl Default for RayonExecutor {
    /// A single-job executor — the stock argument to
    /// [`run_sweep_on`](crate::run_sweep_on), and what the figure
    /// harness uses.
    fn default() -> Self {
        RayonExecutor::new(1)
    }
}

impl RayonExecutor {
    /// An executor running at most `max_jobs` jobs at once (`0` is treated
    /// as `1`).
    pub fn new(max_jobs: usize) -> Self {
        RayonExecutor {
            shared: Arc::new(Shared {
                jobs: Mutex::new(BTreeMap::new()),
                changed: Condvar::new(),
                slots: Mutex::new(max_jobs.max(1)),
                slot_freed: Condvar::new(),
                simulated: AtomicUsize::new(0),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// Items actually simulated (not cached, not prelinted) since this
    /// executor was created. The dedup guarantee is pinned against this
    /// counter: resubmitting stored work must not move it.
    pub fn simulated(&self) -> usize {
        self.shared.simulated.load(Ordering::Relaxed)
    }

    /// Runs `op` inside a job slot on the pool `threads` selects — the
    /// synchronous flavour of the same bounded-concurrency scheduling the
    /// asynchronous jobs use. The figure harness batches go through here.
    pub fn run_inline<R: Send>(&self, threads: Option<usize>, op: impl FnOnce() -> R + Send) -> R {
        self.acquire_slot(None);
        let result = on_pool(threads, op);
        self.release_slot();
        result
    }

    /// Blocks until a slot frees up. With a cancel flag, returns early
    /// (without a slot) when the flag is raised; returns whether a slot was
    /// actually taken.
    fn acquire_slot(&self, cancel: Option<&AtomicBool>) -> bool {
        let mut slots = self.shared.slots.lock().expect("executor lock poisoned");
        loop {
            if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                return false;
            }
            if *slots > 0 {
                *slots -= 1;
                return true;
            }
            let (guard, _) = self
                .shared
                .slot_freed
                .wait_timeout(slots, Duration::from_millis(50))
                .expect("executor lock poisoned");
            slots = guard;
        }
    }

    fn release_slot(&self) {
        let mut slots = self.shared.slots.lock().expect("executor lock poisoned");
        *slots += 1;
        self.shared.slot_freed.notify_one();
    }

    fn set_state(&self, job: JobId, state: JobState) {
        let mut jobs = self.shared.jobs.lock().expect("executor lock poisoned");
        if let Some(entry) = jobs.get_mut(&job) {
            entry.state = state;
        }
        self.shared.changed.notify_all();
    }

    fn finish(&self, job: JobId, outcomes: Vec<WorkOutcome>, cancelled: bool) {
        let mut jobs = self.shared.jobs.lock().expect("executor lock poisoned");
        if let Some(entry) = jobs.get_mut(&job) {
            entry.state = if cancelled {
                JobState::Cancelled
            } else {
                JobState::Done
            };
            entry.result = Some(outcomes);
        }
        self.shared.changed.notify_all();
    }

    /// The worker body for one job: wait for a slot, run every item,
    /// publish the result.
    fn run_job(
        &self,
        job: JobId,
        items: Vec<WorkItem>,
        options: SweepOptions,
        cache: Option<ResultCache>,
    ) {
        let (done, cancel) = {
            let jobs = self.shared.jobs.lock().expect("executor lock poisoned");
            let entry = jobs.get(&job).expect("job entry outlives its worker");
            (entry.done.clone(), entry.cancel.clone())
        };
        if !self.acquire_slot(Some(&cancel)) {
            // Cancelled while queued: no slot was consumed, no item ran.
            let outcomes = items
                .into_iter()
                .map(|item| cancelled_outcome(item.label))
                .collect();
            self.finish(job, outcomes, true);
            return;
        }
        self.set_state(job, JobState::Running);

        // Static pruning happens before the pool: each healthy item is
        // paired with its MCM4xx refusal (if any). Faulted items always
        // keep `None` — graceful degradation can rescue an item the static
        // model condemns, so soundness only holds for healthy cells.
        let work: Vec<(WorkItem, Option<String>)> = items
            .into_iter()
            .map(|item| {
                let refusal = (options.prelint && item.faults.is_none())
                    .then(|| mcm_analyze::verdict(&item.experiment).reason())
                    .flatten();
                (item, refusal)
            })
            .collect();
        let total = work.len();

        let execute = |(item, refusal): &(WorkItem, Option<String>)| -> WorkOutcome {
            if cancel.load(Ordering::Relaxed) {
                done.fetch_add(1, Ordering::Relaxed);
                return cancelled_outcome(item.label.clone());
            }
            let outcome = match refusal {
                // The analyzer already proved this item cannot work: answer
                // it instantly, bypassing both the simulator and the cache.
                Some(reason) => {
                    let started = Instant::now();
                    WorkOutcome {
                        label: item.label.clone(),
                        outcome: Ok(prelinted_record(reason.clone())),
                        cached: false,
                        prelinted: true,
                        key: None,
                        resumed: false,
                        elapsed: started.elapsed(),
                        obs: None,
                    }
                }
                None => execute_item(item, &options, cache.as_ref(), &self.shared.simulated),
            };
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            if options.progress {
                let status = match &outcome.outcome {
                    Ok(r) if outcome.prelinted => format!(
                        "infeasible (static: {})",
                        r.infeasible_reason.as_deref().unwrap_or_default()
                    ),
                    Ok(_) if outcome.resumed => "resumed".to_string(),
                    Ok(_) if outcome.cached => "cached".to_string(),
                    Ok(r) if !r.feasible => "infeasible".to_string(),
                    Ok(r) => r.verdict.clone().unwrap_or_default(),
                    Err(SweepError::Cancelled { .. }) => "cancelled".to_string(),
                    Err(e) => format!("failed: {e}"),
                };
                eprintln!(
                    "[{k}/{total}] {} — {status} ({:.0} ms)",
                    item.label,
                    outcome.elapsed.as_secs_f64() * 1e3
                );
            }
            outcome
        };

        let outcomes: Vec<WorkOutcome> =
            on_pool(options.threads, || work.par_iter().map(&execute).collect());
        let was_cancelled = cancel.load(Ordering::Relaxed);
        self.release_slot();
        self.finish(job, outcomes, was_cancelled);
    }
}

impl Executor for RayonExecutor {
    fn submit(&self, items: Vec<WorkItem>, options: SweepOptions) -> Result<JobId, SweepError> {
        if options.run.frames != 1 {
            return Err(SweepError::BadOptions {
                reason: format!(
                    "sweeps are single-frame (got frames = {}); use run_steady_state for sessions",
                    options.run.frames
                ),
            });
        }
        let cache = match &options.cache_dir {
            Some(dir) => Some(ResultCache::new(dir.clone())?),
            None => None,
        };
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut jobs = self.shared.jobs.lock().expect("executor lock poisoned");
            jobs.insert(
                id,
                JobEntry {
                    state: JobState::Queued,
                    done: Arc::new(AtomicUsize::new(0)),
                    total: items.len(),
                    cancel: Arc::new(AtomicBool::new(false)),
                    result: None,
                },
            );
        }
        let this = self.clone();
        std::thread::spawn(move || this.run_job(id, items, options, cache));
        Ok(id)
    }

    fn poll(&self, job: JobId) -> Option<JobSnapshot> {
        let jobs = self.shared.jobs.lock().expect("executor lock poisoned");
        jobs.get(&job).map(|entry| JobSnapshot {
            state: entry.state,
            done: entry.done.load(Ordering::Relaxed).min(entry.total),
            total: entry.total,
        })
    }

    fn cancel(&self, job: JobId) -> bool {
        let jobs = self.shared.jobs.lock().expect("executor lock poisoned");
        match jobs.get(&job) {
            Some(entry) if !entry.state.is_terminal() => {
                entry.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    fn collect(&self, job: JobId) -> Result<Vec<WorkOutcome>, SweepError> {
        let mut jobs = self.shared.jobs.lock().expect("executor lock poisoned");
        loop {
            match jobs.get_mut(&job) {
                None => return Err(SweepError::UnknownJob { job }),
                Some(entry) => {
                    if let Some(result) = entry.result.take() {
                        return Ok(result);
                    }
                    if entry.state.is_terminal() {
                        // Terminal with no result left: already collected.
                        return Err(SweepError::UnknownJob { job });
                    }
                }
            }
            jobs = self
                .shared
                .changed
                .wait(jobs)
                .expect("executor lock poisoned");
        }
    }
}

/// Runs `op` on the pool `threads` selects: a dedicated pool for an
/// explicit count, rayon's ambient default otherwise.
fn on_pool<R>(threads: Option<usize>, op: impl FnOnce() -> R) -> R {
    match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool construction cannot fail")
            .install(op),
        None => op(),
    }
}

fn cancelled_outcome(label: String) -> WorkOutcome {
    WorkOutcome {
        outcome: Err(SweepError::Cancelled {
            label: label.clone(),
        }),
        label,
        cached: false,
        prelinted: false,
        key: None,
        resumed: false,
        elapsed: Duration::ZERO,
        obs: None,
    }
}

/// The record a prelinted item gets instead of simulating: infeasible,
/// with the analyzer's `"MCM4xx: …"` witness as the reason and the same
/// empty metrics an engine-side `LayoutOverflow` produces.
pub(crate) fn prelinted_record(reason: String) -> PointRecord {
    PointRecord {
        feasible: false,
        infeasible_reason: Some(reason),
        access_ms: None,
        budget_ms: None,
        verdict: None,
        core_mw: None,
        interface_mw: None,
        efficiency: None,
        energy_per_bit_pj: None,
        latency_p99_ns: None,
        planned_bytes: 0,
        simulated_bytes: 0,
        peak_gbytes_per_s: 0.0,
    }
}

/// Runs one item with panic isolation, honoring the job's run options.
fn simulate_point(exp: &Experiment, run: &RunOptions) -> Result<FrameResult, CoreError> {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exp.run_with(run)));
    match attempt {
        Ok(outcome) => outcome?.into_frame().ok_or_else(|| CoreError::BadParam {
            reason: "sweep run options must produce a single-frame result".into(),
        }),
        Err(payload) => Err(CoreError::Panicked {
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// The per-item pipeline: key, checkpoint lookup, cache lookup, simulate on
/// miss, write back (cache and checkpoint).
fn execute_item(
    item: &WorkItem,
    options: &SweepOptions,
    cache: Option<&ResultCache>,
    simulated: &AtomicUsize,
) -> WorkOutcome {
    let started = Instant::now();
    // The item's fault plan joins the run options before keying so degraded
    // and healthy cells never share a cache entry. Items without a plan
    // keep the job-wide options (and therefore pre-fault keys) untouched.
    let point_run = match &item.faults {
        Some(plan) => options.run.clone().with_faults(plan.clone()),
        None => options.run.clone(),
    };
    let key = content_key(&item.experiment, &point_run).ok();
    // The checkpoint log outranks the cache: a hit there proves *this
    // sweep* already completed the point before dying.
    let mut hit = match (&options.checkpoint, key) {
        (Some(log), Some(k)) => log.lookup(k),
        _ => None,
    };
    let resumed = hit.is_some();
    if !resumed {
        hit = match (cache, key) {
            (Some(cache), Some(k)) => cache.load(k),
            _ => None,
        };
    }
    let cached = !resumed && hit.is_some();
    let mut obs = None;
    let outcome = match hit {
        Some(record) => Ok(record),
        None => {
            simulated.fetch_add(1, Ordering::Relaxed);
            let point_recorder = (options.observe && options.run.recorder.is_none())
                .then(|| Arc::new(mcm_obs::StatsRecorder::new()));
            let run = match &point_recorder {
                Some(rec) => point_run.clone().with_recorder(rec.clone()),
                None => point_run.clone(),
            };
            let outcome = PointRecord::from_result(simulate_point(&item.experiment, &run)).map_err(
                |source| SweepError::Point {
                    label: item.label.clone(),
                    source,
                },
            );
            obs = point_recorder.map(|rec| rec.report().summary());
            outcome
        }
    };
    if !cached && !resumed {
        if let (Some(cache), Some(k), Ok(record)) = (cache, key, &outcome) {
            // Cache write failures degrade to uncached operation.
            let _ = cache.store(k, record);
        }
    }
    if !resumed {
        if let (Some(log), Some(k), Ok(record)) = (&options.checkpoint, key, &outcome) {
            // Checkpoint write failures degrade to restart-from-scratch;
            // they never fail the point.
            let _ = log.record(k, &item.label, record);
        }
    }
    WorkOutcome {
        label: item.label.clone(),
        outcome,
        cached,
        prelinted: false,
        key,
        resumed,
        elapsed: started.elapsed(),
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    fn items(channels: &[u32], op_limit: u64) -> Vec<WorkItem> {
        channels
            .iter()
            .map(|&ch| {
                let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, ch, 400);
                exp.op_limit = Some(op_limit);
                WorkItem::new(format!("720p30/{ch}ch"), exp)
            })
            .collect()
    }

    #[test]
    fn submit_poll_collect_lifecycle() {
        let exec = RayonExecutor::new(1);
        let job = exec
            .submit(items(&[1, 2, 4], 2_000), SweepOptions::default())
            .unwrap();
        let outcomes = exec.collect(job).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.outcome.is_ok() && !o.cached));
        assert_eq!(exec.simulated(), 3);
        // Terminal snapshot survives collection; the result does not.
        let snap = exec.poll(job).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!((snap.done, snap.total), (3, 3));
        assert!(matches!(
            exec.collect(job),
            Err(SweepError::UnknownJob { .. })
        ));
        assert!(exec.poll(999).is_none());
    }

    #[test]
    fn duplicate_submissions_hit_the_cache_not_the_simulator() {
        let dir = std::env::temp_dir().join(format!("mcm-exec-dedup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let exec = RayonExecutor::new(2);
        let options = SweepOptions::default().with_cache_dir(dir.clone());
        let first = exec.submit(items(&[2], 2_000), options.clone()).unwrap();
        let fresh = exec.collect(first).unwrap();
        assert_eq!(exec.simulated(), 1);
        // Same content, second job: answered from the keyed store, the
        // simulation counter must not move.
        let second = exec.submit(items(&[2], 2_000), options).unwrap();
        let stored = exec.collect(second).unwrap();
        assert_eq!(exec.simulated(), 1, "duplicate work must not re-simulate");
        assert!(stored[0].cached && !fresh[0].cached);
        assert_eq!(stored[0].key, fresh[0].key);
        assert_eq!(
            stored[0].outcome.as_ref().unwrap(),
            fresh[0].outcome.as_ref().unwrap()
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cancellation_is_cooperative_and_typed() {
        let exec = RayonExecutor::new(1);
        // A long serial job: many items, one thread, no op limit shortcut.
        let job = exec
            .submit(
                items(&[1, 2, 4, 8, 1, 2, 4, 8], 50_000),
                SweepOptions::default().with_threads(1),
            )
            .unwrap();
        assert!(exec.cancel(job), "live jobs accept cancellation");
        let outcomes = exec.collect(job).unwrap();
        assert_eq!(outcomes.len(), 8, "every item resolves, run or not");
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o.outcome, Err(SweepError::Cancelled { .. }))),
            "at least the tail of the job is cancelled"
        );
        assert_eq!(exec.poll(job).unwrap().state, JobState::Cancelled);
        assert!(!exec.cancel(job), "finished jobs refuse cancellation");
    }

    #[test]
    fn queued_jobs_wait_for_a_slot_and_can_be_cancelled_there() {
        let exec = RayonExecutor::new(1);
        let slow = exec
            .submit(
                items(&[1, 2, 4, 8], 50_000),
                SweepOptions::default().with_threads(1),
            )
            .unwrap();
        let queued = exec
            .submit(items(&[2], 2_000), SweepOptions::default())
            .unwrap();
        // Cancel the queued job before it ever gets a slot: it resolves
        // all-cancelled without simulating anything.
        assert!(exec.cancel(queued));
        let outcomes = exec.collect(queued).unwrap();
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.outcome, Err(SweepError::Cancelled { .. }))));
        // The running job is unaffected.
        let slow_outcomes = exec.collect(slow).unwrap();
        assert!(slow_outcomes.iter().all(|o| o.outcome.is_ok()));
    }

    #[test]
    fn multi_frame_options_are_rejected_at_submit() {
        let exec = RayonExecutor::new(1);
        let mut options = SweepOptions::default();
        options.run.frames = 3;
        assert!(matches!(
            exec.submit(items(&[1], 2_000), options),
            Err(SweepError::BadOptions { .. })
        ));
    }
}
