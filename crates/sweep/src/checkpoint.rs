//! Crash-safe checkpoint logs for resumable sweeps.
//!
//! A [`CheckpointLog`] records every completed point of one sweep as a
//! JSONL line (`{key, label, record}`) under a sealed header that binds
//! the log to its sweep: the [`spec_hash`](crate::spec_hash) of the grid,
//! the [`KEY_SCHEMA_VERSION`](crate::KEY_SCHEMA_VERSION), and the
//! [`ExecutionPolicy`] the points run under. A log offered to a different
//! sweep is refused with a typed [`SweepError::Checkpoint`] instead of
//! silently resuming the wrong grid.
//!
//! Every append rewrites the log to a sibling temp file and atomically
//! renames it over the original, so the file on disk is a complete,
//! parseable document at every instant — a SIGKILL mid-append loses at
//! most the point being written, never the log. Trailing garbage from a
//! torn write of an older implementation is ignored on open (the damaged
//! point re-simulates).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mcm_core::ExecutionPolicy;
use serde::{Deserialize, Serialize};

use crate::cache::PointRecord;
use crate::error::SweepError;
use crate::key::{spec_hash, KEY_SCHEMA_VERSION};
use crate::spec::SweepSpec;

/// The sealed first line of a checkpoint log: which sweep this log belongs
/// to. Every field must match on open, or the log is refused.
#[derive(Debug, Clone, PartialEq)]
struct Header {
    spec_hash: u64,
    key_schema: u32,
    execution: ExecutionPolicy,
    total: usize,
}

impl Header {
    fn to_json(&self) -> String {
        serde_json::to_string(&serde_json::json!({
            "mcm_checkpoint": 1,
            "spec_hash": format!("{:016x}", self.spec_hash),
            "key_schema": self.key_schema,
            "execution": self.execution,
            "total": self.total
        }))
        .expect("a value tree always serializes")
    }

    fn from_json(line: &str) -> Result<Header, String> {
        let v: serde::Value =
            serde_json::from_str(line).map_err(|e| format!("header is not JSON: {e:?}"))?;
        if v.get("mcm_checkpoint").and_then(|m| m.as_u64()) != Some(1) {
            return Err("not a checkpoint log (missing `mcm_checkpoint` marker)".to_string());
        }
        let spec_hash = v
            .get("spec_hash")
            .and_then(|h| h.as_str())
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("header has no `spec_hash`")?;
        let key_schema = v
            .get("key_schema")
            .and_then(|k| k.as_u64())
            .ok_or("header has no `key_schema`")? as u32;
        let execution =
            ExecutionPolicy::from_value(v.get("execution").unwrap_or(&serde::Value::Null))
                .map_err(|e| format!("header has a bad `execution` policy: {e:?}"))?;
        let total = v
            .get("total")
            .and_then(|t| t.as_u64())
            .ok_or("header has no `total`")? as usize;
        Ok(Header {
            spec_hash,
            key_schema,
            execution,
            total,
        })
    }
}

/// One completed point in the log.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    key: String,
    label: String,
    record: PointRecord,
}

struct Inner {
    path: PathBuf,
    header: Header,
    entries: Mutex<BTreeMap<u64, Entry>>,
}

/// An append-only log of completed sweep points, shareable across worker
/// threads (clones share one file). See the `checkpoint` module docs for
/// the format and crash-safety contract.
#[derive(Clone)]
pub struct CheckpointLog {
    inner: Arc<Inner>,
}

impl fmt::Debug for CheckpointLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointLog")
            .field("path", &self.inner.path)
            .field("total", &self.inner.header.total)
            .field("completed", &self.len())
            .finish()
    }
}

impl CheckpointLog {
    /// Opens (or creates) the log at `path` for a sweep of `spec` under
    /// `execution`. An existing file must carry a matching header —
    /// same spec hash, same [`KEY_SCHEMA_VERSION`], same execution policy —
    /// or the call is a typed [`SweepError::Checkpoint`]. With
    /// `must_exist` (the `--resume` contract), a missing file is an error
    /// instead of a fresh log.
    pub fn attach(
        path: impl Into<PathBuf>,
        spec: &SweepSpec,
        execution: &ExecutionPolicy,
        must_exist: bool,
    ) -> Result<CheckpointLog, SweepError> {
        let path = path.into();
        let header = Header {
            spec_hash: spec_hash(spec)?,
            key_schema: KEY_SCHEMA_VERSION,
            execution: *execution,
            total: spec.len(),
        };
        let refuse = |message: String| SweepError::Checkpoint {
            path: path.display().to_string(),
            message,
        };
        match fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.lines();
                let head = Header::from_json(lines.next().unwrap_or_default()).map_err(&refuse)?;
                if head != header {
                    return Err(refuse(format!(
                        "log belongs to a different sweep \
                         (log: spec {:016x}, schema {}, {} points; \
                         this sweep: spec {:016x}, schema {}, {} points)",
                        head.spec_hash,
                        head.key_schema,
                        head.total,
                        header.spec_hash,
                        header.key_schema,
                        header.total
                    )));
                }
                let mut entries = BTreeMap::new();
                for line in lines {
                    // A torn trailing line (pre-atomic-rename crash relic)
                    // is skipped: that point simply re-simulates.
                    if let Ok(entry) = serde_json::from_str::<Entry>(line) {
                        if let Ok(key) = u64::from_str_radix(&entry.key, 16) {
                            entries.insert(key, entry);
                        }
                    }
                }
                Ok(CheckpointLog {
                    inner: Arc::new(Inner {
                        path,
                        header,
                        entries: Mutex::new(entries),
                    }),
                })
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if must_exist {
                    return Err(refuse("no such log to resume from".to_string()));
                }
                let log = CheckpointLog {
                    inner: Arc::new(Inner {
                        path,
                        header,
                        entries: Mutex::new(BTreeMap::new()),
                    }),
                };
                log.persist()?;
                Ok(log)
            }
            Err(e) => Err(refuse(e.to_string())),
        }
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Completed points in the log.
    pub fn len(&self) -> usize {
        self.inner
            .entries
            .lock()
            .expect("checkpoint lock poisoned")
            .len()
    }

    /// Whether no point has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The completed record under `key`, if this sweep already finished it
    /// in a previous run.
    pub fn lookup(&self, key: u64) -> Option<PointRecord> {
        self.inner
            .entries
            .lock()
            .expect("checkpoint lock poisoned")
            .get(&key)
            .map(|e| e.record.clone())
    }

    /// Appends a completed point and atomically persists the log. Write
    /// failures are returned but are safe to ignore: a lost append only
    /// means that point re-simulates on resume.
    pub fn record(&self, key: u64, label: &str, record: &PointRecord) -> Result<(), SweepError> {
        {
            let mut entries = self.inner.entries.lock().expect("checkpoint lock poisoned");
            entries.insert(
                key,
                Entry {
                    key: format!("{key:016x}"),
                    label: label.to_string(),
                    record: record.clone(),
                },
            );
        }
        self.persist()
    }

    /// Serializes header + entries to a sibling temp file and renames it
    /// over the log — the on-disk file is always a complete document.
    fn persist(&self) -> Result<(), SweepError> {
        let refuse = |message: String| SweepError::Checkpoint {
            path: self.inner.path.display().to_string(),
            message,
        };
        let mut text = self.inner.header.to_json();
        text.push('\n');
        {
            let entries = self.inner.entries.lock().expect("checkpoint lock poisoned");
            for entry in entries.values() {
                text.push_str(&serde_json::to_string(entry).map_err(|e| refuse(format!("{e:?}")))?);
                text.push('\n');
            }
        }
        let tmp = self.inner.path.with_extension("tmp");
        fs::write(&tmp, text).map_err(|e| refuse(format!("writing temp file: {e}")))?;
        fs::rename(&tmp, &self.inner.path)
            .map_err(|e| refuse(format!("renaming temp file into place: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    fn tmp_log(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "mcm-checkpoint-test-{name}-{}.jsonl",
            std::process::id()
        ));
        let _ = fs::remove_file(&path);
        path
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            points: vec![HdOperatingPoint::Hd720p30],
            channels: vec![1, 2],
            op_limit: Some(1_000),
            ..SweepSpec::default()
        }
    }

    fn record() -> PointRecord {
        crate::exec::prelinted_record("test".to_string())
    }

    #[test]
    fn create_record_reopen_round_trips() {
        let path = tmp_log("roundtrip");
        let policy = ExecutionPolicy::default();
        let log = CheckpointLog::attach(&path, &spec(), &policy, false).unwrap();
        assert!(log.is_empty());
        log.record(0xabc, "720p30/1ch", &record()).unwrap();
        log.record(0xdef, "720p30/2ch", &record()).unwrap();
        assert_eq!(log.len(), 2);
        // Reopen: both points are known, the file survives process death.
        let back = CheckpointLog::attach(&path, &spec(), &policy, true).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup(0xabc), Some(record()));
        assert_eq!(back.lookup(0x123), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mismatched_sweeps_are_refused() {
        let path = tmp_log("mismatch");
        let policy = ExecutionPolicy::default();
        CheckpointLog::attach(&path, &spec(), &policy, false).unwrap();
        // A different grid must not resume from this log.
        let other = SweepSpec {
            channels: vec![1, 2, 4],
            ..spec()
        };
        assert!(matches!(
            CheckpointLog::attach(&path, &other, &policy, false).unwrap_err(),
            SweepError::Checkpoint { .. }
        ));
        // Same grid under a different execution policy: also refused —
        // the policy is part of the content key.
        let memo = ExecutionPolicy::default().with_memoize_steady(true);
        assert!(matches!(
            CheckpointLog::attach(&path, &spec(), &memo, false).unwrap_err(),
            SweepError::Checkpoint { .. }
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_requires_an_existing_log() {
        let path = tmp_log("missing");
        let e =
            CheckpointLog::attach(&path, &spec(), &ExecutionPolicy::default(), true).unwrap_err();
        assert!(matches!(e, SweepError::Checkpoint { .. }));
        assert!(e.to_string().contains("no such log"));
    }

    #[test]
    fn torn_trailing_lines_are_skipped_not_fatal() {
        let path = tmp_log("torn");
        let policy = ExecutionPolicy::default();
        let log = CheckpointLog::attach(&path, &spec(), &policy, false).unwrap();
        log.record(0x1, "a", &record()).unwrap();
        // Simulate a torn write from a crash mid-append.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\": \"0000000000000002\", \"label\": \"b\", \"rec");
        fs::write(&path, text).unwrap();
        let back = CheckpointLog::attach(&path, &spec(), &policy, true).unwrap();
        assert_eq!(back.len(), 1, "the torn point re-simulates");
        assert!(back.lookup(0x1).is_some());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn garbage_files_are_refused() {
        let path = tmp_log("garbage");
        fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(matches!(
            CheckpointLog::attach(&path, &spec(), &ExecutionPolicy::default(), false).unwrap_err(),
            SweepError::Checkpoint { .. }
        ));
        let _ = fs::remove_file(&path);
    }
}
