//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names one value list per experiment axis and expands to
//! the cartesian product via [`ExperimentBuilder`](mcm_core::ExperimentBuilder),
//! so every expanded point is validated the same way a hand-built
//! experiment is. Expansion order is deterministic and documented (see
//! [`SweepSpec::expand`]): results keyed by position are stable across
//! machines and thread counts.

use mcm_core::{ChunkPolicy, Experiment, Pacing};
use mcm_ctrl::{PagePolicy, PowerDownPolicy};
use mcm_dram::AddressMapping;
use mcm_fault::FaultPlan;
use mcm_load::{HdOperatingPoint, Workload};
use serde::{Deserialize, Serialize};

use crate::error::SweepError;

/// A cartesian grid over the experiment configuration space.
///
/// Every axis defaults to the single paper value, so a spec only names the
/// axes it actually sweeps:
///
/// ```
/// use mcm_load::HdOperatingPoint;
/// use mcm_sweep::SweepSpec;
///
/// let spec = SweepSpec {
///     points: vec![HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30],
///     channels: vec![2, 4],
///     op_limit: Some(5_000),
///     ..SweepSpec::default()
/// };
/// assert_eq!(spec.expand().unwrap().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// HD operating points (outermost loop).
    pub points: Vec<HdOperatingPoint>,
    /// Channel counts.
    pub channels: Vec<u32>,
    /// Interface clocks, MHz.
    pub clocks_mhz: Vec<u64>,
    /// Address mappings.
    pub mappings: Vec<AddressMapping>,
    /// Row-buffer policies.
    pub page_policies: Vec<PagePolicy>,
    /// CKE policies.
    pub power_down: Vec<PowerDownPolicy>,
    /// Master-transaction sizings.
    pub chunks: Vec<ChunkPolicy>,
    /// Arrival pacing.
    pub pacings: Vec<Pacing>,
    /// Workload models applied per point. The default single-`TableI`
    /// axis keeps paper sweeps (and their cache fingerprints) unchanged;
    /// naming e.g. `["h264-record", "vvc-record"]` compares codecs on
    /// otherwise identical hardware points.
    pub workloads: Vec<Workload>,
    /// Fault plans injected per point (innermost loop): `None` runs
    /// healthy, `Some(plan)` runs degraded. The default single-`None` axis
    /// keeps healthy sweeps (and their cache fingerprints) unchanged.
    pub faults: Vec<Option<FaultPlan>>,
    /// Optional cap on simulated operations, applied to every point
    /// (quick tests and smoke runs).
    pub op_limit: Option<u64>,
}

impl Default for SweepSpec {
    /// The paper's headline configuration on every axis, one value each.
    fn default() -> Self {
        SweepSpec {
            points: vec![HdOperatingPoint::Hd1080p30],
            channels: vec![4],
            clocks_mhz: vec![400],
            mappings: vec![AddressMapping::Rbc],
            page_policies: vec![PagePolicy::Open],
            power_down: vec![PowerDownPolicy::AfterIdleCycles(1)],
            chunks: vec![ChunkPolicy::PerChannel(64)],
            pacings: vec![Pacing::Greedy],
            workloads: vec![Workload::TableI],
            faults: vec![None],
            op_limit: None,
        }
    }
}

impl Serialize for SweepSpec {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("points".to_string(), self.points.to_value());
        m.insert("channels".to_string(), self.channels.to_value());
        m.insert("clocks_mhz".to_string(), self.clocks_mhz.to_value());
        m.insert("mappings".to_string(), self.mappings.to_value());
        m.insert("page_policies".to_string(), self.page_policies.to_value());
        m.insert("power_down".to_string(), self.power_down.to_value());
        m.insert("chunks".to_string(), self.chunks.to_value());
        m.insert("pacings".to_string(), self.pacings.to_value());
        // Always written (unlike `Experiment`'s elided default): spec JSON
        // is a user-facing document, and the axis must be discoverable.
        m.insert("workloads".to_string(), self.workloads.to_value());
        m.insert("faults".to_string(), self.faults.to_value());
        m.insert("op_limit".to_string(), self.op_limit.to_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for SweepSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for SweepSpec"))?;
        let field = |name: &str| {
            obj.get(name)
                .ok_or_else(|| serde::Error::missing_field(name))
        };
        Ok(SweepSpec {
            points: Deserialize::from_value(field("points")?)?,
            channels: Deserialize::from_value(field("channels")?)?,
            clocks_mhz: Deserialize::from_value(field("clocks_mhz")?)?,
            mappings: Deserialize::from_value(field("mappings")?)?,
            page_policies: Deserialize::from_value(field("page_policies")?)?,
            power_down: Deserialize::from_value(field("power_down")?)?,
            chunks: Deserialize::from_value(field("chunks")?)?,
            pacings: Deserialize::from_value(field("pacings")?)?,
            // Optional for specs written before the workload axis existed.
            workloads: match obj.get("workloads") {
                Some(v) => Deserialize::from_value(v)?,
                None => vec![Workload::TableI],
            },
            faults: Deserialize::from_value(field("faults")?)?,
            op_limit: Deserialize::from_value(field("op_limit")?)?,
        })
    }
}

/// One expanded grid point: a validated experiment plus its coordinates.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable coordinates, e.g. `720p@30/4ch/400MHz`. Axes the
    /// spec does not sweep (single-value axes beyond the first three) are
    /// omitted from the label.
    pub label: String,
    /// Operating point of this cell.
    pub point: HdOperatingPoint,
    /// Channel count of this cell.
    pub channels: u32,
    /// Interface clock of this cell, MHz.
    pub clock_mhz: u64,
    /// Workload model of this cell.
    pub workload: Workload,
    /// Fault plan of this cell (`None` runs healthy).
    pub faults: Option<FaultPlan>,
    /// The validated experiment.
    pub experiment: Experiment,
}

impl SweepSpec {
    /// The paper's Fig. 4/Fig. 5 grid: all five HD operating points across
    /// 1, 2, 4 and 8 channels at 400 MHz.
    pub fn paper_grid() -> Self {
        SweepSpec {
            points: HdOperatingPoint::ALL.to_vec(),
            channels: vec![1, 2, 4, 8],
            ..SweepSpec::default()
        }
    }

    /// Number of points the spec expands to.
    pub fn len(&self) -> usize {
        self.points.len()
            * self.channels.len()
            * self.clocks_mhz.len()
            * self.mappings.len()
            * self.page_policies.len()
            * self.power_down.len()
            * self.chunks.len()
            * self.pacings.len()
            * self.workloads.len()
            * self.faults.len()
    }

    /// Whether any axis is empty (the spec expands to nothing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into validated experiments.
    ///
    /// Loop order, outermost first: points → channels → clocks → mappings
    /// → page policies → power-down policies → chunks → pacings →
    /// workloads → fault plans. The returned order is the result order of
    /// every sweep run, independent of thread count.
    ///
    /// Any axis left empty yields [`SweepError::EmptySpec`]; a combination
    /// that fails experiment validation yields [`SweepError::Point`] naming
    /// the offending coordinates.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, SweepError> {
        for (axis, empty) in [
            ("points", self.points.is_empty()),
            ("channels", self.channels.is_empty()),
            ("clocks_mhz", self.clocks_mhz.is_empty()),
            ("mappings", self.mappings.is_empty()),
            ("page_policies", self.page_policies.is_empty()),
            ("power_down", self.power_down.is_empty()),
            ("chunks", self.chunks.is_empty()),
            ("pacings", self.pacings.is_empty()),
            ("workloads", self.workloads.is_empty()),
            ("faults", self.faults.is_empty()),
        ] {
            if empty {
                return Err(SweepError::EmptySpec { axis });
            }
        }
        let mut out = Vec::with_capacity(self.len());
        for &point in &self.points {
            for &channels in &self.channels {
                for &clock_mhz in &self.clocks_mhz {
                    for &mapping in &self.mappings {
                        for &page in &self.page_policies {
                            for &pd in &self.power_down {
                                for &chunk in &self.chunks {
                                    for &pacing in &self.pacings {
                                        for &workload in &self.workloads {
                                            for plan in &self.faults {
                                                let label = self.label(
                                                    point,
                                                    channels,
                                                    clock_mhz,
                                                    mapping,
                                                    page,
                                                    pd,
                                                    chunk,
                                                    pacing,
                                                    workload,
                                                    plan.as_ref(),
                                                );
                                                let mut builder = Experiment::builder()
                                                    .point(point)
                                                    .channels(channels)
                                                    .clock_mhz(clock_mhz)
                                                    .mapping(mapping)
                                                    .page_policy(page)
                                                    .power_down(pd)
                                                    .chunk(chunk)
                                                    .pacing(pacing)
                                                    .workload(workload);
                                                if let Some(ops) = self.op_limit {
                                                    builder = builder.op_limit(ops);
                                                }
                                                let experiment =
                                                    builder.build().map_err(|source| {
                                                        SweepError::Point {
                                                            label: label.clone(),
                                                            source,
                                                        }
                                                    })?;
                                                out.push(SweepPoint {
                                                    label,
                                                    point,
                                                    channels,
                                                    clock_mhz,
                                                    workload,
                                                    faults: plan.clone(),
                                                    experiment,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Deterministic shard `index` of `of`: the expanded points whose
    /// global expansion index `g` satisfies `g % of == index`, in expansion
    /// order. The `of` shards are disjoint, their union is exactly
    /// [`SweepSpec::expand`], and the `k`-th point of shard `index` sits at
    /// global index `index + k * of` — which is how
    /// [`merge_shards`](crate::merge_shards) reassembles the grid without
    /// storing explicit indices.
    ///
    /// `shard(0, 1)` is `expand()`. An `index >= of` or `of == 0` is a
    /// typed [`SweepError::Shard`].
    pub fn shard(&self, index: usize, of: usize) -> Result<Vec<SweepPoint>, SweepError> {
        if of == 0 {
            return Err(SweepError::Shard {
                reason: "cannot split a sweep into 0 shards".to_string(),
            });
        }
        if index >= of {
            return Err(SweepError::Shard {
                reason: format!("shard index {index} is out of range for {of} shard(s)"),
            });
        }
        Ok(self
            .expand()?
            .into_iter()
            .enumerate()
            .filter(|(g, _)| g % of == index)
            .map(|(_, p)| p)
            .collect())
    }

    #[allow(clippy::too_many_arguments)]
    fn label(
        &self,
        point: HdOperatingPoint,
        channels: u32,
        clock_mhz: u64,
        mapping: AddressMapping,
        page: PagePolicy,
        pd: PowerDownPolicy,
        chunk: ChunkPolicy,
        pacing: Pacing,
        workload: Workload,
        plan: Option<&FaultPlan>,
    ) -> String {
        let mut label = format!(
            "{}@{}/{}ch/{}MHz",
            point.format(),
            point.fps(),
            channels,
            clock_mhz
        );
        // Secondary axes only show up in labels when actually swept.
        if self.mappings.len() > 1 {
            label.push_str(&format!("/{mapping}"));
        }
        if self.page_policies.len() > 1 {
            label.push_str(&format!("/{page}"));
        }
        if self.power_down.len() > 1 {
            label.push_str(&format!("/{pd}"));
        }
        if self.chunks.len() > 1 {
            label.push_str(&match chunk {
                ChunkPolicy::Fixed(n) => format!("/fixed{n}B"),
                ChunkPolicy::PerChannel(n) => format!("/{n}B-per-ch"),
            });
        }
        if self.pacings.len() > 1 {
            label.push_str(match pacing {
                Pacing::Greedy => "/greedy",
                Pacing::Paced => "/paced",
            });
        }
        if self.workloads.len() > 1 {
            label.push_str(&format!("/{}", workload.name()));
        }
        if self.faults.len() > 1 {
            label.push_str(&match plan {
                Some(p) => format!("/faults#{:#x}+{}", p.seed, p.faults.len()),
                None => "/healthy".to_string(),
            });
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_is_five_by_four() {
        let spec = SweepSpec::paper_grid();
        assert_eq!(spec.len(), 20);
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 20);
        // Outermost loop is the operating point: first four share 720p30.
        assert!(points[..4]
            .iter()
            .all(|p| p.point == HdOperatingPoint::Hd720p30));
        assert_eq!(
            points
                .iter()
                .map(|p| p.channels)
                .take(4)
                .collect::<Vec<_>>(),
            vec![1, 2, 4, 8]
        );
        // Labels are unique coordinates.
        let mut labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 20);
    }

    #[test]
    fn empty_axis_is_a_typed_error() {
        let spec = SweepSpec {
            channels: vec![],
            ..SweepSpec::default()
        };
        assert!(spec.is_empty());
        assert_eq!(
            spec.expand().unwrap_err(),
            SweepError::EmptySpec { axis: "channels" }
        );
    }

    #[test]
    fn invalid_combination_names_the_point() {
        let spec = SweepSpec {
            channels: vec![3],
            ..SweepSpec::default()
        };
        match spec.expand().unwrap_err() {
            SweepError::Point { label, .. } => assert!(label.contains("3ch"), "{label}"),
            other => panic!("expected Point error, got {other}"),
        }
    }

    #[test]
    fn secondary_axes_appear_in_labels_only_when_swept() {
        let plain = SweepSpec::default().expand().unwrap();
        assert!(!plain[0].label.contains("page"));
        let swept = SweepSpec {
            page_policies: vec![PagePolicy::Open, PagePolicy::Closed],
            ..SweepSpec::default()
        };
        let labels: Vec<String> = swept
            .expand()
            .unwrap()
            .into_iter()
            .map(|p| p.label)
            .collect();
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SweepSpec::paper_grid();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn fault_axis_expands_innermost_and_labels_only_when_swept() {
        let spec = SweepSpec {
            channels: vec![2, 4],
            faults: vec![None, Some(FaultPlan::channel_loss(9, 0))],
            op_limit: Some(1_000),
            ..SweepSpec::default()
        };
        assert_eq!(spec.len(), 4);
        let points = spec.expand().unwrap();
        // Innermost loop: healthy/faulted alternate within a channel count.
        assert!(points[0].faults.is_none());
        assert!(points[1].faults.is_some());
        assert_eq!(points[0].channels, points[1].channels);
        assert!(points[0].label.ends_with("/healthy"), "{}", points[0].label);
        assert!(
            points[1].label.contains("/faults#0x9"),
            "{}",
            points[1].label
        );
        // A single-None axis leaves labels untouched.
        let plain = SweepSpec::default().expand().unwrap();
        assert!(!plain[0].label.contains("healthy"));
        assert!(plain[0].faults.is_none());
    }

    #[test]
    fn fault_axis_round_trips_through_json() {
        let spec = SweepSpec {
            faults: vec![None, Some(FaultPlan::channel_loss(3, 1))],
            ..SweepSpec::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn workload_axis_expands_and_labels_only_when_swept() {
        let spec = SweepSpec {
            workloads: vec![
                Workload::TableI,
                Workload::parse("vvc-record").unwrap(),
                Workload::parse("stochastic:7").unwrap(),
            ],
            op_limit: Some(1_000),
            ..SweepSpec::default()
        };
        assert_eq!(spec.len(), 3);
        let points = spec.expand().unwrap();
        assert_eq!(points[0].workload, Workload::TableI);
        assert!(
            points[0].label.ends_with("/h264-record"),
            "{}",
            points[0].label
        );
        assert!(
            points[1].label.ends_with("/vvc-record"),
            "{}",
            points[1].label
        );
        assert!(
            points[2].label.ends_with("/stochastic:7"),
            "{}",
            points[2].label
        );
        // The expanded experiment carries the workload into the engine.
        assert_eq!(points[1].experiment.workload, points[1].workload);
        // A single-TableI axis leaves labels and experiments untouched.
        let plain = SweepSpec::default().expand().unwrap();
        assert!(!plain[0].label.contains("h264"));
        assert!(plain[0].experiment.workload.is_default());
    }

    #[test]
    fn workload_axis_round_trips_and_is_optional_in_json() {
        let spec = SweepSpec {
            workloads: vec![Workload::TableI, Workload::MultiTenant(3)],
            ..SweepSpec::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Specs written before the axis existed still parse, defaulting to
        // the paper's Table I chain; the axis is always written out.
        let default_json = serde_json::to_string(&SweepSpec::default()).unwrap();
        assert!(default_json.contains("\"workloads\""), "{default_json}");
        let v: serde_json::Value = serde_json::from_str(&default_json).unwrap();
        let mut stripped = serde_json::Map::new();
        for (k, val) in v.as_object().unwrap().iter() {
            if k != "workloads" {
                stripped.insert(k.clone(), val.clone());
            }
        }
        let legacy = SweepSpec::from_value(&serde_json::Value::Object(stripped)).unwrap();
        assert_eq!(legacy, SweepSpec::default());
    }

    #[test]
    fn shards_partition_the_expansion() {
        let spec = SweepSpec::paper_grid();
        let full: Vec<String> = spec
            .expand()
            .unwrap()
            .into_iter()
            .map(|p| p.label)
            .collect();
        for of in [1usize, 2, 3, 7, 20, 23] {
            let mut merged: Vec<(usize, String)> = Vec::new();
            for index in 0..of {
                for (k, p) in spec.shard(index, of).unwrap().into_iter().enumerate() {
                    merged.push((index + k * of, p.label));
                }
            }
            merged.sort_by_key(|(g, _)| *g);
            assert_eq!(
                merged.iter().map(|(_, l)| l.clone()).collect::<Vec<_>>(),
                full,
                "{of} shards must reassemble the grid"
            );
        }
        // More shards than points: the extras are empty, nothing is lost.
        assert!(spec.shard(22, 23).unwrap().is_empty());
    }

    #[test]
    fn bad_shard_selectors_are_typed_errors() {
        let spec = SweepSpec::default();
        assert!(matches!(
            spec.shard(0, 0).unwrap_err(),
            SweepError::Shard { .. }
        ));
        assert!(matches!(
            spec.shard(2, 2).unwrap_err(),
            SweepError::Shard { .. }
        ));
    }

    #[test]
    fn op_limit_reaches_every_experiment() {
        let spec = SweepSpec {
            op_limit: Some(1_234),
            ..SweepSpec::default()
        };
        let points = spec.expand().unwrap();
        assert!(points.iter().all(|p| p.experiment.op_limit == Some(1_234)));
    }
}
