//! The parallel, cached sweep front end.
//!
//! [`run_sweep_on`] expands a [`SweepSpec`] into [`WorkItem`]s, submits
//! them to a caller-supplied [`Executor`] (`&RayonExecutor::default()` is
//! the stock single-job choice), blocks on the result, and returns
//! outcomes **in expansion order**
//! regardless of thread count. A panicking or erroring point becomes a
//! typed per-point error, not a dead sweep. The JSON/CSV exports
//! deliberately exclude wall-clock data so a parallel run's output is
//! byte-identical to a serial run's; the provenance export
//! ([`SweepResult::to_json_with_provenance`]) is the one that explains
//! *how* each answer was produced.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mcm_core::runner::run_isolated;
use mcm_core::{BatchRunner, CoreError, ExecutionPolicy, Experiment, FrameResult, RunOptions};
use mcm_load::HdOperatingPoint;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cache::PointRecord;
use crate::checkpoint::CheckpointLog;
use crate::error::SweepError;
use crate::exec::{Executor, RayonExecutor, WorkItem};
use crate::spec::{SweepPoint, SweepSpec};

/// How a sweep executes: worker threads, caching, per-point run options,
/// live progress.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker thread count. `None` defers to rayon's default (the
    /// `RAYON_NUM_THREADS` environment variable, then the machine).
    pub threads: Option<usize>,
    /// Directory for the content-hash result cache; `None` disables
    /// caching and simulates every point.
    pub cache_dir: Option<PathBuf>,
    /// Options applied to every point's [`Experiment::run_with`] call.
    /// Sweeps are single-frame: `frames` must stay `1`.
    pub run: RunOptions,
    /// Print one progress line per completed point to stderr.
    pub progress: bool,
    /// Attach a fresh [`mcm_obs::StatsRecorder`] to every freshly simulated
    /// point and distill it into [`PointOutcome::obs`]. Cached points carry
    /// `None` (no simulation ran), as do all points when
    /// [`SweepOptions::run`] already brings its own recorder — a shared
    /// recorder cannot be split back into per-point summaries.
    pub observe: bool,
    /// Run the `mcm-analyze` static rules (`MCM4xx`) over every healthy
    /// point *before* the thread pool and answer statically-infeasible
    /// points instantly with a synthesized infeasible record carrying the
    /// analyzer's witness as its reason. Faulted points are never prelinted
    /// (graceful degradation could rescue what the static model condemns),
    /// and prelinted points bypass the cache in both directions.
    pub prelint: bool,
    /// Crash-safe progress log. Points already in the log are answered from
    /// it without simulating (marked `resumed` in provenance, distinct from
    /// cache hits); every newly completed point is appended, so a killed
    /// sweep picks up where it died via `mcm sweep --resume`. `None` (the
    /// default) neither reads nor writes a log.
    pub checkpoint: Option<CheckpointLog>,
}

impl SweepOptions {
    /// Sets the worker thread count (builder style):
    /// `SweepOptions::default().with_threads(4)`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables the disk result cache under `dir` (builder style).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Replaces the per-point [`RunOptions`] (builder style). Sweeps are
    /// single-frame: `run.frames` must stay `1`.
    pub fn with_run(mut self, run: RunOptions) -> Self {
        self.run = run;
        self
    }

    /// Enables per-point progress lines on stderr (builder style).
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Enables per-point observability summaries (builder style); see
    /// [`SweepOptions::observe`] for when summaries are actually attached.
    pub fn with_observe(mut self, observe: bool) -> Self {
        self.observe = observe;
        self
    }

    /// Enables static pre-simulation pruning (builder style); see
    /// [`SweepOptions::prelint`].
    pub fn with_prelint(mut self, prelint: bool) -> Self {
        self.prelint = prelint;
        self
    }

    /// Attaches a crash-safe checkpoint log (builder style); see
    /// [`SweepOptions::checkpoint`].
    pub fn with_checkpoint(mut self, log: CheckpointLog) -> Self {
        self.checkpoint = Some(log);
        self
    }

    /// Sets the [`ExecutionPolicy`] applied to every point's run (builder
    /// style) — shorthand for rebuilding [`SweepOptions::run`] via
    /// [`RunOptions::with_execution`]. The default policy serializes to
    /// nothing, so cache keys for default-policy sweeps are unchanged.
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.run = self.run.with_execution(execution);
        self
    }
}

/// One executed grid point: coordinates plus either its distilled record
/// or a typed per-point error.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Human-readable coordinates (see [`SweepPoint::label`](crate::SweepPoint)).
    pub label: String,
    /// Operating point of this cell.
    pub point: HdOperatingPoint,
    /// Channel count of this cell.
    pub channels: u32,
    /// Interface clock of this cell, MHz.
    pub clock_mhz: u64,
    /// The distilled result, or why this point failed.
    pub outcome: Result<PointRecord, SweepError>,
    /// Whether the result came from the cache (no simulation ran).
    pub cached: bool,
    /// Whether the static analyzer answered this point (no simulation ran);
    /// the record's `infeasible_reason` then carries the `MCM4xx` witness.
    pub prelinted: bool,
    /// Shared content key ([`content_key`](crate::content_key)) of this
    /// point, when one was computed. Prelinted points carry `None` — they
    /// bypass the keyed store entirely. Like [`PointOutcome::elapsed`],
    /// this is run provenance: the deterministic exports exclude it.
    pub key: Option<u64>,
    /// Whether the result came from a checkpoint log — a previous run of
    /// this same sweep completed the point before dying. Distinct from
    /// [`PointOutcome::cached`]: the cache is keyed by experiment content
    /// and shared across sweeps, the checkpoint log belongs to one sweep.
    pub resumed: bool,
    /// Wall-clock time spent on this point (lookup or simulation).
    pub elapsed: Duration,
    /// Observability distillation of this point's simulation, when
    /// [`SweepOptions::observe`] was set and the point actually simulated.
    /// Like [`PointOutcome::elapsed`], this is run provenance, not result
    /// data: the deterministic exports exclude it.
    pub obs: Option<mcm_obs::ObsSummary>,
}

/// Aggregate counters and timing for one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Points in the sweep.
    pub total: usize,
    /// Points actually simulated this run.
    pub simulated: usize,
    /// Points answered from the cache.
    pub cached: usize,
    /// Points answered from a checkpoint log (a previous run of this sweep
    /// completed them before dying).
    pub resumed: usize,
    /// Points answered by the static analyzer without simulating.
    pub prelinted: usize,
    /// Points whose configuration cannot hold the frame buffers.
    pub infeasible: usize,
    /// Points that errored or panicked.
    pub failed: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// The single slowest point's time and label.
    pub slowest: Option<(Duration, String)>,
}

impl Serialize for SweepStats {
    // Hand-written: `Duration` fields serialize as milliseconds, and the
    // `slowest` pair becomes a named object instead of a tuple.
    fn to_value(&self) -> serde::Value {
        serde_json::json!({
            "total": self.total,
            "simulated": self.simulated,
            "cached": self.cached,
            "resumed": self.resumed,
            "prelinted": self.prelinted,
            "infeasible": self.infeasible,
            "failed": self.failed,
            "wall_ms": self.wall.as_secs_f64() * 1e3,
            "slowest": self.slowest.as_ref().map(|(t, label)| {
                serde_json::json!({
                    "ms": t.as_secs_f64() * 1e3,
                    "label": label
                })
            })
        })
    }
}

impl core::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} points: {} simulated, {} cached, ",
            self.total, self.simulated, self.cached
        )?;
        // Rendered only when a checkpoint log actually answered points, so
        // logs of checkpoint-free sweeps are unchanged.
        if self.resumed > 0 {
            write!(f, "{} resumed, ", self.resumed)?;
        }
        // Rendered only when prelinting actually pruned something, so logs
        // of prelint-free sweeps are unchanged.
        if self.prelinted > 0 {
            write!(f, "{} prelinted, ", self.prelinted)?;
        }
        write!(
            f,
            "{} infeasible, {} failed in {:.2} s",
            self.infeasible,
            self.failed,
            self.wall.as_secs_f64()
        )?;
        if let Some((t, label)) = &self.slowest {
            write!(f, " (slowest {:.0} ms: {label})", t.as_secs_f64() * 1e3)?;
        }
        Ok(())
    }
}

/// A completed sweep: per-point outcomes in expansion order, plus stats.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One outcome per expanded point, in [`SweepSpec::expand`] order.
    pub points: Vec<PointOutcome>,
    /// Aggregate counters and timing.
    pub stats: SweepStats,
}

/// One row of the deterministic exports. Wall-clock time and cache hits
/// are intentionally absent: a 16-thread run and a serial run of the same
/// spec serialize byte-identically. `Deserialize` exists so shard documents
/// can be merged back through the *same* renderers — the merge output is
/// byte-identical to the unsharded run's by construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ExportRow {
    pub(crate) label: String,
    pub(crate) format: String,
    pub(crate) channels: u32,
    pub(crate) clock_mhz: u64,
    pub(crate) error: Option<String>,
    pub(crate) record: Option<PointRecord>,
}

/// The one JSON renderer behind [`SweepResult::to_json`] and shard merging.
pub(crate) fn rows_to_json(rows: &[ExportRow]) -> String {
    let value = serde::Value::Array(rows.iter().map(|r| r.to_value()).collect());
    serde_json::to_string_pretty(&value).expect("export rows are serializable")
}

/// The one CSV renderer behind [`SweepResult::to_csv`] and shard merging.
pub(crate) fn rows_to_csv(rows: &[ExportRow]) -> String {
    let mut out = String::from(
        "label,format,channels,clock_mhz,feasible,verdict,access_ms,budget_ms,core_mw,\
         interface_mw,total_mw,efficiency,energy_per_bit_pj,planned_bytes,simulated_bytes,\
         peak_gbytes_per_s,error\n",
    );
    let fmt_f64 = |v: Option<f64>| v.map(|v| format!("{v:.6}")).unwrap_or_default();
    for row in rows {
        let r = row.record.as_ref();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            row.label,
            row.format,
            row.channels,
            row.clock_mhz,
            r.map(|r| r.feasible.to_string()).unwrap_or_default(),
            r.and_then(|r| r.verdict.clone()).unwrap_or_default(),
            fmt_f64(r.and_then(|r| r.access_ms)),
            fmt_f64(r.and_then(|r| r.budget_ms)),
            fmt_f64(r.and_then(|r| r.core_mw)),
            fmt_f64(r.and_then(|r| r.interface_mw)),
            fmt_f64(r.and_then(|r| r.total_mw())),
            fmt_f64(r.and_then(|r| r.efficiency)),
            fmt_f64(r.and_then(|r| r.energy_per_bit_pj)),
            r.map(|r| r.planned_bytes.to_string()).unwrap_or_default(),
            r.map(|r| r.simulated_bytes.to_string()).unwrap_or_default(),
            fmt_f64(r.map(|r| r.peak_gbytes_per_s)),
            row.error.clone().unwrap_or_default().replace(',', ";"),
        ));
    }
    out
}

impl SweepResult {
    pub(crate) fn export_rows(&self) -> Vec<ExportRow> {
        self.points
            .iter()
            .map(|p| ExportRow {
                label: p.label.clone(),
                format: format!("{}@{}", p.point.format(), p.point.fps()),
                channels: p.channels,
                clock_mhz: p.clock_mhz,
                error: p.outcome.as_ref().err().map(|e| e.to_string()),
                record: p.outcome.as_ref().ok().cloned(),
            })
            .collect()
    }

    /// Deterministic JSON export (no timing, no cache provenance): the
    /// same spec produces byte-identical output at any thread count and
    /// any cache temperature.
    pub fn to_json(&self) -> String {
        rows_to_json(&self.export_rows())
    }

    /// The provenance export: everything [`SweepResult::to_json`] carries
    /// *plus*, per point, how the answer was produced — `cached` /
    /// `prelinted` flags, the shared content key (the cache/store entry
    /// name), wall-clock `elapsed_ms`, and the observability summary when
    /// one was recorded — and the aggregate [`SweepStats`]. This is the
    /// export server job results are built from; unlike `to_json()` it is
    /// **not** stable across cache temperatures or thread counts.
    pub fn to_json_with_provenance(&self) -> String {
        let points: Vec<serde::Value> = self
            .points
            .iter()
            .zip(self.export_rows())
            .map(|(p, row)| {
                serde_json::json!({
                    "label": row.label,
                    "format": row.format,
                    "channels": row.channels,
                    "clock_mhz": row.clock_mhz,
                    "error": row.error,
                    "record": row.record,
                    "cached": p.cached,
                    "resumed": p.resumed,
                    "prelinted": p.prelinted,
                    "key": p.key.map(|k| format!("{k:016x}")),
                    "elapsed_ms": p.elapsed.as_secs_f64() * 1e3,
                    "obs": p.obs
                })
            })
            .collect();
        let value = serde_json::json!({
            "points": points,
            "stats": self.stats
        });
        serde_json::to_string_pretty(&value).expect("provenance rows are serializable")
    }

    /// Deterministic CSV export with one row per point.
    pub fn to_csv(&self) -> String {
        rows_to_csv(&self.export_rows())
    }
}

/// Folds executed outcomes into the aggregate counters.
pub(crate) fn collect_stats(points: &[PointOutcome], wall: Duration) -> SweepStats {
    let mut stats = SweepStats {
        total: points.len(),
        simulated: 0,
        cached: 0,
        resumed: 0,
        prelinted: 0,
        infeasible: 0,
        failed: 0,
        wall,
        slowest: None,
    };
    for o in points {
        match &o.outcome {
            Ok(record) => {
                if o.prelinted {
                    stats.prelinted += 1;
                } else if o.resumed {
                    stats.resumed += 1;
                } else if o.cached {
                    stats.cached += 1;
                } else {
                    stats.simulated += 1;
                }
                if !record.feasible {
                    stats.infeasible += 1;
                }
            }
            Err(_) => stats.failed += 1,
        }
        if stats
            .slowest
            .as_ref()
            .map(|(t, _)| o.elapsed > *t)
            .unwrap_or(true)
        {
            stats.slowest = Some((o.elapsed, o.label.clone()));
        }
    }
    stats
}

/// Deprecated thin wrapper over [`run_sweep_on`] with a private
/// single-job [`RayonExecutor`]. Kept only for source compatibility;
/// byte-identity with the replacement is pinned in
/// `tests/determinism.rs`.
#[deprecated(
    since = "0.1.0",
    note = "call run_sweep_on(&RayonExecutor::default(), spec, options)"
)]
pub fn run_sweep(spec: &SweepSpec, options: &SweepOptions) -> Result<SweepResult, SweepError> {
    run_sweep_on(&RayonExecutor::default(), spec, options)
}

/// The sweep entry point: expands `spec` and executes every point under
/// `options` on a caller-supplied [`Executor`] — submit one job, block on
/// its outcomes, fold them back into a [`SweepResult`]. Pass
/// `&RayonExecutor::default()` for the stock synchronous single-job
/// executor (the same machinery `mcm serve` drives asynchronously).
///
/// Results come back in [`SweepSpec::expand`] order whatever the thread
/// count; per-point failures are carried in [`PointOutcome::outcome`], and
/// only sweep-level problems (empty axes, invalid options, an unusable
/// cache directory) abort the call.
pub fn run_sweep_on(
    executor: &dyn Executor,
    spec: &SweepSpec,
    options: &SweepOptions,
) -> Result<SweepResult, SweepError> {
    run_points_on(executor, spec.expand()?, options)
}

/// Executes an already-expanded point list — the shared back half of
/// [`run_sweep_on`] and the sharded entry point
/// ([`run_sweep_shard_on`](crate::run_sweep_shard_on)).
pub(crate) fn run_points_on(
    executor: &dyn Executor,
    points: Vec<SweepPoint>,
    options: &SweepOptions,
) -> Result<SweepResult, SweepError> {
    if options.run.frames != 1 {
        return Err(SweepError::BadOptions {
            reason: format!(
                "sweeps are single-frame (got frames = {}); use run_steady_state for sessions",
                options.run.frames
            ),
        });
    }
    let items: Vec<WorkItem> = points
        .iter()
        .map(|p| WorkItem {
            label: p.label.clone(),
            experiment: p.experiment.clone(),
            faults: p.faults.clone(),
        })
        .collect();
    let started = Instant::now();
    let job = executor.submit(items, options.clone())?;
    let outcomes = executor.collect(job)?;
    let points: Vec<PointOutcome> = points
        .into_iter()
        .zip(outcomes)
        .map(|(p, o)| PointOutcome {
            label: o.label,
            point: p.point,
            channels: p.channels,
            clock_mhz: p.clock_mhz,
            outcome: o.outcome,
            cached: o.cached,
            prelinted: o.prelinted,
            key: o.key,
            resumed: o.resumed,
            elapsed: o.elapsed,
            obs: o.obs,
        })
        .collect();
    let stats = collect_stats(&points, started.elapsed());
    Ok(SweepResult { points, stats })
}

/// A [`BatchRunner`] that executes batches through the shared
/// [`RayonExecutor`] scheduling path with per-point panic isolation —
/// plug it into `mcm-core`'s figure builders to compute whole grids in
/// parallel:
///
/// ```
/// use mcm_core::figures;
/// use mcm_sweep::ParallelRunner;
///
/// let grid = figures::fig3_data_with(&ParallelRunner::new()).unwrap();
/// assert!(!grid.cells.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ParallelRunner {
    exec: RayonExecutor,
    threads: Option<usize>,
}

impl ParallelRunner {
    /// Uses rayon's default worker count (`RAYON_NUM_THREADS`, then the
    /// machine).
    pub fn new() -> Self {
        ParallelRunner {
            exec: RayonExecutor::new(1),
            threads: None,
        }
    }

    /// Uses exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ParallelRunner {
            exec: RayonExecutor::new(1),
            threads: Some(threads),
        }
    }
}

impl BatchRunner for ParallelRunner {
    fn run_batch(&self, experiments: &[Experiment]) -> Vec<Result<FrameResult, CoreError>> {
        self.exec.run_inline(self.threads, || {
            experiments.par_iter().map(run_isolated).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> SweepSpec {
        SweepSpec {
            points: vec![HdOperatingPoint::Hd720p30],
            channels: vec![1, 2, 4],
            op_limit: Some(2_000),
            ..SweepSpec::default()
        }
    }

    #[test]
    fn sweep_results_keep_expansion_order() {
        let result = run_sweep_on(
            &RayonExecutor::default(),
            &quick_spec(),
            &SweepOptions::default().with_threads(3),
        )
        .unwrap();
        assert_eq!(
            result.points.iter().map(|p| p.channels).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert_eq!(result.stats.simulated, 3);
        assert_eq!(result.stats.cached, 0);
        assert_eq!(result.stats.failed, 0);
        assert!(result.stats.slowest.is_some());
    }

    #[test]
    fn steady_options_are_rejected() {
        let mut options = SweepOptions::default();
        options.run.frames = 5;
        assert!(matches!(
            run_sweep_on(&RayonExecutor::default(), &quick_spec(), &options),
            Err(SweepError::BadOptions { .. })
        ));
    }

    #[test]
    fn infeasible_points_are_counted_not_fatal() {
        let spec = SweepSpec {
            points: vec![HdOperatingPoint::Uhd2160p30],
            channels: vec![1, 8],
            op_limit: Some(2_000),
            ..SweepSpec::default()
        };
        let result =
            run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).unwrap();
        assert_eq!(result.stats.infeasible, 1);
        assert_eq!(result.stats.failed, 0);
        assert!(!result.points[0].outcome.as_ref().unwrap().feasible);
        assert!(result.points[1].outcome.as_ref().unwrap().feasible);
    }

    #[test]
    fn parallel_runner_matches_serial_runner() {
        let exps: Vec<Experiment> = quick_spec()
            .expand()
            .unwrap()
            .into_iter()
            .map(|p| p.experiment)
            .collect();
        let serial = mcm_core::SerialRunner.run_batch(&exps);
        let parallel = ParallelRunner::with_threads(2).run_batch(&exps);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.as_ref().unwrap().access_time,
                p.as_ref().unwrap().access_time
            );
        }
    }

    #[test]
    fn observe_attaches_per_point_summaries() {
        let dir = std::env::temp_dir().join(format!("mcm-sweep-obs-{}", std::process::id()));
        let options = SweepOptions::default()
            .with_cache_dir(dir.clone())
            .with_observe(true);
        let fresh = run_sweep_on(&RayonExecutor::default(), &quick_spec(), &options).unwrap();
        for p in &fresh.points {
            let s = p.obs.as_ref().expect("simulated point carries obs");
            assert!(s.requests > 0, "{}", p.label);
            assert!(s.bytes_read + s.bytes_written > 0);
        }
        // Cached re-run: no simulation, no summaries — and the
        // deterministic exports never mention obs either way.
        let warm = run_sweep_on(&RayonExecutor::default(), &quick_spec(), &options).unwrap();
        assert_eq!(warm.stats.cached, 3);
        assert!(warm.points.iter().all(|p| p.obs.is_none()));
        assert_eq!(fresh.to_json(), warm.to_json());
        assert!(!fresh.to_json().contains("\"requests\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn provenance_export_explains_each_point() {
        let dir = std::env::temp_dir().join(format!("mcm-sweep-prov-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = SweepOptions::default().with_cache_dir(dir.clone());
        let fresh = run_sweep_on(&RayonExecutor::default(), &quick_spec(), &options).unwrap();
        let warm = run_sweep_on(&RayonExecutor::default(), &quick_spec(), &options).unwrap();
        // The deterministic export hides provenance; this one carries it.
        assert_eq!(fresh.to_json(), warm.to_json());
        let cold: serde::Value = serde_json::from_str(&fresh.to_json_with_provenance()).unwrap();
        let hot: serde::Value = serde_json::from_str(&warm.to_json_with_provenance()).unwrap();
        let cached = |v: &serde::Value, i: usize| {
            v.get("points").unwrap().as_array().unwrap()[i]
                .get("cached")
                .unwrap()
                .as_bool()
                .unwrap()
        };
        for i in 0..3 {
            assert!(!cached(&cold, i), "fresh run must not report cache hits");
            assert!(cached(&hot, i), "warm run must report cache hits");
        }
        // The shared content key is the cache entry's file name.
        let key = hot.get("points").unwrap().as_array().unwrap()[0]
            .get("key")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(dir.join(format!("{key}.json")).exists());
        // Aggregate stats ride along.
        let stats = hot.get("stats").unwrap();
        assert_eq!(stats.get("cached").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("simulated").unwrap().as_u64(), Some(0));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fault_points_run_degraded_and_cache_separately() {
        let dir = std::env::temp_dir().join(format!("mcm-sweep-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = SweepOptions::default().with_cache_dir(dir.clone());
        // Multi-channel cells only: losing a channel of one is a plan error.
        let base = SweepSpec {
            channels: vec![2, 4],
            ..quick_spec()
        };
        // Warm the cache with a healthy-only sweep.
        let healthy = run_sweep_on(&RayonExecutor::default(), &base, &options).unwrap();
        assert_eq!(healthy.stats.simulated, 2);
        // The same grid with a fault axis: healthy cells hit the warm cache
        // (their fingerprints are unchanged), faulted cells simulate fresh.
        let spec = SweepSpec {
            faults: vec![None, Some(mcm_fault::FaultPlan::channel_loss(5, 0))],
            ..base
        };
        let mixed = run_sweep_on(&RayonExecutor::default(), &spec, &options).unwrap();
        assert_eq!(mixed.stats.total, 4);
        assert_eq!(mixed.stats.cached, 2, "healthy fingerprints must be stable");
        assert_eq!(mixed.stats.simulated, 2);
        assert_eq!(mixed.stats.failed, 0);
        for pair in mixed.points.chunks(2) {
            let h = pair[0].outcome.as_ref().unwrap();
            let f = pair[1].outcome.as_ref().unwrap();
            assert!(pair[0].cached && !pair[1].cached);
            // Losing one of N channels can only slow the frame down.
            assert!(
                f.access_ms.unwrap() >= h.access_ms.unwrap(),
                "{}",
                pair[1].label
            );
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn prelint_prunes_the_infeasible_region_and_is_faster() {
        // 2160p30 across 1–8 channels at 400 MHz: one channel cannot hold
        // the frame buffers (MCM406) and 2/4 channels sit above the
        // bandwidth roofline (MCM405) — 75 % of the grid is statically
        // infeasible. Serial execution makes the pruning win deterministic.
        let spec = SweepSpec {
            points: vec![HdOperatingPoint::Uhd2160p30],
            channels: vec![1, 2, 4, 8],
            op_limit: Some(20_000),
            ..SweepSpec::default()
        };
        let base = SweepOptions::default().with_threads(1);
        let without = run_sweep_on(&RayonExecutor::default(), &spec, &base.clone()).unwrap();
        let with =
            run_sweep_on(&RayonExecutor::default(), &spec, &base.with_prelint(true)).unwrap();

        assert_eq!(without.stats.prelinted, 0);
        assert_eq!(without.stats.simulated, 4);
        assert_eq!(with.stats.prelinted, 3);
        assert_eq!(with.stats.simulated, 1);
        for p in &with.points[..3] {
            assert!(p.prelinted, "{}", p.label);
            let r = p.outcome.as_ref().unwrap();
            assert!(!r.feasible);
            let reason = r.infeasible_reason.as_deref().unwrap();
            assert!(reason.starts_with("MCM4"), "{reason}");
        }
        assert!(with.points[3].outcome.as_ref().unwrap().feasible);

        // Soundness: everything the analyzer pruned also failed when it was
        // actually simulated — layout overflow or a missed frame deadline.
        for (w, wo) in with.points.iter().zip(&without.points) {
            if w.prelinted {
                let dynamic = wo.outcome.as_ref().unwrap();
                assert!(
                    !dynamic.feasible || dynamic.verdict.as_deref() == Some("FAILS"),
                    "{}: prelint flagged a point the simulator accepted",
                    wo.label
                );
            }
        }

        // The acceptance criterion: pruning ≥ 30 % of the grid must make
        // the sweep measurably faster than simulating everything.
        assert!(
            with.stats.wall < without.stats.wall,
            "prelinted sweep ({:?}) not faster than full sweep ({:?})",
            with.stats.wall,
            without.stats.wall
        );

        // The stats line mentions pruning only when it happened.
        assert!(!without.stats.to_string().contains("prelinted"));
        assert!(with.stats.to_string().contains("3 prelinted"));
    }

    #[test]
    fn prelint_leaves_faulted_points_to_the_simulator() {
        // 2160p30 on 4 channels is above the roofline, but the faulted cell
        // must still simulate: degradation policies may shed load and
        // rescue it, so the static verdict only binds healthy cells.
        let spec = SweepSpec {
            points: vec![HdOperatingPoint::Uhd2160p30],
            channels: vec![4],
            faults: vec![None, Some(mcm_fault::FaultPlan::channel_loss(5, 0))],
            op_limit: Some(2_000),
            ..SweepSpec::default()
        };
        let result = run_sweep_on(
            &RayonExecutor::default(),
            &spec,
            &SweepOptions::default().with_prelint(true),
        )
        .unwrap();
        assert_eq!(result.stats.total, 2);
        assert_eq!(result.stats.prelinted, 1);
        assert_eq!(result.stats.simulated, 1);
        assert!(result.points[0].prelinted, "healthy cell is pruned");
        assert!(!result.points[1].prelinted, "faulted cell must simulate");
    }

    #[test]
    fn exports_have_one_row_per_point() {
        let result = run_sweep_on(
            &RayonExecutor::default(),
            &quick_spec(),
            &SweepOptions::default(),
        )
        .unwrap();
        let json = result.to_json();
        assert_eq!(json.matches("\"label\"").count(), 3);
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 points
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .contains("1280x720@30/1ch/400MHz"));
    }

    #[test]
    fn per_channel_execution_matches_serial_byte_for_byte() {
        // The point-level parallel policy must not perturb any exported
        // number; only provenance (wall clock) may differ.
        let exec = RayonExecutor::default();
        let serial = run_sweep_on(&exec, &quick_spec(), &SweepOptions::default()).unwrap();
        let parallel = run_sweep_on(
            &exec,
            &quick_spec(),
            &SweepOptions::default().with_execution(ExecutionPolicy::per_channel(2)),
        )
        .unwrap();
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(parallel.stats.simulated, 3);
    }

    #[test]
    fn execution_policy_changes_the_cache_key_only_when_meaningful() {
        // Default-policy sweeps must hit cache entries written before the
        // `execution` field existed (the default serializes to nothing),
        // while a memoizing policy is part of run identity and keys apart.
        let dir = std::env::temp_dir().join(format!("mcm-sweep-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = SweepOptions::default().with_cache_dir(dir.clone());
        let cold = run_sweep_on(&RayonExecutor::default(), &quick_spec(), &options).unwrap();
        assert_eq!(cold.stats.simulated, 3);

        // Same default policy, spelled explicitly: every point is warm.
        let explicit = options.clone().with_execution(ExecutionPolicy::default());
        let warm = run_sweep_on(&RayonExecutor::default(), &quick_spec(), &explicit).unwrap();
        assert_eq!(warm.stats.cached, 3);
        assert_eq!(cold.to_json(), warm.to_json());

        // A per-channel policy produces identical numbers, and shares the
        // serial entries only if its serialization differs — it does, so
        // the points key apart and simulate fresh.
        let par = options
            .clone()
            .with_execution(ExecutionPolicy::per_channel(2));
        let fresh = run_sweep_on(&RayonExecutor::default(), &quick_spec(), &par).unwrap();
        assert_eq!(fresh.stats.simulated, 3);
        assert_eq!(fresh.to_json(), cold.to_json());
        let _ = std::fs::remove_dir_all(dir);
    }
}
