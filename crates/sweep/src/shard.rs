//! Deterministic sweep sharding and byte-identical merging.
//!
//! [`SweepSpec::shard`] partitions the expanded grid by global point index
//! (point `g` belongs to shard `g % of`), so the shards are disjoint,
//! exhaustive and order-preserving by construction — pinned for all grids
//! and all `of ≤ 16` in `tests/sharding.rs`. [`run_sweep_shard_on`]
//! executes one shard and renders a *shard document*: the shard's
//! deterministic export rows under a provenance header binding shard
//! coordinates, grid size, [`spec_hash`] and
//! [`KEY_SCHEMA_VERSION`](crate::KEY_SCHEMA_VERSION). [`merge_shards`]
//! validates a complete, consistent set of documents and reassembles the
//! global row order arithmetically (shard `i`'s `k`-th row has global index
//! `i + k·of`), then renders through the *same* JSON/CSV renderers the
//! unsharded path uses — merge output is byte-identical to a single-process
//! run by construction, not by luck.

use serde::{Deserialize, Serialize};

use crate::engine::{rows_to_csv, rows_to_json, ExportRow, SweepOptions, SweepResult};
use crate::error::SweepError;
use crate::exec::Executor;
use crate::key::{spec_hash, KEY_SCHEMA_VERSION};
use crate::spec::SweepSpec;

/// One executed shard of a sweep: the per-point outcomes (shard-local
/// order) plus the provenance that lets [`merge_shards`] stitch shards
/// back together safely.
#[derive(Debug, Clone)]
pub struct ShardSweep {
    /// The executed shard — per-point outcomes and stats, exactly as an
    /// unsharded [`SweepResult`] but covering only this shard's points.
    pub result: SweepResult,
    /// This shard's index, `0 ≤ index < of`.
    pub index: usize,
    /// Total shard count the grid was split into.
    pub of: usize,
    /// Points in the *whole* grid (all shards together).
    pub total: usize,
    /// Identity hash of the sweep spec (see [`spec_hash`]).
    pub spec_hash: u64,
}

impl ShardSweep {
    /// Renders the shard document: a `"shard"` provenance header plus this
    /// shard's deterministic export rows. Feed a complete set of these to
    /// [`merge_shards`] (or `mcm sweep --merge`).
    pub fn to_json(&self) -> String {
        let mut shard = serde::Map::new();
        shard.insert("index".to_string(), (self.index as u64).to_value());
        shard.insert("of".to_string(), (self.of as u64).to_value());
        shard.insert("total".to_string(), (self.total as u64).to_value());
        shard.insert(
            "spec_hash".to_string(),
            serde::Value::String(format!("{:016x}", self.spec_hash)),
        );
        shard.insert(
            "key_schema".to_string(),
            (KEY_SCHEMA_VERSION as u64).to_value(),
        );
        let mut doc = serde::Map::new();
        doc.insert("shard".to_string(), serde::Value::Object(shard));
        doc.insert("rows".to_string(), self.result.export_rows().to_value());
        serde_json::to_string_pretty(&serde::Value::Object(doc))
            .expect("shard documents are serializable")
    }
}

/// Expands `spec`, keeps only shard `index` of `of` (see
/// [`SweepSpec::shard`]), and executes those points under `options` on
/// `executor` — the sharded flavour of
/// [`run_sweep_on`](crate::run_sweep_on), surfaced as
/// `mcm sweep --shard i/n`.
pub fn run_sweep_shard_on(
    executor: &dyn Executor,
    spec: &SweepSpec,
    index: usize,
    of: usize,
    options: &SweepOptions,
) -> Result<ShardSweep, SweepError> {
    let points = spec.shard(index, of)?;
    let result = crate::engine::run_points_on(executor, points, options)?;
    Ok(ShardSweep {
        result,
        index,
        of,
        total: spec.len(),
        spec_hash: spec_hash(spec)?,
    })
}

/// A parsed shard document (one `--shard i/n` output file).
#[derive(Debug, Clone)]
struct ShardDoc {
    index: usize,
    of: usize,
    total: usize,
    spec_hash: u64,
    key_schema: u32,
    rows: Vec<ExportRow>,
}

impl ShardDoc {
    fn parse(name: &str, text: &str) -> Result<ShardDoc, SweepError> {
        let refuse = |reason: String| SweepError::Shard {
            reason: format!("{name}: {reason}"),
        };
        let v: serde::Value = serde_json::from_str(text)
            .map_err(|e| refuse(format!("not a JSON document: {e:?}")))?;
        let shard = v.get("shard").ok_or_else(|| {
            refuse(
                "not a shard document (no `shard` header; \
                 was this written with --shard?)"
                    .to_string(),
            )
        })?;
        let field = |name: &'static str| {
            shard
                .get(name)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| refuse(format!("shard header has no `{name}`")))
        };
        let spec_hash = shard
            .get("spec_hash")
            .and_then(|h| h.as_str())
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| refuse("shard header has no `spec_hash`".to_string()))?;
        let rows = v
            .get("rows")
            .ok_or_else(|| refuse("shard document has no `rows`".to_string()))?;
        let rows: Vec<ExportRow> =
            Deserialize::from_value(rows).map_err(|e| refuse(format!("unreadable rows: {e:?}")))?;
        Ok(ShardDoc {
            index: field("index")? as usize,
            of: field("of")? as usize,
            total: field("total")? as usize,
            spec_hash,
            key_schema: field("key_schema")? as u32,
            rows,
        })
    }

    /// Points a grid of `total` assigns to shard `index` of `of`.
    fn expected_rows(&self) -> usize {
        (self.total / self.of) + usize::from(self.index < self.total % self.of)
    }
}

/// A merged sweep: the full grid's deterministic export rows, reassembled
/// from shard documents. Renders through the same renderers as an
/// unsharded [`SweepResult`], so [`MergedSweep::to_json`] and
/// [`MergedSweep::to_csv`] are byte-identical to the single-process run's.
#[derive(Debug, Clone)]
pub struct MergedSweep {
    rows: Vec<ExportRow>,
}

impl MergedSweep {
    /// Points in the merged grid.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the merged grid is empty (it never is: merge validates
    /// exhaustiveness first).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Deterministic JSON export — byte-identical to
    /// [`SweepResult::to_json`] of the unsharded run.
    pub fn to_json(&self) -> String {
        rows_to_json(&self.rows)
    }

    /// Deterministic CSV export — byte-identical to
    /// [`SweepResult::to_csv`] of the unsharded run.
    pub fn to_csv(&self) -> String {
        rows_to_csv(&self.rows)
    }
}

/// Recombines shard documents into the full grid. `docs` pairs a display
/// name (used in error messages — typically the file path) with the
/// document text. Refuses, with a typed [`SweepError::Shard`], any set
/// that is inconsistent (different sweeps, different shard counts or key
/// schemas), incomplete (missing shards, short rows), or overlapping
/// (duplicate shards).
pub fn merge_shards(docs: &[(String, String)]) -> Result<MergedSweep, SweepError> {
    let refuse = |reason: String| SweepError::Shard { reason };
    if docs.is_empty() {
        return Err(refuse("no shard files to merge".to_string()));
    }
    let parsed: Vec<ShardDoc> = docs
        .iter()
        .map(|(name, text)| ShardDoc::parse(name, text))
        .collect::<Result<_, _>>()?;
    let first = &parsed[0];
    if first.of == 0 {
        return Err(refuse(format!(
            "{}: shard header claims 0 shards",
            docs[0].0
        )));
    }
    for (doc, (name, _)) in parsed.iter().zip(docs).skip(1) {
        if (doc.of, doc.total, doc.spec_hash, doc.key_schema)
            != (first.of, first.total, first.spec_hash, first.key_schema)
        {
            return Err(refuse(format!(
                "{name} belongs to a different run than {} \
                 (of {} vs {}, total {} vs {}, spec {:016x} vs {:016x}, \
                 key schema {} vs {})",
                docs[0].0,
                doc.of,
                first.of,
                doc.total,
                first.total,
                doc.spec_hash,
                first.spec_hash,
                doc.key_schema,
                first.key_schema
            )));
        }
    }
    if parsed.len() != first.of {
        return Err(refuse(format!(
            "expected {} shard file(s), got {}",
            first.of,
            parsed.len()
        )));
    }
    let mut slots: Vec<Option<ExportRow>> = vec![None; first.total];
    let mut seen = vec![false; first.of];
    for (doc, (name, _)) in parsed.iter().zip(docs) {
        if doc.index >= doc.of {
            return Err(refuse(format!(
                "{name}: shard index {} is out of range for {} shard(s)",
                doc.index, doc.of
            )));
        }
        if seen[doc.index] {
            return Err(refuse(format!(
                "{name}: shard {}/{} appears twice",
                doc.index, doc.of
            )));
        }
        seen[doc.index] = true;
        if doc.rows.len() != doc.expected_rows() {
            return Err(refuse(format!(
                "{name}: shard {}/{} of a {}-point grid must carry {} row(s), has {}",
                doc.index,
                doc.of,
                doc.total,
                doc.expected_rows(),
                doc.rows.len()
            )));
        }
        // Shard i's k-th row sits at global index i + k·of: the inverse of
        // the `g % of == i` partition, no stored indices needed.
        for (k, row) in doc.rows.iter().enumerate() {
            slots[doc.index + k * doc.of] = Some(row.clone());
        }
    }
    let rows: Vec<ExportRow> = slots
        .into_iter()
        .collect::<Option<_>>()
        .ok_or_else(|| refuse("shards leave holes in the grid".to_string()))?;
    Ok(MergedSweep { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::RayonExecutor;
    use mcm_load::HdOperatingPoint;

    fn spec() -> SweepSpec {
        SweepSpec {
            points: vec![HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30],
            channels: vec![1, 2, 4],
            op_limit: Some(2_000),
            ..SweepSpec::default()
        }
    }

    fn shard_docs(of: usize) -> Vec<(String, String)> {
        let exec = RayonExecutor::default();
        (0..of)
            .map(|i| {
                let shard =
                    run_sweep_shard_on(&exec, &spec(), i, of, &SweepOptions::default()).unwrap();
                (format!("shard-{i}.json"), shard.to_json())
            })
            .collect()
    }

    #[test]
    fn merge_is_byte_identical_to_the_unsharded_run() {
        let whole = crate::engine::run_sweep_on(
            &RayonExecutor::default(),
            &spec(),
            &SweepOptions::default(),
        )
        .unwrap();
        for of in [1, 2, 3] {
            let merged = merge_shards(&shard_docs(of)).unwrap();
            assert_eq!(merged.to_json(), whole.to_json(), "{of} shards, JSON");
            assert_eq!(merged.to_csv(), whole.to_csv(), "{of} shards, CSV");
            assert_eq!(merged.len(), spec().len());
        }
        // Order of the merge inputs must not matter.
        let mut docs = shard_docs(3);
        docs.reverse();
        assert_eq!(merge_shards(&docs).unwrap().to_json(), whole.to_json());
    }

    #[test]
    fn incomplete_or_duplicate_shard_sets_are_refused() {
        let docs = shard_docs(3);
        // Missing shard.
        let e = merge_shards(&docs[..2]).unwrap_err();
        assert!(
            e.to_string().contains("expected 3 shard file(s), got 2"),
            "{e}"
        );
        // Duplicate shard.
        let dup = vec![docs[0].clone(), docs[1].clone(), docs[1].clone()];
        let e = merge_shards(&dup).unwrap_err();
        assert!(e.to_string().contains("appears twice"), "{e}");
        // Nothing at all.
        assert!(merge_shards(&[]).is_err());
    }

    #[test]
    fn shards_of_different_runs_are_refused() {
        let mut docs = shard_docs(2);
        // Re-shard a *different* grid and try to sneak its shard 1 in.
        let other = SweepSpec {
            channels: vec![1, 2],
            ..spec()
        };
        let foreign = run_sweep_shard_on(
            &RayonExecutor::default(),
            &other,
            1,
            2,
            &SweepOptions::default(),
        )
        .unwrap();
        docs[1] = ("foreign.json".to_string(), foreign.to_json());
        let e = merge_shards(&docs).unwrap_err();
        assert!(e.to_string().contains("different run"), "{e}");
    }

    #[test]
    fn non_shard_documents_are_refused_with_a_hint() {
        let whole = crate::engine::run_sweep_on(
            &RayonExecutor::default(),
            &spec(),
            &SweepOptions::default(),
        )
        .unwrap();
        // A plain sweep export has rows but no shard header.
        let e = merge_shards(&[("plain.json".to_string(), whole.to_json())]).unwrap_err();
        assert!(e.to_string().contains("--shard"), "{e}");
        let e = merge_shards(&[("junk.json".to_string(), "nonsense".to_string())]).unwrap_err();
        assert!(matches!(e, SweepError::Shard { .. }));
    }

    #[test]
    fn short_shards_are_refused() {
        let docs = shard_docs(2);
        // Drop one row from shard 0's document.
        let mut v: serde::Value = serde_json::from_str(&docs[0].1).unwrap();
        if let serde::Value::Object(obj) = &mut v {
            let mut rows = match obj.remove("rows") {
                Some(serde::Value::Array(rows)) => rows,
                other => panic!("shard doc rows missing: {other:?}"),
            };
            rows.pop();
            obj.insert("rows", serde::Value::Array(rows));
        }
        let short = serde_json::to_string(&v).unwrap();
        let e = merge_shards(&[(docs[0].0.clone(), short), docs[1].clone()]).unwrap_err();
        assert!(e.to_string().contains("must carry"), "{e}");
    }
}
