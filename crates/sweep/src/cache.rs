//! Content-addressed result cache.
//!
//! Every sweep point is keyed by a fingerprint of its **content**: the
//! canonical JSON of the full [`Experiment`] plus the [`RunOptions`] it ran
//! under, plus a cache schema version. Re-running a figure or sweep after
//! editing a spec therefore only simulates the points whose configuration
//! actually changed; everything else is a disk hit.
//!
//! The cache stores one JSON file per fingerprint under its directory.
//! Unreadable or corrupt entries are treated as misses and rewritten, so a
//! damaged cache degrades to extra simulation, never to a failed sweep.

use std::fs;
use std::path::{Path, PathBuf};

use mcm_core::{CoreError, Experiment, FrameResult, RunOptions};
use serde::{Deserialize, Serialize};

use crate::error::SweepError;
use crate::key::content_key;

/// The distilled, serializable result of one sweep point.
///
/// This is deliberately *not* the full [`FrameResult`] (whose subsystem
/// report is an open-ended simulation artifact): it is the stable set of
/// metrics the paper's figures and this repo's ablations consume, so cache
/// entries survive refactors of the simulator internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRecord {
    /// Whether the frame buffers fit the configuration at all.
    pub feasible: bool,
    /// Why not, when infeasible.
    pub infeasible_reason: Option<String>,
    /// Frame access time, ms (feasible points only).
    pub access_ms: Option<f64>,
    /// Real-time budget, ms.
    pub budget_ms: Option<f64>,
    /// Real-time verdict (`meets` / `marginal` / `fails`).
    pub verdict: Option<String>,
    /// Average DRAM core power, mW.
    pub core_mw: Option<f64>,
    /// Interface power (equation (1)), mW.
    pub interface_mw: Option<f64>,
    /// Bus efficiency (achieved ÷ peak bandwidth).
    pub efficiency: Option<f64>,
    /// Energy per transferred bit, pJ.
    pub energy_per_bit_pj: Option<f64>,
    /// Worst per-channel p99 request latency, ns (when channels report it).
    pub latency_p99_ns: Option<f64>,
    /// Bytes the full frame moves.
    pub planned_bytes: u64,
    /// Bytes actually simulated (smaller only under an op limit).
    pub simulated_bytes: u64,
    /// Theoretical peak bandwidth, Gbyte/s.
    pub peak_gbytes_per_s: f64,
}

impl PointRecord {
    /// Distills a run result, folding capacity overflows into infeasible
    /// records the same way the paper's figures drop such bars. Any other
    /// error passes through.
    pub fn from_result(result: Result<FrameResult, CoreError>) -> Result<PointRecord, CoreError> {
        match result {
            Ok(r) => Ok(PointRecord {
                feasible: true,
                infeasible_reason: None,
                access_ms: Some(r.access_time.as_ms_f64()),
                budget_ms: Some(r.frame_budget.as_ms_f64()),
                verdict: Some(r.verdict.to_string()),
                core_mw: Some(r.power.core_mw),
                interface_mw: Some(r.power.interface_mw),
                efficiency: Some(r.efficiency()),
                energy_per_bit_pj: Some(r.energy_per_bit_pj()),
                latency_p99_ns: r
                    .report
                    .channels
                    .iter()
                    .filter_map(|c| c.latency_p99)
                    .max()
                    .map(|t| t.as_ns_f64()),
                planned_bytes: r.planned_bytes,
                simulated_bytes: r.simulated_bytes,
                peak_gbytes_per_s: r.peak_bandwidth_bytes_per_s / 1e9,
            }),
            Err(CoreError::Load(mcm_load::LoadError::LayoutOverflow { needed, capacity })) => {
                Ok(PointRecord {
                    feasible: false,
                    infeasible_reason: Some(format!(
                        "frame buffers need {} MiB, capacity is {} MiB",
                        needed >> 20,
                        capacity >> 20
                    )),
                    access_ms: None,
                    budget_ms: None,
                    verdict: None,
                    core_mw: None,
                    interface_mw: None,
                    efficiency: None,
                    energy_per_bit_pj: None,
                    latency_p99_ns: None,
                    planned_bytes: 0,
                    simulated_bytes: 0,
                    peak_gbytes_per_s: 0.0,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Total power (core + interface), mW, for feasible points.
    pub fn total_mw(&self) -> Option<f64> {
        Some(self.core_mw? + self.interface_mw?)
    }
}

/// A directory of fingerprint-keyed [`PointRecord`]s.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<ResultCache, SweepError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| SweepError::Cache {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Content fingerprint of one sweep point: the shared
    /// [`content_key`](crate::content_key) over the experiment and its run
    /// options. Two points share a fingerprint iff their full
    /// configurations are identical.
    pub fn fingerprint(exp: &Experiment, run: &RunOptions) -> Result<u64, SweepError> {
        content_key(exp, run)
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.json"))
    }

    /// Looks a fingerprint up. Missing, unreadable or corrupt entries are
    /// all misses — the caller re-simulates and overwrites.
    pub fn load(&self, fingerprint: u64) -> Option<PointRecord> {
        let text = fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Stores a record under its fingerprint.
    pub fn store(&self, fingerprint: u64, record: &PointRecord) -> Result<(), SweepError> {
        let path = self.entry_path(fingerprint);
        let json = serde_json::to_string_pretty(record).map_err(|e| SweepError::Cache {
            path: path.display().to_string(),
            message: format!("{e:?}"),
        })?;
        fs::write(&path, json).map_err(|e| SweepError::Cache {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Number of entries on disk (test and stats aid).
    pub fn entry_count(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter(|e| {
                    e.as_ref()
                        .map(|e| e.path().extension().is_some_and(|x| x == "json"))
                        .unwrap_or(false)
                })
                .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcm-sweep-cache-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_stable_and_config_sensitive() {
        let a = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        let b = Experiment::paper(HdOperatingPoint::Hd720p30, 8, 400);
        let run = RunOptions::default();
        let fa = ResultCache::fingerprint(&a, &run).unwrap();
        assert_eq!(fa, ResultCache::fingerprint(&a, &run).unwrap());
        assert_ne!(fa, ResultCache::fingerprint(&b, &run).unwrap());
        // Run options are part of the key.
        assert_ne!(
            fa,
            ResultCache::fingerprint(&a, &RunOptions::verified()).unwrap()
        );
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = ResultCache::new(tmp_dir("roundtrip")).unwrap();
        let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
        exp.op_limit = Some(2_000);
        let record = PointRecord::from_result(
            exp.run_with(&RunOptions::default())
                .map(|o| o.into_frame().expect("single-frame outcome")),
        )
        .unwrap();
        let fp = ResultCache::fingerprint(&exp, &RunOptions::default()).unwrap();
        assert!(cache.load(fp).is_none());
        cache.store(fp, &record).unwrap();
        assert_eq!(cache.load(fp), Some(record));
        assert_eq!(cache.entry_count(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = ResultCache::new(tmp_dir("corrupt")).unwrap();
        fs::write(cache.dir().join(format!("{:016x}.json", 7u64)), "{not json").unwrap();
        assert!(cache.load(7).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn infeasible_points_distill_without_error() {
        // 2160p30 cannot fit one 512 Mib channel.
        let exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 1, 400);
        let record = PointRecord::from_result(
            exp.run_with(&RunOptions::default())
                .map(|o| o.into_frame().expect("single-frame outcome")),
        )
        .unwrap();
        assert!(!record.feasible);
        assert_eq!(record.total_mw(), None);
        assert!(record.infeasible_reason.unwrap().contains("MiB"));
    }
}
