//! Sweep-level errors.
//!
//! A sweep distinguishes *sweep* failures (a spec that expands to nothing,
//! an unreadable cache directory) from *point* failures (one grid point's
//! simulation erroring or panicking). The former abort the sweep; the
//! latter are captured per point so one bad configuration cannot kill a
//! thousand-point run.

use core::fmt;

use mcm_core::CoreError;

/// Errors raised while expanding or executing a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec expanded to zero experiments (some axis was empty).
    EmptySpec {
        /// The axis that was empty.
        axis: &'static str,
    },
    /// The engine's run options are outside what a sweep supports.
    BadOptions {
        /// Explanation.
        reason: String,
    },
    /// One grid point failed (build-time validation, simulation error, or
    /// an isolated panic). Carried per point, never aborts the sweep.
    Point {
        /// The point's human-readable label.
        label: String,
        /// The underlying experiment error.
        source: CoreError,
    },
    /// The result cache could not be read or written.
    Cache {
        /// The offending path.
        path: String,
        /// The I/O or serialization problem.
        message: String,
    },
    /// The job was cancelled before this point could run. Carried per
    /// point: points that finished before the cancellation keep their
    /// results.
    Cancelled {
        /// The point's human-readable label.
        label: String,
    },
    /// An [`Executor`](crate::Executor) was asked about a job it does not
    /// know (bad id, or a result that was already collected).
    UnknownJob {
        /// The offending job id.
        job: u64,
    },
    /// A shard selector or shard document was unusable: an out-of-range
    /// `--shard i/n`, or merge inputs that disagree on their spec, overlap,
    /// or leave holes in the grid.
    Shard {
        /// Explanation.
        reason: String,
    },
    /// The checkpoint log could not be created, read, or did not match the
    /// sweep it was offered to (different spec hash, key schema, or
    /// execution policy).
    Checkpoint {
        /// The offending log path.
        path: String,
        /// Explanation.
        message: String,
    },
    /// A remote worker failed this item: the connection died and no
    /// surviving worker could take the work over, or the worker answered
    /// with something that is not a job document.
    Remote {
        /// What was being asked of the worker.
        context: String,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptySpec { axis } => {
                write!(f, "sweep spec has an empty `{axis}` axis")
            }
            SweepError::BadOptions { reason } => write!(f, "bad sweep options: {reason}"),
            SweepError::Point { label, source } => write!(f, "point `{label}`: {source}"),
            SweepError::Cache { path, message } => {
                write!(f, "result cache at `{path}`: {message}")
            }
            SweepError::Cancelled { label } => {
                write!(f, "point `{label}`: cancelled before it could run")
            }
            SweepError::UnknownJob { job } => {
                write!(
                    f,
                    "no job {job} (bad id, or its result was already collected)"
                )
            }
            SweepError::Shard { reason } => write!(f, "bad shard: {reason}"),
            SweepError::Checkpoint { path, message } => {
                write!(f, "checkpoint log at `{path}`: {message}")
            }
            SweepError::Remote { context, message } => {
                write!(f, "remote worker ({context}): {message}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Point { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let e = SweepError::EmptySpec { axis: "channels" };
        assert!(e.to_string().contains("channels"));
        let e = SweepError::Point {
            label: "720p30/4ch/400MHz".into(),
            source: CoreError::BadParam { reason: "x".into() },
        };
        assert!(e.to_string().contains("720p30/4ch/400MHz"));
        use std::error::Error;
        assert!(e.source().is_some());
        let e = SweepError::Cache {
            path: "/tmp/c".into(),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/c"));
        let e = SweepError::Shard {
            reason: "index 3 of 2".into(),
        };
        assert!(e.to_string().contains("index 3 of 2"));
        let e = SweepError::Checkpoint {
            path: "/tmp/log".into(),
            message: "spec hash mismatch".into(),
        };
        assert!(e.to_string().contains("/tmp/log"));
        let e = SweepError::Remote {
            context: "poll job 3 on 127.0.0.1:1".into(),
            message: "connection refused".into(),
        };
        assert!(e.to_string().contains("127.0.0.1:1"));
    }
}
