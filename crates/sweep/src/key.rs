//! Shared content-hash key computation.
//!
//! Both the sweep disk cache ([`ResultCache`](crate::ResultCache)) and the
//! `mcm serve` result store address results by the same key: FNV-1a over
//! the canonical JSON of the full [`Experiment`] plus the [`RunOptions`] it
//! ran under, chained with a schema version. Keeping the computation in one
//! place means the two keyspaces cannot drift — a record written by a sweep
//! is found by the server and vice versa.

use mcm_core::{Experiment, RunOptions};

use crate::error::SweepError;

/// Bump when the keyed record layout or semantics change: old entries then
/// miss instead of deserializing into the wrong shape.
pub const KEY_SCHEMA_VERSION: u32 = 1;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Content key of one simulation: FNV-1a over the canonical JSON of the
/// experiment, its run options and [`KEY_SCHEMA_VERSION`]. Two submissions
/// share a key iff their full configurations are identical.
///
/// ```
/// use mcm_core::{Experiment, RunOptions};
/// use mcm_load::HdOperatingPoint;
///
/// let exp = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
/// let run = RunOptions::default();
/// let a = mcm_sweep::content_key(&exp, &run).unwrap();
/// let b = mcm_sweep::content_key(&exp, &run).unwrap();
/// assert_eq!(a, b);
/// ```
pub fn content_key(exp: &Experiment, run: &RunOptions) -> Result<u64, SweepError> {
    let json = serde_json::to_string(&(exp, run)).map_err(|e| SweepError::BadOptions {
        reason: format!("unserializable experiment: {e:?}"),
    })?;
    Ok(fnv1a(json.as_bytes()))
}

/// Identity hash of a whole [`SweepSpec`](crate::SweepSpec): the same FNV-1a
/// chain [`content_key`] uses, over the spec's canonical JSON. Shard
/// documents and checkpoint logs carry it so results from *different* grids
/// can never be merged or resumed into each other by accident.
pub fn spec_hash(spec: &crate::SweepSpec) -> Result<u64, SweepError> {
    let json = serde_json::to_string(spec).map_err(|e| SweepError::BadOptions {
        reason: format!("unserializable sweep spec: {e:?}"),
    })?;
    Ok(fnv1a(json.as_bytes()))
}

/// FNV-1a over `bytes` chained with [`KEY_SCHEMA_VERSION`].
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for byte in bytes.iter().chain(KEY_SCHEMA_VERSION.to_le_bytes().iter()) {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    #[test]
    fn key_matches_cache_fingerprint() {
        // The sweep cache and the server store must share one keyspace.
        let exp = Experiment::paper(HdOperatingPoint::Hd1080p60, 8, 400);
        for run in [RunOptions::default(), RunOptions::verified()] {
            assert_eq!(
                content_key(&exp, &run).unwrap(),
                crate::ResultCache::fingerprint(&exp, &run).unwrap()
            );
        }
    }

    #[test]
    fn spec_hash_is_stable_and_spec_sensitive() {
        use crate::SweepSpec;
        let a = SweepSpec::paper_grid();
        let b = SweepSpec {
            channels: vec![1, 2, 4],
            ..SweepSpec::paper_grid()
        };
        assert_eq!(spec_hash(&a).unwrap(), spec_hash(&a).unwrap());
        assert_ne!(spec_hash(&a).unwrap(), spec_hash(&b).unwrap());
    }

    #[test]
    fn key_is_config_sensitive() {
        let a = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        let b = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 200);
        let run = RunOptions::default();
        assert_ne!(
            content_key(&a, &run).unwrap(),
            content_key(&b, &run).unwrap()
        );
    }
}
