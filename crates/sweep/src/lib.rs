//! # mcm-sweep — the parallel design-space sweep engine
//!
//! The paper's evaluation is a grid: operating points × channel counts ×
//! clocks (Fig. 3–5), plus this repo's ablation axes (mapping, page
//! policy, power-down, transaction sizing, pacing). Every consumer used to
//! hand-roll its own nested loops; this crate gives them one engine:
//!
//! * [`SweepSpec`] — a declarative cartesian grid that expands through the
//!   validating [`ExperimentBuilder`](mcm_core::ExperimentBuilder);
//! * [`Executor`] / [`RayonExecutor`] — the shared scheduling path
//!   (submit / poll / cancel / collect) behind every consumer: bounded
//!   concurrent jobs over the rayon pool, per-item panic/error isolation
//!   ([`SweepError`]), static prelint, content-key caching;
//! * [`run_sweep_on`] — the single entry point: one job submitted to a
//!   caller-supplied executor, collected, and folded back into
//!   **expansion-order** results with live progress and per-point timing
//!   — the same machinery `mcm serve` drives asynchronously. The old
//!   zero-executor `run_sweep` wrapper is deprecated;
//! * [`run_sweep_shard_on`] / [`merge_shards`] — distributed sweeps:
//!   [`SweepSpec::shard`] splits the grid deterministically, each shard
//!   runs anywhere, and the merge is byte-identical to the unsharded run;
//! * [`CheckpointLog`] — crash-safe resume: completed points land in an
//!   atomically rewritten JSONL log, and a killed sweep re-simulates only
//!   what is missing;
//! * [`ResultCache`] — a content-hash disk cache keyed by [`content_key`]:
//!   re-running a figure only simulates the points whose configuration
//!   changed, and the server store shares the keyspace;
//! * [`ParallelRunner`] — a [`BatchRunner`](mcm_core::BatchRunner) adapter
//!   that drops the same engine under `mcm-core`'s figure builders.
//!
//! ```
//! use mcm_load::HdOperatingPoint;
//! use mcm_sweep::{run_sweep_on, RayonExecutor, SweepOptions, SweepSpec};
//!
//! let spec = SweepSpec {
//!     points: vec![HdOperatingPoint::Hd720p30],
//!     channels: vec![1, 2, 4],
//!     op_limit: Some(2_000), // truncated run for the doctest
//!     ..SweepSpec::default()
//! };
//! let exec = RayonExecutor::default();
//! let result = run_sweep_on(&exec, &spec, &SweepOptions::default().with_threads(2)).unwrap();
//! assert_eq!(result.points.len(), 3);
//! // More channels, faster frame: results arrive in expansion order.
//! let access = |i: usize| result.points[i].outcome.as_ref().unwrap().access_ms.unwrap();
//! assert!(access(2) < access(0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod checkpoint;
mod engine;
mod error;
mod exec;
mod key;
mod shard;
mod spec;

pub use cache::{PointRecord, ResultCache};
pub use checkpoint::CheckpointLog;
#[allow(deprecated)]
pub use engine::run_sweep;
pub use engine::{
    run_sweep_on, ParallelRunner, PointOutcome, SweepOptions, SweepResult, SweepStats,
};
pub use error::SweepError;
pub use exec::{Executor, JobId, JobSnapshot, JobState, RayonExecutor, WorkItem, WorkOutcome};
pub use key::{content_key, spec_hash, KEY_SCHEMA_VERSION};
pub use shard::{merge_shards, run_sweep_shard_on, MergedSweep, ShardSweep};
pub use spec::{SweepPoint, SweepSpec};
