//! Resume semantics of the checkpoint log (ISSUE 10 satellite), in
//! process: a sweep that dies after completing part of the grid must, on
//! resume, re-simulate *only* the missing points, account for them as
//! `resumed` (distinct from cache hits), and export byte-identically to a
//! run that was never interrupted. The child-process SIGKILL flavour lives
//! in `crates/cli/tests/kill_resume.rs`; this one pins the engine-level
//! contract the CLI builds on.

use std::path::PathBuf;

use mcm_core::ExecutionPolicy;
use mcm_load::HdOperatingPoint;
use mcm_sweep::{run_sweep_on, CheckpointLog, RayonExecutor, SweepOptions, SweepSpec};

fn spec() -> SweepSpec {
    SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30],
        channels: vec![1, 2, 4],
        op_limit: Some(2_000),
        ..SweepSpec::default()
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "mcm-resume-test-{name}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn resumed_sweep_simulates_only_the_missing_points_and_exports_identically() {
    let exec = RayonExecutor::default();
    let policy = ExecutionPolicy::default();

    // The reference: one uninterrupted, checkpoint-free run.
    let reference = run_sweep_on(&exec, &spec(), &SweepOptions::default()).unwrap();
    assert_eq!(reference.stats.simulated, 6);

    // "First run": completes only a 2-channel sub-grid of the same sweep,
    // writing the full sweep's checkpoint log — exactly the state a killed
    // process leaves behind (some points logged, the rest absent).
    let path = tmp_path("partial");
    let log = CheckpointLog::attach(&path, &spec(), &policy, false).unwrap();
    let partial = SweepSpec {
        channels: vec![2],
        ..spec()
    };
    let first = run_sweep_on(
        &exec,
        &partial,
        &SweepOptions::default().with_checkpoint(log),
    )
    .unwrap();
    assert_eq!(first.stats.simulated, 2);
    assert_eq!(first.stats.resumed, 0);

    // Resume the full sweep from the log (the `--resume` contract:
    // the log must exist).
    let log = CheckpointLog::attach(&path, &spec(), &policy, true).unwrap();
    assert_eq!(log.len(), 2, "the partial run checkpointed its points");
    let resumed = run_sweep_on(
        &exec,
        &spec(),
        &SweepOptions::default().with_checkpoint(log.clone()),
    )
    .unwrap();

    // Only the missing points simulate; the finished ones come back as
    // `resumed`, and the books balance.
    assert_eq!(resumed.stats.total, 6);
    assert_eq!(resumed.stats.resumed, 2);
    assert_eq!(resumed.stats.simulated, 4);
    assert_eq!(
        resumed.stats.resumed + resumed.stats.simulated,
        resumed.stats.total
    );
    for p in &resumed.points {
        assert_eq!(p.resumed, p.channels == 2, "{}", p.label);
        assert!(
            !p.cached,
            "checkpoint hits must not masquerade as cache hits"
        );
    }

    // Byte-identity with the uninterrupted run, both exports.
    assert_eq!(resumed.to_json(), reference.to_json());
    assert_eq!(resumed.to_csv(), reference.to_csv());

    // The stats line narrates the resume — and only then.
    assert!(resumed.stats.to_string().contains("2 resumed"));
    assert!(!reference.stats.to_string().contains("resumed"));

    // After the resumed run the log holds the whole grid: a further resume
    // simulates nothing at all and still exports identically.
    assert_eq!(log.len(), 6);
    let third = run_sweep_on(
        &exec,
        &spec(),
        &SweepOptions::default().with_checkpoint(log),
    )
    .unwrap();
    assert_eq!(third.stats.resumed, 6);
    assert_eq!(third.stats.simulated, 0);
    assert_eq!(third.to_json(), reference.to_json());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_and_cache_provenance_stay_distinct() {
    let exec = RayonExecutor::default();
    let policy = ExecutionPolicy::default();
    let cache_dir = std::env::temp_dir().join(format!("mcm-resume-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let path = tmp_path("vs-cache");

    // Warm the shared cache without any checkpoint.
    let options = SweepOptions::default().with_cache_dir(cache_dir.clone());
    let cold = run_sweep_on(&exec, &spec(), &options).unwrap();
    assert_eq!(cold.stats.simulated, 6);

    // Fresh log + warm cache: everything is a cache hit (the log is empty,
    // so it answers nothing), and the completed points still get logged.
    let log = CheckpointLog::attach(&path, &spec(), &policy, false).unwrap();
    let warm = run_sweep_on(
        &exec,
        &spec(),
        &options.clone().with_checkpoint(log.clone()),
    )
    .unwrap();
    assert_eq!(warm.stats.cached, 6);
    assert_eq!(warm.stats.resumed, 0);
    assert_eq!(log.len(), 6, "cache hits are checkpointed too");

    // Same sweep again: now the log outranks the cache.
    let again = run_sweep_on(&exec, &spec(), &options.with_checkpoint(log)).unwrap();
    assert_eq!(again.stats.resumed, 6);
    assert_eq!(again.stats.cached, 0);
    assert_eq!(again.to_json(), cold.to_json());

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
