//! Sweep determinism and cache behavior.
//!
//! The contract under test: a sweep's exported JSON/CSV depends only on
//! the spec and run options — not on the worker thread count and not on
//! whether results came from the cache. CI runs this suite under
//! `RAYON_NUM_THREADS=2` as well to exercise the env-driven default pool.

use std::path::PathBuf;

use mcm_load::HdOperatingPoint;
#[allow(deprecated)]
use mcm_sweep::run_sweep;
use mcm_sweep::{run_sweep_on, RayonExecutor, SweepOptions, SweepSpec};

fn quick_grid() -> SweepSpec {
    SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30],
        channels: vec![1, 2, 4, 8],
        op_limit: Some(3_000),
        ..SweepSpec::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcm-sweep-it-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_json_is_byte_identical_to_serial() {
    let spec = quick_grid();
    let serial = run_sweep_on(
        &RayonExecutor::default(),
        &spec,
        &SweepOptions::default().with_threads(1),
    )
    .unwrap();
    let parallel = run_sweep_on(
        &RayonExecutor::default(),
        &spec,
        &SweepOptions::default().with_threads(4),
    )
    .unwrap();
    assert_eq!(serial.points.len(), 8);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "JSON export must not depend on the thread count"
    );
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "CSV export must not depend on the thread count"
    );
    // And the default (env-driven) pool agrees too, whatever its width.
    let env_default =
        run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).unwrap();
    assert_eq!(serial.to_json(), env_default.to_json());
}

#[test]
fn stochastic_workloads_export_identically_at_any_thread_count() {
    // The Markov-modulated generator must be a pure function of
    // (seed, frame): whichever worker thread simulates a stochastic
    // point, the export is the same bytes.
    use mcm_load::Workload;
    let spec = SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30],
        channels: vec![1, 2],
        workloads: vec![
            Workload::parse("stochastic:42").unwrap(),
            Workload::parse("stochastic:42:75").unwrap(),
        ],
        op_limit: Some(3_000),
        ..SweepSpec::default()
    };
    let serial = run_sweep_on(
        &RayonExecutor::default(),
        &spec,
        &SweepOptions::default().with_threads(1),
    )
    .unwrap();
    let parallel = run_sweep_on(
        &RayonExecutor::default(),
        &spec,
        &SweepOptions::default().with_threads(4),
    )
    .unwrap();
    assert_eq!(serial.points.len(), 4);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "stochastic sweeps must not depend on the thread count"
    );
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn warm_cache_rerun_simulates_nothing_and_exports_identically() {
    let spec = quick_grid();
    let dir = tmp_dir("warm");
    let options = SweepOptions {
        threads: Some(2),
        cache_dir: Some(dir.clone()),
        ..SweepOptions::default()
    };

    let cold = run_sweep_on(&RayonExecutor::default(), &spec, &options).unwrap();
    assert_eq!(
        cold.stats.simulated, 8,
        "cold cache must simulate all points"
    );
    assert_eq!(cold.stats.cached, 0);

    let warm = run_sweep_on(&RayonExecutor::default(), &spec, &options).unwrap();
    assert_eq!(warm.stats.simulated, 0, "warm cache must simulate nothing");
    assert_eq!(warm.stats.cached, 8);
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "cache provenance must not leak into the export"
    );
    assert_eq!(cold.to_csv(), warm.to_csv());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_invalidates_on_config_change_only() {
    let dir = tmp_dir("invalidate");
    let base = SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30],
        channels: vec![1, 2],
        op_limit: Some(3_000),
        ..SweepSpec::default()
    };
    let options = SweepOptions {
        cache_dir: Some(dir.clone()),
        ..SweepOptions::default()
    };

    let first = run_sweep_on(&RayonExecutor::default(), &base, &options).unwrap();
    assert_eq!(first.stats.simulated, 2);

    // Growing an axis only simulates the new points.
    let grown = SweepSpec {
        channels: vec![1, 2, 4],
        ..base.clone()
    };
    let second = run_sweep_on(&RayonExecutor::default(), &grown, &options).unwrap();
    assert_eq!(second.stats.cached, 2, "unchanged points must hit");
    assert_eq!(second.stats.simulated, 1, "only the new point simulates");

    // Changing the run content (op limit) misses everything.
    let changed = SweepSpec {
        op_limit: Some(4_000),
        ..base.clone()
    };
    let third = run_sweep_on(&RayonExecutor::default(), &changed, &options).unwrap();
    assert_eq!(third.stats.cached, 0, "changed configs must not hit");
    assert_eq!(third.stats.simulated, 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn isolated_failures_do_not_kill_the_sweep() {
    // 2160p30 in 1 or 2 channels is infeasible (buffers do not fit); the
    // sweep must carry those as infeasible records next to real results.
    let spec = SweepSpec {
        points: vec![HdOperatingPoint::Uhd2160p30],
        channels: vec![1, 2, 4, 8],
        op_limit: Some(3_000),
        ..SweepSpec::default()
    };
    let result = run_sweep_on(
        &RayonExecutor::default(),
        &spec,
        &SweepOptions::default().with_threads(4),
    )
    .unwrap();
    assert_eq!(result.stats.failed, 0);
    assert_eq!(result.stats.infeasible, 2);
    let feasible: Vec<bool> = result
        .points
        .iter()
        .map(|p| p.outcome.as_ref().unwrap().feasible)
        .collect();
    assert_eq!(feasible, vec![false, false, true, true]);
}

#[test]
fn caller_supplied_executor_exports_byte_identically() {
    // The deprecated `run_sweep` is a thin wrapper over `run_sweep_on`;
    // the service hands in its own long-lived executor. Whichever
    // executor carries the jobs — and however many may run concurrently —
    // the export is the same bytes.
    let spec = quick_grid();
    // This is the one site allowed to call the wrapper: it pins the
    // wrapper's equivalence to `run_sweep_on` itself.
    #[allow(deprecated)] // deprecation-ok
    let reference = run_sweep(&spec, &SweepOptions::default().with_threads(2)).unwrap();

    let executor = RayonExecutor::new(4);
    let via_executor =
        run_sweep_on(&executor, &spec, &SweepOptions::default().with_threads(2)).unwrap();
    assert_eq!(
        reference.to_json(),
        via_executor.to_json(),
        "export must not depend on which executor carried the sweep"
    );
    assert_eq!(reference.to_csv(), via_executor.to_csv());
    assert_eq!(
        executor.simulated(),
        spec.expand().unwrap().len(),
        "the caller's executor did the simulating"
    );

    // A second sweep on the same executor reuses it cleanly.
    let again = run_sweep_on(&executor, &spec, &SweepOptions::default().with_threads(2)).unwrap();
    assert_eq!(reference.to_json(), again.to_json());
}
