//! Property pin for deterministic sharding (ISSUE 10 satellite): for all
//! grids and all shard counts `n ≤ 16`, the union of `shard(i, n)` outputs
//! equals the unsharded expansion — no duplicates, no holes, and every
//! shard preserves the expansion order. `mcm sweep --merge` leans on
//! exactly these three properties to reassemble shard files byte-
//! identically, so they are pinned here independently of the merge code.

use std::collections::HashMap;

use mcm_load::HdOperatingPoint;
use mcm_sweep::{SweepPoint, SweepSpec};
use proptest::prelude::*;

/// A collision-free identity for one expanded point: its label plus the
/// full experiment and fault-plan JSON (labels alone elide unswept axes).
fn fingerprint(p: &SweepPoint) -> String {
    format!(
        "{}|{}|{}",
        p.label,
        serde_json::to_string(&p.experiment).unwrap(),
        serde_json::to_string(&p.faults).unwrap()
    )
}

/// Non-empty subsequence of `all` selected by the low bits of `mask`.
fn subset<T: Clone>(all: &[T], mask: u32) -> Vec<T> {
    let picked: Vec<T> = all
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect();
    if picked.is_empty() {
        vec![all[0].clone()]
    } else {
        picked
    }
}

fn arb_spec() -> impl Strategy<Value = SweepSpec> {
    (1u32..8, 1u32..16, 1u32..4, 1u32..4, any::<bool>()).prop_map(
        |(pmask, cmask, kmask, wmask, faulted)| {
            let mut spec = SweepSpec {
                points: subset(
                    &[
                        HdOperatingPoint::Hd720p30,
                        HdOperatingPoint::Hd1080p30,
                        HdOperatingPoint::Hd1080p60,
                    ],
                    pmask,
                ),
                channels: subset(&[1, 2, 4, 8], cmask),
                clocks_mhz: subset(&[200, 400], kmask),
                workloads: subset(
                    &[
                        mcm_load::Workload::TableI,
                        mcm_load::Workload::MultiTenant(2),
                    ],
                    wmask,
                ),
                op_limit: Some(1_000),
                ..SweepSpec::default()
            };
            if faulted {
                spec.faults = vec![None, Some(mcm_fault::FaultPlan::channel_loss(5, 0))];
            }
            spec
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union over all shards == the unsharded expansion, with no point
    /// duplicated across shards and expansion order preserved inside each.
    #[test]
    fn shards_partition_every_grid(spec in arb_spec(), n in 1usize..=16) {
        let whole = spec.expand().unwrap();
        // Each expanded point is unique, so fingerprints index the grid.
        let global: HashMap<String, usize> = whole
            .iter()
            .enumerate()
            .map(|(g, p)| (fingerprint(p), g))
            .collect();
        prop_assert_eq!(global.len(), whole.len(), "expansion has duplicate points");

        let mut covered = vec![false; whole.len()];
        for i in 0..n {
            let shard = spec.shard(i, n).unwrap();
            let mut last: Option<usize> = None;
            for p in &shard {
                let g = *global
                    .get(&fingerprint(p))
                    .expect("shard invented a point the expansion does not contain");
                // No duplicates: across shards (disjoint) or within one.
                prop_assert!(!covered[g], "point {g} appears in more than one shard");
                covered[g] = true;
                // Order preserved: global indices strictly increase.
                if let Some(prev) = last {
                    prop_assert!(prev < g, "shard {i}/{n} reorders points {prev} and {g}");
                }
                last = Some(g);
            }
        }
        // Exhaustive: every expanded point landed in some shard.
        prop_assert!(covered.iter().all(|&c| c), "shards leave holes in the grid");
    }

    /// The selector contract: `index < of` and `of > 0`, anything else is a
    /// typed error — and over-sharding a small grid just yields empties.
    #[test]
    fn bad_selectors_error_and_oversharding_is_benign(spec in arb_spec(), n in 1usize..=16) {
        prop_assert!(spec.shard(n, n).is_err());
        prop_assert!(spec.shard(n + 1, n).is_err());
        prop_assert!(spec.shard(0, 0).is_err());
        // More shards than points: the tail shards are empty, never errors.
        let total = spec.len();
        let of = total + 3;
        let sizes: Vec<usize> = (0..of).map(|i| spec.shard(i, of).unwrap().len()).collect();
        prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        prop_assert!(sizes.iter().all(|&s| s <= 1));
    }
}
