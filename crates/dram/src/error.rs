//! Typed errors for device construction and command legality.

use core::fmt;

use crate::command::DramCommand;

/// Errors raised by the DRAM device model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// Device geometry is inconsistent (e.g. capacity not a power of two, or
    /// rows × cols × width × banks ≠ capacity).
    InvalidGeometry {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// The interface clock is outside the supported range
    /// (the paper restricts it to the DDR2 span, 200–533 MHz).
    ClockOutOfRange {
        /// Requested clock in MHz.
        requested_mhz: u64,
        /// Lowest supported clock in MHz.
        min_mhz: u64,
        /// Highest supported clock in MHz.
        max_mhz: u64,
    },
    /// A timing parameter failed validation (e.g. tRAS + tRP > tRC).
    InvalidTiming {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A command was issued before its earliest legal cycle.
    TimingViolation {
        /// The offending command.
        cmd: DramCommand,
        /// The cycle at which issue was attempted.
        at_cycle: u64,
        /// The earliest cycle at which the command would have been legal.
        earliest: u64,
    },
    /// A command is illegal in the bank's / device's current state
    /// regardless of timing (e.g. READ to a closed row, ACT to an open bank,
    /// any command while powered down).
    IllegalCommand {
        /// The offending command.
        cmd: DramCommand,
        /// Description of the state conflict.
        reason: String,
    },
    /// An address exceeds the device capacity.
    AddressOutOfRange {
        /// The offending byte address.
        addr: u64,
        /// Device capacity in bytes.
        capacity_bytes: u64,
    },
    /// Bank index out of range.
    BadBank {
        /// The offending bank index.
        bank: u32,
        /// Number of banks in the device.
        banks: u32,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::InvalidGeometry { reason } => write!(f, "invalid DRAM geometry: {reason}"),
            DramError::ClockOutOfRange {
                requested_mhz,
                min_mhz,
                max_mhz,
            } => write!(
                f,
                "interface clock {requested_mhz} MHz outside supported range {min_mhz}-{max_mhz} MHz"
            ),
            DramError::InvalidTiming { reason } => {
                write!(f, "invalid DRAM timing parameters: {reason}")
            }
            DramError::TimingViolation {
                cmd,
                at_cycle,
                earliest,
            } => write!(
                f,
                "{cmd} issued at cycle {at_cycle}, earliest legal cycle is {earliest}"
            ),
            DramError::IllegalCommand { cmd, reason } => {
                write!(f, "{cmd} illegal in current state: {reason}")
            }
            DramError::AddressOutOfRange {
                addr,
                capacity_bytes,
            } => write!(
                f,
                "address {addr:#x} out of range for {capacity_bytes}-byte device"
            ),
            DramError::BadBank { bank, banks } => {
                write!(f, "bank {bank} out of range (device has {banks} banks)")
            }
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::DramCommand;

    #[test]
    fn display_messages_are_informative() {
        let e = DramError::TimingViolation {
            cmd: DramCommand::Activate { bank: 1, row: 7 },
            at_cycle: 10,
            earliest: 12,
        };
        let s = e.to_string();
        assert!(s.contains("cycle 10"));
        assert!(s.contains("12"));

        let e = DramError::ClockOutOfRange {
            requested_mhz: 700,
            min_mhz: 200,
            max_mhz: 533,
        };
        assert!(e.to_string().contains("700"));
    }
}
