//! ASCII command-timeline rendering — a text "waveform" of a recorded
//! command trace, for debugging schedules and for documentation.
//!
//! One row per bank plus a device row (REF/power-down/self-refresh), one
//! column per clock cycle:
//!
//! ```text
//! cycle 0        10        20
//! bank0 A--r-r-r-P..........
//! bank1 ....A--r-r-r-P......
//! dev   ....................
//! ```
//!
//! `A` activate, `r` read, `w` write, `P` precharge, `F` refresh,
//! `D`/`U` power-down enter/exit, `S`/`X` self-refresh enter/exit,
//! `-` bank open, `.` idle.

use crate::command::DramCommand;
use crate::validate::TracedCommand;

/// Renders `trace` over the cycle window `[from, to)` for a device with
/// `banks` banks. Windows wider than `max_width` columns are truncated.
pub fn render_timeline(
    trace: &[TracedCommand],
    banks: u32,
    from: u64,
    to: u64,
    max_width: usize,
) -> String {
    let to = to.min(from + max_width as u64);
    if to <= from {
        return String::from("(empty window)\n");
    }
    let width = (to - from) as usize;
    let mut rows: Vec<Vec<char>> = vec![vec!['.'; width]; banks as usize + 1];
    let dev_row = banks as usize;
    // Track open intervals to draw '-' while a row is open.
    let mut open_since: Vec<Option<u64>> = vec![None; banks as usize];

    let mark = |rows: &mut Vec<Vec<char>>, row: usize, cycle: u64, ch: char| {
        if cycle >= from && cycle < to {
            rows[row][(cycle - from) as usize] = ch;
        }
    };
    let fill_open = |rows: &mut Vec<Vec<char>>, bank: usize, start: u64, end: u64| {
        let lo = start.max(from);
        let hi = end.min(to);
        for c in lo..hi {
            let idx = (c - from) as usize;
            if rows[bank][idx] == '.' {
                rows[bank][idx] = '-';
            }
        }
    };

    for &TracedCommand { cycle, cmd } in trace {
        match cmd {
            DramCommand::Activate { bank, .. } => {
                open_since[bank as usize] = Some(cycle);
                mark(&mut rows, bank as usize, cycle, 'A');
            }
            DramCommand::Read { bank, .. } => mark(&mut rows, bank as usize, cycle, 'r'),
            DramCommand::Write { bank, .. } => mark(&mut rows, bank as usize, cycle, 'w'),
            DramCommand::Precharge { bank } => {
                if let Some(start) = open_since[bank as usize].take() {
                    fill_open(&mut rows, bank as usize, start, cycle);
                }
                mark(&mut rows, bank as usize, cycle, 'P');
            }
            DramCommand::PrechargeAll => {
                for (b, slot) in open_since.iter_mut().enumerate() {
                    if let Some(start) = slot.take() {
                        fill_open(&mut rows, b, start, cycle);
                    }
                    mark(&mut rows, b, cycle, 'P');
                }
            }
            DramCommand::Refresh => mark(&mut rows, dev_row, cycle, 'F'),
            DramCommand::PowerDownEnter => mark(&mut rows, dev_row, cycle, 'D'),
            DramCommand::PowerDownExit => mark(&mut rows, dev_row, cycle, 'U'),
            DramCommand::SelfRefreshEnter => mark(&mut rows, dev_row, cycle, 'S'),
            DramCommand::SelfRefreshExit => mark(&mut rows, dev_row, cycle, 'X'),
        }
    }
    // Banks still open at the window end.
    for (b, slot) in open_since.iter().enumerate() {
        if let Some(start) = *slot {
            fill_open(&mut rows, b, start, to);
        }
    }

    let mut out = String::new();
    // Cycle ruler every 10 columns.
    out.push_str("cycle ");
    let mut ruler = vec![' '; width];
    let mut c = from.div_ceil(10) * 10;
    while c < to {
        let label = c.to_string();
        let pos = (c - from) as usize;
        for (i, ch) in label.chars().enumerate() {
            if pos + i < width {
                ruler[pos + i] = ch;
            }
        }
        c += 10;
    }
    out.extend(ruler);
    out.push('\n');
    for (i, row) in rows.iter().enumerate() {
        if i == dev_row {
            out.push_str("dev   ");
        } else {
            out.push_str(&format!("bank{i} "));
        }
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BankCluster, ClusterConfig};

    fn tc(cycle: u64, cmd: DramCommand) -> TracedCommand {
        TracedCommand { cycle, cmd }
    }

    #[test]
    fn renders_a_small_schedule() {
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(6, DramCommand::Read { bank: 0, col: 0 }),
            tc(8, DramCommand::Read { bank: 0, col: 4 }),
            tc(16, DramCommand::Precharge { bank: 0 }),
            tc(20, DramCommand::PowerDownEnter),
        ];
        let t = render_timeline(&trace, 4, 0, 24, 80);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6); // ruler + 4 banks + dev
        assert!(lines[1].starts_with("bank0 A"));
        assert_eq!(lines[1].chars().nth(6 + 6).unwrap(), 'r');
        assert_eq!(lines[1].chars().nth(6 + 16).unwrap(), 'P');
        // The row is drawn open between ACT and PRE.
        assert_eq!(lines[1].chars().nth(6 + 3).unwrap(), '-');
        // The device row shows the power-down entry.
        assert_eq!(lines[5].chars().nth(6 + 20).unwrap(), 'D');
    }

    #[test]
    fn renders_a_real_device_trace() {
        let mut dev = BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(400)).unwrap();
        dev.enable_trace();
        let t = *dev.timing();
        dev.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        dev.issue(DramCommand::Activate { bank: 1, row: 0 }, t.t_rrd)
            .unwrap();
        dev.issue(DramCommand::Read { bank: 0, col: 0 }, t.t_rcd)
            .unwrap();
        let text = render_timeline(dev.trace().unwrap(), 4, 0, 30, 120);
        assert!(text.contains("bank0 A"));
        assert!(text.contains("bank1"));
    }

    #[test]
    fn truncates_wide_windows_and_handles_empty() {
        let t = render_timeline(&[], 2, 0, 1_000_000, 40);
        assert!(t.lines().all(|l| l.len() <= 46));
        assert_eq!(render_timeline(&[], 2, 10, 10, 40), "(empty window)\n");
    }
}
