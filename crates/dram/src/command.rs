//! DRAM command vocabulary.
//!
//! The paper's memory controller "manages all the DRAM operations:
//! precharges, activations, reads, writes, refreshes, and power downs" —
//! this enum is exactly that vocabulary.

use core::fmt;

/// A command as placed on a channel's command bus on one clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open `row` in `bank` (RAS): moves the bank from idle to active after
    /// tRCD.
    Activate {
        /// Target bank.
        bank: u32,
        /// Row to open.
        row: u32,
    },
    /// Burst read of `burst_len` words starting at `col` of the open row in
    /// `bank`. Data appears CL cycles later, for BL/2 clock cycles.
    Read {
        /// Target bank.
        bank: u32,
        /// Starting column.
        col: u32,
    },
    /// Burst write, mirror of [`DramCommand::Read`] with write latency.
    Write {
        /// Target bank.
        bank: u32,
        /// Starting column.
        col: u32,
    },
    /// Close the open row of `bank` (takes tRP before the next ACT).
    Precharge {
        /// Target bank.
        bank: u32,
    },
    /// Close all open rows (takes tRP before any next ACT).
    PrechargeAll,
    /// Auto-refresh: requires all banks precharged, occupies the device for
    /// tRFC. One refresh retires one of the tREFI-periodic obligations.
    Refresh,
    /// Enter power-down (CKE low). Whether it is *active* or *precharge*
    /// power-down depends on whether any row is open.
    PowerDownEnter,
    /// Exit power-down (CKE high); the next command is legal tXP later.
    PowerDownExit,
    /// Enter self-refresh: the device refreshes itself internally at the
    /// lowest possible current. Requires all banks precharged; suspends the
    /// controller's tREFI obligations.
    SelfRefreshEnter,
    /// Exit self-refresh; the next command is legal tXSR later.
    SelfRefreshExit,
}

impl DramCommand {
    /// The bank this command addresses, if it is bank-scoped.
    pub fn bank(&self) -> Option<u32> {
        match *self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. }
            | DramCommand::Precharge { bank } => Some(bank),
            _ => None,
        }
    }

    /// Whether this is a data-transferring command (READ or WRITE).
    pub fn is_column(&self) -> bool {
        matches!(self, DramCommand::Read { .. } | DramCommand::Write { .. })
    }

    /// Short mnemonic (ACT/RD/WR/PRE/PREA/REF/PDE/PDX) used in traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Activate { .. } => "ACT",
            DramCommand::Read { .. } => "RD",
            DramCommand::Write { .. } => "WR",
            DramCommand::Precharge { .. } => "PRE",
            DramCommand::PrechargeAll => "PREA",
            DramCommand::Refresh => "REF",
            DramCommand::PowerDownEnter => "PDE",
            DramCommand::PowerDownExit => "PDX",
            DramCommand::SelfRefreshEnter => "SRE",
            DramCommand::SelfRefreshExit => "SRX",
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DramCommand::Activate { bank, row } => write!(f, "ACT b{bank} r{row}"),
            DramCommand::Read { bank, col } => write!(f, "RD b{bank} c{col}"),
            DramCommand::Write { bank, col } => write!(f, "WR b{bank} c{col}"),
            DramCommand::Precharge { bank } => write!(f, "PRE b{bank}"),
            DramCommand::PrechargeAll => write!(f, "PREA"),
            DramCommand::Refresh => write!(f, "REF"),
            DramCommand::PowerDownEnter => write!(f, "PDE"),
            DramCommand::PowerDownExit => write!(f, "PDX"),
            DramCommand::SelfRefreshEnter => write!(f, "SRE"),
            DramCommand::SelfRefreshExit => write!(f, "SRX"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_scope() {
        assert_eq!(DramCommand::Activate { bank: 2, row: 5 }.bank(), Some(2));
        assert_eq!(DramCommand::Refresh.bank(), None);
        assert_eq!(DramCommand::PrechargeAll.bank(), None);
    }

    #[test]
    fn column_commands() {
        assert!(DramCommand::Read { bank: 0, col: 0 }.is_column());
        assert!(DramCommand::Write { bank: 0, col: 0 }.is_column());
        assert!(!DramCommand::Precharge { bank: 0 }.is_column());
    }

    #[test]
    fn display_and_mnemonics() {
        let c = DramCommand::Activate { bank: 1, row: 42 };
        assert_eq!(c.to_string(), "ACT b1 r42");
        assert_eq!(c.mnemonic(), "ACT");
        assert_eq!(DramCommand::PowerDownEnter.mnemonic(), "PDE");
        assert_eq!(DramCommand::SelfRefreshEnter.mnemonic(), "SRE");
        assert_eq!(DramCommand::SelfRefreshExit.to_string(), "SRX");
    }
}
