//! Datasheet rendering: the resolved parameter set of a device
//! configuration, laid out the way a DRAM datasheet's AC/DC tables are.
//!
//! The paper's device is *theoretical* — "estimation is necessary since no
//! 3D integration compatible standard memory components exist at this
//! time" — so being able to print exactly what was estimated, at any
//! clock, is part of reproducing it honestly.

use crate::device::ClusterConfig;
use crate::error::DramError;
use crate::power::EnergyModel;

/// Renders the full resolved datasheet of `config` as text.
pub fn render_datasheet(config: &ClusterConfig) -> Result<String, DramError> {
    let g = config.geometry;
    let t = config.timing.resolve(config.clock_mhz, &g)?;
    let e = EnergyModel::resolve(
        &config.idd,
        &config.op,
        &config.timing,
        &g,
        config.clock_mhz,
    )?;
    let tck_ns = 1_000.0 / config.clock_mhz as f64;

    let mut out = String::new();
    out.push_str(&format!(
        "DEVICE — {} Mb bank cluster, {} banks x {} rows x {} cols x{}, BL{}\n",
        g.capacity_bits() >> 20,
        g.banks,
        g.rows,
        g.cols,
        g.word_bits,
        g.burst_len
    ));
    out.push_str(&format!(
        "  page size {} B, burst {} B, peak {:.2} GB/s per channel\n\n",
        g.page_bytes(),
        g.burst_bytes(),
        g.word_bytes() as f64 * 2.0 * config.clock_mhz as f64 / 1e3
    ));

    out.push_str(&format!(
        "AC TIMING @ {} MHz (tCK = {:.3} ns)\n",
        config.clock_mhz, tck_ns
    ));
    let row =
        |name: &str, ck: u64| format!("  {name:<6} {ck:>4} ck  = {:>8.2} ns\n", ck as f64 * tck_ns);
    out.push_str(&row("CL", t.cl));
    out.push_str(&row("WL", t.wl));
    out.push_str(&row("tRCD", t.t_rcd));
    out.push_str(&row("tRP", t.t_rp));
    out.push_str(&row("tRAS", t.t_ras));
    out.push_str(&row("tRC", t.t_rc));
    out.push_str(&row("tRRD", t.t_rrd));
    out.push_str(&row("tWR", t.t_wr));
    out.push_str(&row("tWTR", t.t_wtr));
    out.push_str(&row("tRTP", t.t_rtp));
    out.push_str(&row("tRFC", t.t_rfc));
    out.push_str(&row("tREFI", t.t_refi));
    out.push_str(&row("tXP", t.t_xp));
    out.push_str(&row("tXSR", t.t_xsr));
    out.push_str(&format!(
        "  turnaround: RD->WR {} ck, WR->RD {} ck\n\n",
        t.rd_to_wr(),
        t.wr_to_rd()
    ));

    out.push_str(&format!(
        "DC / ENERGY @ {:.2} V core (IDD specified at {:.2} V / {:.0} MHz)\n",
        config.op.vdd_op_v, config.op.vdd_meas_v, config.op.f_meas_mhz
    ));
    out.push_str(&format!("  activate+precharge {:>8.0} pJ\n", e.e_act_pj));
    out.push_str(&format!(
        "  read burst         {:>8.0} pJ ({:.1} pJ/bit)\n",
        e.e_rd_burst_pj,
        e.e_rd_burst_pj / (g.burst_bytes() as f64 * 8.0)
    ));
    out.push_str(&format!(
        "  write burst        {:>8.0} pJ ({:.1} pJ/bit)\n",
        e.e_wr_burst_pj,
        e.e_wr_burst_pj / (g.burst_bytes() as f64 * 8.0)
    ));
    out.push_str(&format!("  refresh            {:>8.0} pJ\n", e.e_ref_pj));
    let states = [
        "precharge standby",
        "active standby",
        "precharge pwr-down",
        "active pwr-down",
        "self-refresh",
    ];
    for (name, p) in states.iter().zip(e.p_bg_mw.iter()) {
        out.push_str(&format!("  {name:<18} {p:>8.2} mW\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_paper_device() {
        let text = render_datasheet(&ClusterConfig::next_gen_mobile_ddr(400)).unwrap();
        assert!(text.contains("512 Mb bank cluster"));
        assert!(text.contains("tCK = 2.500 ns"));
        assert!(text.contains("tRCD      6 ck")); // 15 ns at 400 MHz
        assert!(text.contains("self-refresh"));
        assert!(text.contains("3.20 GB/s per channel"));
    }

    #[test]
    fn rejects_out_of_window_clocks() {
        assert!(render_datasheet(&ClusterConfig::next_gen_mobile_ddr(100)).is_err());
    }

    #[test]
    fn renders_the_other_presets() {
        for cfg in [
            ClusterConfig::standard_ddr2(400),
            ClusterConfig::future_lpddr2(800),
        ] {
            let text = render_datasheet(&cfg).unwrap();
            assert!(text.contains("AC TIMING"));
        }
    }
}
