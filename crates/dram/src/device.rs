//! The bank cluster: one channel's DRAM device.
//!
//! A cluster owns four banks (paper configuration), the shared command and
//! data buses, the power-down state, refresh bookkeeping and the energy
//! account. It is a *passive* model: a memory controller asks for the
//! earliest legal cycle of a candidate command ([`BankCluster::earliest_issue`])
//! and then commits it ([`BankCluster::issue`]); the cluster enforces every
//! timing window and state rule, returning a typed error on violations, so
//! controller bugs cannot silently produce impossible schedules.

use mcm_obs::{ChannelObs, CommandKind};
use mcm_sim::{Frequency, SimTime};
use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::command::DramCommand;
use crate::error::DramError;
use crate::params::{Geometry, ResolvedTiming, TimingParams};
use crate::power::{BackgroundState, EnergyAccount, EnergyModel, IddValues, OperatingPoint};

/// What a committed command produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// For column commands: the cycle at which the last data beat completes
    /// (read: CL + BL/2 after the command; write: WL + BL/2 after it).
    pub data_end_cycle: Option<u64>,
}

/// Aggregate command counts for one cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Activates issued.
    pub activates: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Precharges issued (including per-bank effects of PREA).
    pub precharges: u64,
    /// Refreshes issued.
    pub refreshes: u64,
    /// Power-down entries.
    pub power_downs: u64,
    /// Self-refresh entries.
    pub self_refreshes: u64,
}

/// Builder-style configuration for a [`BankCluster`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Physical organization.
    pub geometry: Geometry,
    /// Raw timing parameters.
    pub timing: TimingParams,
    /// Datasheet currents.
    pub idd: IddValues,
    /// Voltage/frequency conditions.
    pub op: OperatingPoint,
    /// Interface clock, MHz.
    pub clock_mhz: u64,
}

impl ClusterConfig {
    /// The paper's device at a given interface clock.
    pub fn next_gen_mobile_ddr(clock_mhz: u64) -> Self {
        ClusterConfig {
            geometry: Geometry::next_gen_mobile_ddr(),
            timing: TimingParams::next_gen_mobile_ddr(),
            idd: IddValues::mobile_ddr_512mb(),
            op: OperatingPoint::next_gen_mobile_ddr(),
            clock_mhz,
        }
    }

    /// The large-capacity part: the paper's timing, currents and operating
    /// point on the 2 Gb [`Geometry::large_capacity_mobile_ddr`] cluster
    /// (256 MiB per channel). Timing and IDD are kept at the 512 Mb
    /// datasheet values — an optimistic density scaling, which is the
    /// point: it isolates the capacity ceiling from every other parameter.
    pub fn large_capacity_mobile_ddr(clock_mhz: u64) -> Self {
        ClusterConfig {
            geometry: Geometry::large_capacity_mobile_ddr(),
            ..ClusterConfig::next_gen_mobile_ddr(clock_mhz)
        }
    }

    /// The projected future LPDDR2-class device (see
    /// [`TimingParams::future_lpddr2`]) at a 1.2 V core.
    pub fn future_lpddr2(clock_mhz: u64) -> Self {
        ClusterConfig {
            geometry: Geometry::next_gen_mobile_ddr(),
            timing: TimingParams::future_lpddr2(),
            idd: IddValues::mobile_ddr_512mb(),
            op: OperatingPoint {
                vdd_meas_v: 1.8,
                f_meas_mhz: 200.0,
                vdd_op_v: 1.2,
            },
            clock_mhz,
        }
    }

    /// A commodity DDR2-class device over the same clock window, kept at
    /// its native 1.8 V (no low-power voltage projection). The comparison
    /// point for the low-power-vs-standard study.
    pub fn standard_ddr2(clock_mhz: u64) -> Self {
        ClusterConfig {
            geometry: Geometry::next_gen_mobile_ddr(),
            timing: TimingParams::standard_ddr2(),
            idd: IddValues::standard_ddr2_512mb(),
            op: OperatingPoint {
                vdd_meas_v: 1.8,
                f_meas_mhz: 200.0,
                vdd_op_v: 1.8,
            },
            clock_mhz,
        }
    }
}

/// One channel's DRAM device: banks + buses + power-down + energy.
#[derive(Debug, Clone)]
pub struct BankCluster {
    geometry: Geometry,
    timing: ResolvedTiming,
    banks: Vec<Bank>,
    /// Earliest cycle for the next command of any kind (command bus is one
    /// command per cycle; REF and power-down exit also push this).
    earliest_cmd: u64,
    /// Earliest cycle for an ACT to any bank (tRRD).
    earliest_any_act: u64,
    /// Fixed ring of the cycles of the (up to) four most recent ACTs for
    /// the four-activate window (tFAW); `faw_head` indexes the oldest.
    faw_ring: [u64; 4],
    faw_head: u8,
    faw_len: u8,
    /// Banks with an open row, maintained incrementally so the hot path
    /// never rescans the bank array.
    open_banks: u32,
    /// Earliest cycle for the next READ command (bus occupancy/turnaround).
    earliest_rd: u64,
    /// Earliest cycle for the next WRITE command.
    earliest_wr: u64,
    /// Cycle at which in-flight data finishes on the DQ bus.
    data_busy_until: u64,
    powered_down: bool,
    pd_since: u64,
    self_refreshing: bool,
    sr_since: u64,
    energy: EnergyAccount,
    /// Mirror of the energy account's background state; commands that leave
    /// it unchanged skip wall-clock conversion and interval accounting.
    bg_state: BackgroundState,
    stats: ClusterStats,
    last_state_cycle: u64,
    trace: Option<Vec<crate::validate::TracedCommand>>,
    obs: Option<ChannelObs>,
    /// Per-bank `(extra tRCD, extra tRP)` cycles modelling degraded ("slow")
    /// rows — the fault-injection layer's stuck/slow-row model. `None` (the
    /// healthy default) keeps the hot path to a single branch.
    bank_penalty: Option<Vec<(u64, u64)>>,
}

/// Observability classification of a command: its [`CommandKind`] plus the
/// bank it addresses (0 for rank-wide commands).
fn obs_kind_of(cmd: DramCommand) -> (CommandKind, u8) {
    match cmd {
        DramCommand::Activate { bank, .. } => (CommandKind::Activate, bank as u8),
        DramCommand::Read { bank, .. } => (CommandKind::Read, bank as u8),
        DramCommand::Write { bank, .. } => (CommandKind::Write, bank as u8),
        DramCommand::Precharge { bank } => (CommandKind::Precharge, bank as u8),
        DramCommand::PrechargeAll => (CommandKind::PrechargeAll, 0),
        DramCommand::Refresh => (CommandKind::Refresh, 0),
        DramCommand::PowerDownEnter => (CommandKind::PowerDownEnter, 0),
        DramCommand::PowerDownExit => (CommandKind::PowerDownExit, 0),
        DramCommand::SelfRefreshEnter => (CommandKind::SelfRefreshEnter, 0),
        DramCommand::SelfRefreshExit => (CommandKind::SelfRefreshExit, 0),
    }
}

impl BankCluster {
    /// Builds the device; validates geometry, timing, currents and clock.
    pub fn new(config: &ClusterConfig) -> Result<Self, DramError> {
        let timing = config.timing.resolve(config.clock_mhz, &config.geometry)?;
        let model = EnergyModel::resolve(
            &config.idd,
            &config.op,
            &config.timing,
            &config.geometry,
            config.clock_mhz,
        )?;
        Ok(BankCluster {
            geometry: config.geometry,
            timing,
            banks: vec![Bank::new(); config.geometry.banks as usize],
            earliest_cmd: 0,
            earliest_any_act: 0,
            faw_ring: [0; 4],
            faw_head: 0,
            faw_len: 0,
            open_banks: 0,
            earliest_rd: 0,
            earliest_wr: 0,
            data_busy_until: 0,
            powered_down: false,
            pd_since: 0,
            self_refreshing: false,
            sr_since: 0,
            energy: EnergyAccount::new(model, BackgroundState::PrechargeStandby),
            bg_state: BackgroundState::PrechargeStandby,
            stats: ClusterStats::default(),
            last_state_cycle: 0,
            trace: None,
            obs: None,
            bank_penalty: None,
        })
    }

    /// Degrades one bank: every ACT to it takes `extra_trcd` more cycles to
    /// open the row and every PRE `extra_trp` more to close it. Models the
    /// fault layer's slow/stuck-row condition; cumulative across calls.
    pub fn set_bank_penalty(
        &mut self,
        bank: u32,
        extra_trcd: u64,
        extra_trp: u64,
    ) -> Result<(), DramError> {
        if bank >= self.geometry.banks {
            return Err(DramError::InvalidGeometry {
                reason: format!(
                    "bank penalty targets bank {bank} but the device has {} banks",
                    self.geometry.banks
                ),
            });
        }
        let penalties = self
            .bank_penalty
            .get_or_insert_with(|| vec![(0, 0); self.geometry.banks as usize]);
        penalties[bank as usize].0 += extra_trcd;
        penalties[bank as usize].1 += extra_trp;
        Ok(())
    }

    /// Attaches an observability handle: every committed command, per-event
    /// energy and closed background-energy interval is reported through it.
    /// Off by default; the disabled path costs one branch per command.
    pub fn set_obs(&mut self, obs: ChannelObs) {
        self.obs = Some(obs);
    }

    /// Starts recording every committed command (for validation/debugging).
    /// Costs one `Vec` push per command; off by default.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded command trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[crate::validate::TracedCommand]> {
        self.trace.as_deref()
    }

    /// Resolved timing in use.
    pub fn timing(&self) -> &ResolvedTiming {
        &self.timing
    }

    /// Device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The open row of `bank`, if any.
    pub fn open_row(&self, bank: u32) -> Result<Option<u32>, DramError> {
        self.bank(bank).map(Bank::open_row)
    }

    /// Whether the device is in a power-down state.
    pub fn is_powered_down(&self) -> bool {
        self.powered_down
    }

    /// Whether the device is in self-refresh.
    pub fn is_self_refreshing(&self) -> bool {
        self.self_refreshing
    }

    /// Whether any bank has an open row.
    #[inline]
    pub fn any_bank_open(&self) -> bool {
        self.open_banks > 0
    }

    /// Cycle at which all in-flight data beats have completed.
    pub fn data_busy_until(&self) -> u64 {
        self.data_busy_until
    }

    /// Command counts so far.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    fn bank(&self, bank: u32) -> Result<&Bank, DramError> {
        self.banks.get(bank as usize).ok_or(DramError::BadBank {
            bank,
            banks: self.geometry.banks,
        })
    }

    /// Earliest legal cycle, at or after `not_before`, at which `cmd` could
    /// issue. Errors if `cmd` is illegal in the current state regardless of
    /// timing.
    pub fn earliest_issue(&self, cmd: DramCommand, not_before: u64) -> Result<u64, DramError> {
        let base = self.earliest_cmd.max(not_before);
        if self.self_refreshing {
            return match cmd {
                DramCommand::SelfRefreshExit => Ok(base.max(self.sr_since + self.timing.t_cke_min)),
                _ => Err(DramError::IllegalCommand {
                    cmd,
                    reason: "device is in self-refresh; only SRX is legal".into(),
                }),
            };
        }
        if self.powered_down {
            return match cmd {
                DramCommand::PowerDownExit => Ok(base.max(self.pd_since + self.timing.t_cke_min)),
                _ => Err(DramError::IllegalCommand {
                    cmd,
                    reason: "device is powered down; only PDX is legal".into(),
                }),
            };
        }
        match cmd {
            DramCommand::Activate { bank, .. } => {
                let b = self.bank(bank)?;
                if b.is_active() {
                    return Err(DramError::IllegalCommand {
                        cmd,
                        reason: format!("bank {bank} already has an open row"),
                    });
                }
                let mut earliest = base.max(b.earliest_act()).max(self.earliest_any_act);
                if self.faw_len == 4 {
                    earliest =
                        earliest.max(self.faw_ring[self.faw_head as usize] + self.timing.t_faw);
                }
                Ok(earliest)
            }
            DramCommand::Read { bank, col } | DramCommand::Write { bank, col } => {
                if col >= self.geometry.cols {
                    return Err(DramError::IllegalCommand {
                        cmd,
                        reason: format!("column {col} out of range"),
                    });
                }
                let b = self.bank(bank)?;
                if !b.is_active() {
                    return Err(DramError::IllegalCommand {
                        cmd,
                        reason: format!("bank {bank} has no open row"),
                    });
                }
                let bus = if matches!(cmd, DramCommand::Read { .. }) {
                    self.earliest_rd
                } else {
                    self.earliest_wr
                };
                Ok(base.max(b.earliest_col()).max(bus))
            }
            DramCommand::Precharge { bank } => {
                let b = self.bank(bank)?;
                // PRE to an idle bank is a legal no-op on real parts.
                Ok(base.max(if b.is_active() { b.earliest_pre() } else { 0 }))
            }
            DramCommand::PrechargeAll => {
                let mut t = base;
                for b in &self.banks {
                    if b.is_active() {
                        t = t.max(b.earliest_pre());
                    }
                }
                Ok(t)
            }
            DramCommand::Refresh => {
                if self.any_bank_open() {
                    return Err(DramError::IllegalCommand {
                        cmd,
                        reason: "REF requires all banks precharged".into(),
                    });
                }
                let mut t = base;
                for b in &self.banks {
                    t = t.max(b.earliest_act());
                }
                Ok(t)
            }
            DramCommand::PowerDownEnter => {
                // CKE may only drop once in-flight data has drained.
                Ok(base.max(self.data_busy_until))
            }
            DramCommand::PowerDownExit => Err(DramError::IllegalCommand {
                cmd,
                reason: "device is not powered down".into(),
            }),
            DramCommand::SelfRefreshEnter => {
                if self.any_bank_open() {
                    return Err(DramError::IllegalCommand {
                        cmd,
                        reason: "SRE requires all banks precharged".into(),
                    });
                }
                let mut t = base.max(self.data_busy_until);
                for b in &self.banks {
                    t = t.max(b.earliest_act());
                }
                Ok(t)
            }
            DramCommand::SelfRefreshExit => Err(DramError::IllegalCommand {
                cmd,
                reason: "device is not in self-refresh".into(),
            }),
        }
    }

    /// Commits `cmd` at `cycle`.
    ///
    /// `cycle` must be at or beyond [`BankCluster::earliest_issue`] for the
    /// same command, and at or beyond every previously issued command
    /// (commands are committed in program order).
    pub fn issue(&mut self, cmd: DramCommand, cycle: u64) -> Result<IssueOutcome, DramError> {
        let earliest = self.earliest_issue(cmd, 0)?;
        if cycle < earliest {
            return Err(DramError::TimingViolation {
                cmd,
                at_cycle: cycle,
                earliest,
            });
        }
        if cycle < self.last_state_cycle {
            return Err(DramError::TimingViolation {
                cmd,
                at_cycle: cycle,
                earliest: self.last_state_cycle,
            });
        }
        self.apply(cmd, cycle)
    }

    /// Schedules and commits `cmd` in one pass: computes the earliest legal
    /// cycle at or after `not_before` and issues the command there,
    /// returning the chosen cycle alongside the outcome.
    ///
    /// Equivalent to [`BankCluster::earliest_issue`] followed by
    /// [`BankCluster::issue`] at the returned cycle, but evaluates the
    /// timing constraints once instead of twice — the controller's hot path.
    pub fn issue_at_earliest(
        &mut self,
        cmd: DramCommand,
        not_before: u64,
    ) -> Result<(u64, IssueOutcome), DramError> {
        let cycle = self.earliest_issue(cmd, not_before)?;
        // `earliest_issue` never returns before `earliest_cmd`, which every
        // commit pushes past itself, so program order holds by construction.
        debug_assert!(cycle >= self.last_state_cycle);
        let outcome = self.apply(cmd, cycle)?;
        Ok((cycle, outcome))
    }

    /// Issues a run of `n` column bursts to the already-open row of `bank`
    /// — columns `col0, col0 + col_step, …` — each at its earliest legal
    /// cycle. Exactly equivalent to `n` successive
    /// [`BankCluster::issue_at_earliest`] calls with the corresponding
    /// `Read`/`Write` commands, but scheduled in one pass without
    /// per-command dispatch: the controller's row-hit fast path.
    ///
    /// Returns `(first_cycle, last_data_end)`. With observability attached
    /// (or when any precondition fails), it falls back to the general
    /// per-command path so callbacks and error reporting are identical.
    pub fn issue_column_run(
        &mut self,
        write: bool,
        bank: u32,
        col0: u32,
        col_step: u32,
        n: u32,
        not_before: u64,
    ) -> Result<(u64, u64), DramError> {
        debug_assert!(n > 0, "empty column run");
        let last_col = col0 as u64 + (n as u64 - 1) * col_step as u64;
        let fast = self.obs.is_none()
            && !self.self_refreshing
            && !self.powered_down
            && last_col < self.geometry.cols as u64
            && self.banks.get(bank as usize).is_some_and(|b| b.is_active());
        if !fast {
            // General path: per-command issue keeps errors and obs
            // callbacks exactly as the unbatched controller produced them.
            let mut first = u64::MAX;
            let mut last_end = 0;
            for k in 0..n {
                let col = col0 + k * col_step;
                let cmd = if write {
                    DramCommand::Write { bank, col }
                } else {
                    DramCommand::Read { bank, col }
                };
                let (c, out) = self.issue_at_earliest(cmd, not_before)?;
                first = first.min(c);
                if let Some(end) = out.data_end_cycle {
                    last_end = end;
                }
            }
            return Ok((first, last_end));
        }
        // The open row never changes during the run, so `earliest_col` is a
        // constant and every per-burst quantity is a handful of max/adds.
        debug_assert!(self.bg_state == BackgroundState::from_flags(true, false));
        let (pre_gap, latency, to_same, to_other) = if write {
            (
                self.timing.wr_to_pre_ck,
                self.timing.wl,
                self.timing.bl_ck,
                self.timing.wr_to_rd_ck,
            )
        } else {
            (
                self.timing.t_rtp,
                self.timing.cl,
                self.timing.bl_ck,
                self.timing.rd_to_wr_ck,
            )
        };
        let bl_ck = self.timing.bl_ck;
        let mut b = self.banks[bank as usize];
        let ecol = b.earliest_col();
        let (mut bus_same, mut bus_other) = if write {
            (self.earliest_wr, self.earliest_rd)
        } else {
            (self.earliest_rd, self.earliest_wr)
        };
        let mut ecmd = self.earliest_cmd;
        let mut first = 0;
        let mut end = 0;
        for k in 0..n {
            let cycle = ecmd.max(not_before).max(ecol).max(bus_same);
            b.apply_column(cycle, pre_gap);
            bus_same = bus_same.max(cycle + to_same);
            bus_other = bus_other.max(cycle + to_other);
            end = cycle + latency + bl_ck;
            ecmd = ecmd.max(cycle + 1);
            if let Some(trace) = &mut self.trace {
                let col = col0 + k * col_step;
                let cmd = if write {
                    DramCommand::Write { bank, col }
                } else {
                    DramCommand::Read { bank, col }
                };
                trace.push(crate::validate::TracedCommand { cycle, cmd });
            }
            if k == 0 {
                first = cycle;
            }
        }
        self.banks[bank as usize] = b;
        self.earliest_cmd = ecmd;
        self.last_state_cycle = ecmd - 1;
        self.data_busy_until = self.data_busy_until.max(end);
        if write {
            self.earliest_wr = bus_same;
            self.earliest_rd = bus_other;
            for _ in 0..n {
                self.energy.record_write_burst();
            }
            self.stats.writes += n as u64;
        } else {
            self.earliest_rd = bus_same;
            self.earliest_wr = bus_other;
            for _ in 0..n {
                self.energy.record_read_burst();
            }
            self.stats.reads += n as u64;
        }
        Ok((first, end))
    }

    /// `(extra tRCD, extra tRP)` for `bank`; `(0, 0)` when healthy.
    #[inline]
    fn penalty_of(&self, bank: usize) -> (u64, u64) {
        self.bank_penalty.as_ref().map_or((0, 0), |p| p[bank])
    }

    /// Commits an already-validated command: mutates bank/bus/power state,
    /// stats and energy. `cycle` must satisfy `earliest_issue` and program
    /// order; both entry points guarantee it.
    fn apply(&mut self, cmd: DramCommand, cycle: u64) -> Result<IssueOutcome, DramError> {
        self.last_state_cycle = cycle;
        if let Some(trace) = &mut self.trace {
            trace.push(crate::validate::TracedCommand { cycle, cmd });
        }
        let t = self.timing;
        let mut outcome = IssueOutcome {
            data_end_cycle: None,
        };
        match cmd {
            DramCommand::Activate { bank, row } => {
                if row >= self.geometry.rows {
                    return Err(DramError::IllegalCommand {
                        cmd,
                        reason: format!("row {row} out of range"),
                    });
                }
                let t_rcd = t.t_rcd + self.penalty_of(bank as usize).0;
                self.banks[bank as usize].apply_activate(cycle, row, t_rcd, t.t_ras, t.t_rc);
                self.open_banks += 1;
                self.earliest_any_act = self.earliest_any_act.max(cycle + t.t_rrd);
                if self.faw_len == 4 {
                    self.faw_ring[self.faw_head as usize] = cycle;
                    self.faw_head = (self.faw_head + 1) & 3;
                } else {
                    self.faw_ring[((self.faw_head + self.faw_len) & 3) as usize] = cycle;
                    self.faw_len += 1;
                }
                self.energy.record_activate();
                self.stats.activates += 1;
            }
            DramCommand::Read { bank, .. } => {
                self.banks[bank as usize].apply_column(cycle, t.t_rtp);
                self.earliest_rd = self.earliest_rd.max(cycle + t.bl_ck);
                self.earliest_wr = self.earliest_wr.max(cycle + t.rd_to_wr());
                let end = cycle + t.cl + t.bl_ck;
                self.data_busy_until = self.data_busy_until.max(end);
                self.energy.record_read_burst();
                self.stats.reads += 1;
                outcome.data_end_cycle = Some(end);
            }
            DramCommand::Write { bank, .. } => {
                self.banks[bank as usize].apply_column(cycle, t.wr_to_pre());
                self.earliest_wr = self.earliest_wr.max(cycle + t.bl_ck);
                self.earliest_rd = self.earliest_rd.max(cycle + t.wr_to_rd());
                let end = cycle + t.wl + t.bl_ck;
                self.data_busy_until = self.data_busy_until.max(end);
                self.energy.record_write_burst();
                self.stats.writes += 1;
                outcome.data_end_cycle = Some(end);
            }
            DramCommand::Precharge { bank } => {
                if self.banks[bank as usize].is_active() {
                    let t_rp = t.t_rp + self.penalty_of(bank as usize).1;
                    self.banks[bank as usize].apply_precharge(cycle, t_rp);
                    self.open_banks -= 1;
                    self.stats.precharges += 1;
                }
            }
            DramCommand::PrechargeAll => {
                let penalties = self.bank_penalty.take();
                for (i, b) in self.banks.iter_mut().enumerate() {
                    if b.is_active() {
                        let extra = penalties.as_ref().map_or(0, |p| p[i].1);
                        b.apply_precharge(cycle, t.t_rp + extra);
                        self.open_banks -= 1;
                        self.stats.precharges += 1;
                    }
                }
                self.bank_penalty = penalties;
            }
            DramCommand::Refresh => {
                self.earliest_cmd = self.earliest_cmd.max(cycle + t.t_rfc);
                for b in &mut self.banks {
                    b.push_act_watermark(cycle + t.t_rfc);
                }
                self.energy.record_refresh();
                self.stats.refreshes += 1;
            }
            DramCommand::PowerDownEnter => {
                self.powered_down = true;
                self.pd_since = cycle;
                self.stats.power_downs += 1;
            }
            DramCommand::PowerDownExit => {
                self.powered_down = false;
                self.earliest_cmd = self.earliest_cmd.max(cycle + t.t_xp);
            }
            DramCommand::SelfRefreshEnter => {
                self.self_refreshing = true;
                self.sr_since = cycle;
                self.stats.self_refreshes += 1;
            }
            DramCommand::SelfRefreshExit => {
                self.self_refreshing = false;
                self.earliest_cmd = self.earliest_cmd.max(cycle + t.t_xsr);
            }
        }
        // Command bus: one command per cycle.
        self.earliest_cmd = self.earliest_cmd.max(cycle + 1);
        // Background-state bookkeeping. With observability off, commands
        // that leave the state unchanged skip the cycle→time conversion and
        // the interval close entirely: the background integral over a
        // constant-state stretch is identical whether it is closed per
        // command or once at the next transition.
        let state = if self.self_refreshing {
            BackgroundState::SelfRefresh
        } else {
            BackgroundState::from_flags(self.open_banks > 0, self.powered_down)
        };
        if self.obs.is_none() {
            if state != self.bg_state {
                self.bg_state = state;
                let now = self.time_of_cycle(cycle);
                self.energy.switch_state(state, now);
            }
            return Ok(outcome);
        }
        self.bg_state = state;
        let now = self.time_of_cycle(cycle);
        if let Some(obs) = self.obs.clone() {
            let at_ps = now.as_ps();
            let (kind, bank) = obs_kind_of(cmd);
            obs.command(bank, kind, at_ps);
            let model = self.energy.model();
            let event_pj = match kind {
                CommandKind::Activate => model.e_act_pj,
                CommandKind::Read => model.e_rd_burst_pj,
                CommandKind::Write => model.e_wr_burst_pj,
                CommandKind::Refresh => model.e_ref_pj,
                _ => 0.0,
            };
            if event_pj != 0.0 {
                obs.energy(kind, event_pj, at_ps);
            }
            let (from_ps, to_ps, bg_pj) = self.energy.switch_state_traced(state, now);
            if to_ps > from_ps {
                obs.background(from_ps, to_ps, bg_pj);
            }
        }
        Ok(outcome)
    }

    /// Wall-clock time of a cycle index on this device's interface clock.
    pub fn time_of_cycle(&self, cycle: u64) -> SimTime {
        self.timing.clock.time_of_cycles(cycle)
    }

    /// The interface clock frequency.
    pub fn clock_frequency(&self) -> Frequency {
        self.timing.clock.frequency()
    }

    /// Reports the background-energy interval `close_traced` just closed,
    /// so the tail of a run (often a long power-down stretch) shows up on
    /// observability timelines instead of vanishing at the horizon.
    fn emit_tail_background(&mut self, t: SimTime) {
        if let Some(obs) = self.obs.clone() {
            let (from_ps, to_ps, bg_pj) = self.energy.close_traced(t);
            if to_ps > from_ps {
                obs.background(from_ps, to_ps, bg_pj);
            }
        }
    }

    /// Total core energy up to `end_cycle`, picojoules.
    pub fn total_energy_pj(&mut self, end_cycle: u64) -> f64 {
        let t = self.time_of_cycle(end_cycle);
        self.emit_tail_background(t);
        self.energy.total_pj(t)
    }

    /// Background-only energy up to `end_cycle`, picojoules.
    pub fn background_energy_pj(&mut self, end_cycle: u64) -> f64 {
        let t = self.time_of_cycle(end_cycle);
        self.emit_tail_background(t);
        self.energy.background_pj(t)
    }

    /// Per-event (activate/burst/refresh) energy so far, picojoules.
    pub fn event_energy_pj(&self) -> f64 {
        self.energy.event_pj()
    }

    /// Per-event energy split by command class, picojoules:
    /// (activate, read burst, write burst, refresh).
    pub fn event_breakdown_pj(&self) -> (f64, f64, f64, f64) {
        self.energy.event_breakdown_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> BankCluster {
        BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(400)).unwrap()
    }

    #[test]
    fn construction_validates_clock() {
        assert!(BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(100)).is_err());
        assert!(BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(400)).is_ok());
    }

    #[test]
    fn basic_open_read_close_sequence() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::Activate { bank: 0, row: 7 }, 0)
            .unwrap();
        assert_eq!(c.open_row(0).unwrap(), Some(7));
        // Read must wait tRCD.
        let err = c
            .issue(DramCommand::Read { bank: 0, col: 0 }, 1)
            .unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { earliest, .. } if earliest == t.t_rcd));
        let out = c
            .issue(DramCommand::Read { bank: 0, col: 0 }, t.t_rcd)
            .unwrap();
        assert_eq!(out.data_end_cycle, Some(t.t_rcd + t.cl + t.bl_ck));
        // Precharge must wait tRAS.
        let e = c
            .earliest_issue(DramCommand::Precharge { bank: 0 }, 0)
            .unwrap();
        assert_eq!(e, t.t_ras);
        c.issue(DramCommand::Precharge { bank: 0 }, t.t_ras)
            .unwrap();
        assert_eq!(c.open_row(0).unwrap(), None);
    }

    #[test]
    fn bank_penalty_stretches_trcd_and_trp() {
        let mut c = cluster();
        let t = *c.timing();
        c.set_bank_penalty(0, 5, 3).unwrap();
        // Degraded bank: the read must now wait tRCD + 5.
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        let e = c
            .earliest_issue(DramCommand::Read { bank: 0, col: 0 }, 0)
            .unwrap();
        assert_eq!(e, t.t_rcd + 5);
        // Healthy banks are untouched.
        c.issue(DramCommand::Activate { bank: 1, row: 0 }, t.t_rrd)
            .unwrap();
        let e1 = c
            .earliest_issue(DramCommand::Read { bank: 1, col: 0 }, 0)
            .unwrap();
        assert_eq!(e1, t.t_rrd + t.t_rcd);
        // Precharge on the slow bank blocks the next ACT for tRP + 3 extra.
        let pre_at = c
            .earliest_issue(DramCommand::Precharge { bank: 0 }, 0)
            .unwrap();
        c.issue(DramCommand::Precharge { bank: 0 }, pre_at).unwrap();
        let act = c
            .earliest_issue(DramCommand::Activate { bank: 0, row: 1 }, 0)
            .unwrap();
        assert!(act >= pre_at + t.t_rp + 3);
        // Out-of-range banks are rejected.
        assert!(c.set_bank_penalty(99, 1, 1).is_err());
    }

    #[test]
    fn read_to_closed_row_is_illegal() {
        let mut c = cluster();
        let err = c
            .issue(DramCommand::Read { bank: 0, col: 0 }, 0)
            .unwrap_err();
        assert!(matches!(err, DramError::IllegalCommand { .. }));
    }

    #[test]
    fn act_to_open_bank_is_illegal() {
        let mut c = cluster();
        c.issue(DramCommand::Activate { bank: 1, row: 0 }, 0)
            .unwrap();
        let err = c
            .earliest_issue(DramCommand::Activate { bank: 1, row: 5 }, 0)
            .unwrap_err();
        assert!(matches!(err, DramError::IllegalCommand { .. }));
    }

    #[test]
    fn trrd_spaces_cross_bank_activates() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        let e = c
            .earliest_issue(DramCommand::Activate { bank: 1, row: 0 }, 0)
            .unwrap();
        assert_eq!(e, t.t_rrd);
    }

    #[test]
    fn back_to_back_reads_space_by_burst_length() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        c.issue(DramCommand::Read { bank: 0, col: 0 }, t.t_rcd)
            .unwrap();
        let e = c
            .earliest_issue(DramCommand::Read { bank: 0, col: 4 }, 0)
            .unwrap();
        assert_eq!(e, t.t_rcd + t.bl_ck);
    }

    #[test]
    fn write_read_turnaround_exceeds_burst_spacing() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        c.issue(DramCommand::Write { bank: 0, col: 0 }, t.t_rcd)
            .unwrap();
        let rd = c
            .earliest_issue(DramCommand::Read { bank: 0, col: 4 }, 0)
            .unwrap();
        let wr = c
            .earliest_issue(DramCommand::Write { bank: 0, col: 4 }, 0)
            .unwrap();
        assert_eq!(wr, t.t_rcd + t.bl_ck);
        assert_eq!(rd, t.t_rcd + t.wr_to_rd());
        assert!(rd > wr);
    }

    #[test]
    fn refresh_requires_all_banks_closed_and_blocks_trfc() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        assert!(matches!(
            c.earliest_issue(DramCommand::Refresh, 0),
            Err(DramError::IllegalCommand { .. })
        ));
        c.issue(DramCommand::Precharge { bank: 0 }, t.t_ras)
            .unwrap();
        let e = c.earliest_issue(DramCommand::Refresh, 0).unwrap();
        // After PRE at tRAS, REF must wait tRP (via the bank ACT watermark).
        assert_eq!(e, t.t_ras + t.t_rp);
        c.issue(DramCommand::Refresh, e).unwrap();
        let next = c
            .earliest_issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        assert_eq!(next, e + t.t_rfc);
    }

    #[test]
    fn power_down_gates_everything_but_pdx() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::PowerDownEnter, 5).unwrap();
        assert!(c.is_powered_down());
        assert!(matches!(
            c.earliest_issue(DramCommand::Activate { bank: 0, row: 0 }, 0),
            Err(DramError::IllegalCommand { .. })
        ));
        let e = c.earliest_issue(DramCommand::PowerDownExit, 0).unwrap();
        assert_eq!(e, 5 + t.t_cke_min);
        c.issue(DramCommand::PowerDownExit, e).unwrap();
        assert!(!c.is_powered_down());
        // tXP gates the next command.
        let act = c
            .earliest_issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        assert_eq!(act, e + t.t_xp);
    }

    #[test]
    fn power_down_enter_waits_for_data_drain() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        let out = c
            .issue(DramCommand::Read { bank: 0, col: 0 }, t.t_rcd)
            .unwrap();
        let e = c.earliest_issue(DramCommand::PowerDownEnter, 0).unwrap();
        assert_eq!(e, out.data_end_cycle.unwrap());
    }

    #[test]
    fn pdx_when_not_powered_down_is_illegal() {
        let c = cluster();
        assert!(matches!(
            c.earliest_issue(DramCommand::PowerDownExit, 0),
            Err(DramError::IllegalCommand { .. })
        ));
    }

    #[test]
    fn commands_cannot_go_backwards_in_time() {
        let mut c = cluster();
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 100)
            .unwrap();
        let err = c.issue(DramCommand::Precharge { bank: 1 }, 50).unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { .. }));
    }

    #[test]
    fn precharge_to_idle_bank_is_noop() {
        let mut c = cluster();
        c.issue(DramCommand::Precharge { bank: 0 }, 0).unwrap();
        assert_eq!(c.stats().precharges, 0);
    }

    #[test]
    fn stats_and_energy_accumulate() {
        let mut c = cluster();
        let t = *c.timing();
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        c.issue(DramCommand::Read { bank: 0, col: 0 }, t.t_rcd)
            .unwrap();
        c.issue(
            DramCommand::Write { bank: 0, col: 4 },
            t.t_rcd + t.rd_to_wr(),
        )
        .unwrap();
        let s = c.stats();
        assert_eq!((s.activates, s.reads, s.writes), (1, 1, 1));
        assert!(c.event_energy_pj() > 0.0);
        assert!(c.total_energy_pj(10_000) > c.event_energy_pj());
    }

    #[test]
    fn bad_bank_and_column_are_rejected() {
        let mut c = cluster();
        assert!(matches!(
            c.issue(DramCommand::Activate { bank: 9, row: 0 }, 0),
            Err(DramError::BadBank { .. })
        ));
        c.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        assert!(matches!(
            c.earliest_issue(DramCommand::Read { bank: 0, col: 512 }, 0),
            Err(DramError::IllegalCommand { .. })
        ));
        let mut c2 = cluster();
        assert!(matches!(
            c2.issue(DramCommand::Activate { bank: 0, row: 8192 }, 0),
            Err(DramError::IllegalCommand { .. })
        ));
    }
}
