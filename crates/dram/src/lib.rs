//! # mcm-dram — mobile DDR SDRAM device model
//!
//! Models the paper's *theoretical next-generation mobile DDR SDRAM*: a
//! 512 Mb, four-bank, ×32, double-data-rate device whose interface clock
//! spans the DDR2 range (200–533 MHz), with analog timings taken from the
//! contemporary Micron Mobile DDR datasheet class and a 1.35 V projected
//! core voltage (Section III of the paper).
//!
//! The crate provides:
//!
//! * [`Geometry`] / [`TimingParams`] / [`ResolvedTiming`] — device
//!   organization and the paper's frequency-extrapolation rule;
//! * [`AddressDecoder`] with the paper's two address-multiplexing types
//!   ([`AddressMapping::Rbc`] and [`AddressMapping::Brc`]);
//! * [`BankCluster`] — the command-level device state machine enforcing
//!   every timing window (tRCD, tRP, tRAS, tRC, tRRD, tFAW, tWR, tWTR,
//!   tRTP, tRFC, tXP, bus occupancy and read/write turnaround);
//! * the Micron TN-46-03-style power model ([`IddValues`], [`EnergyModel`],
//!   [`EnergyAccount`]) with background-state residency accounting and
//!   frequency/voltage scaling.
//!
//! # Examples
//!
//! Open a row, read a burst, observe data timing:
//!
//! ```
//! use mcm_dram::{BankCluster, ClusterConfig, DramCommand};
//!
//! let mut dev = BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(400)).unwrap();
//! let t = *dev.timing();
//! dev.issue(DramCommand::Activate { bank: 0, row: 3 }, 0).unwrap();
//! let out = dev.issue(DramCommand::Read { bank: 0, col: 0 }, t.t_rcd).unwrap();
//! // Read data completes CL + BL/2 cycles after the command.
//! assert_eq!(out.data_end_cycle, Some(t.t_rcd + t.cl + t.bl_ck));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Model code must surface failures as typed errors, never panic
// (clippy.toml lists the banned methods). Tests keep their unwraps.
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

mod address;
mod bank;
mod command;
pub mod datasheet;
mod device;
mod error;
mod params;
mod power;
pub mod timeline;
pub mod validate;

pub use address::{AddressDecoder, AddressMapping, DecodedAddress};
pub use bank::{Bank, BankPhase};
pub use command::DramCommand;
pub use device::{BankCluster, ClusterConfig, ClusterStats, IssueOutcome};
pub use error::DramError;
pub use params::{Geometry, ResolvedTiming, TimingParams};
pub use power::{BackgroundState, EnergyAccount, EnergyModel, IddValues, OperatingPoint};
pub use validate::{RuleKind, TraceValidator, TracedCommand, Violation};
