//! Per-bank state and timing windows.
//!
//! A bank is either idle (no open row) or active (one open row). All timing
//! legality is expressed as *earliest legal cycle* watermarks that commands
//! push forward; a command is legal at cycle `c` iff `c` is at or beyond
//! every watermark that applies to it. This representation makes the
//! scheduler O(1) per command and easy to property-test.

/// The row-state of a single DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankPhase {
    /// No open row.
    Idle,
    /// `row` is open and column commands may target it (after tRCD).
    Active {
        /// The open row.
        row: u32,
    },
}

/// One bank's timing bookkeeping (cycle-indexed watermarks).
#[derive(Debug, Clone, Copy)]
pub struct Bank {
    phase: BankPhase,
    /// Earliest cycle a new ACT may issue (pushed by PRE+tRP, own ACT+tRC,
    /// REF+tRFC).
    earliest_act: u64,
    /// Earliest cycle a column command may issue (pushed by ACT+tRCD).
    earliest_col: u64,
    /// Earliest cycle a PRE may issue (pushed by ACT+tRAS, RD+tRTP,
    /// WR data end+tWR).
    earliest_pre: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A fresh, idle bank with no pending constraints.
    pub fn new() -> Self {
        Bank {
            phase: BankPhase::Idle,
            earliest_act: 0,
            earliest_col: 0,
            earliest_pre: 0,
        }
    }

    /// Current row-state.
    #[inline]
    pub fn phase(&self) -> BankPhase {
        self.phase
    }

    /// The open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<u32> {
        match self.phase {
            BankPhase::Idle => None,
            BankPhase::Active { row } => Some(row),
        }
    }

    /// Whether the bank has an open row.
    #[inline]
    pub fn is_active(&self) -> bool {
        matches!(self.phase, BankPhase::Active { .. })
    }

    /// Earliest legal cycle for an ACT to this bank.
    #[inline]
    pub fn earliest_act(&self) -> u64 {
        self.earliest_act
    }

    /// Earliest legal cycle for a RD/WR to this bank.
    #[inline]
    pub fn earliest_col(&self) -> u64 {
        self.earliest_col
    }

    /// Earliest legal cycle for a PRE to this bank.
    #[inline]
    pub fn earliest_pre(&self) -> u64 {
        self.earliest_pre
    }

    /// Applies an ACT at `cycle`: opens `row`, arms tRCD/tRAS/tRC windows.
    pub fn apply_activate(&mut self, cycle: u64, row: u32, t_rcd: u64, t_ras: u64, t_rc: u64) {
        debug_assert!(
            !self.is_active(),
            "ACT to an active bank must be rejected by caller"
        );
        self.phase = BankPhase::Active { row };
        self.earliest_col = cycle + t_rcd;
        self.earliest_pre = self.earliest_pre.max(cycle + t_ras);
        self.earliest_act = self.earliest_act.max(cycle + t_rc);
    }

    /// Applies a column command at `cycle`, pushing the PRE watermark to
    /// `cycle + pre_gap` (tRTP for reads, WL+BL/2+tWR for writes).
    pub fn apply_column(&mut self, cycle: u64, pre_gap: u64) {
        debug_assert!(
            self.is_active(),
            "column command to idle bank must be rejected by caller"
        );
        self.earliest_pre = self.earliest_pre.max(cycle + pre_gap);
    }

    /// Applies a PRE at `cycle`: closes the row and arms tRP.
    pub fn apply_precharge(&mut self, cycle: u64, t_rp: u64) {
        self.phase = BankPhase::Idle;
        self.earliest_act = self.earliest_act.max(cycle + t_rp);
    }

    /// Pushes the ACT watermark (used by REF, which blocks rows for tRFC).
    pub fn push_act_watermark(&mut self, cycle: u64) {
        self.earliest_act = self.earliest_act.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_is_idle_and_unconstrained() {
        let b = Bank::new();
        assert!(!b.is_active());
        assert_eq!(b.open_row(), None);
        assert_eq!(b.earliest_act(), 0);
    }

    #[test]
    fn activate_opens_row_and_arms_windows() {
        let mut b = Bank::new();
        b.apply_activate(100, 42, 3, 8, 11);
        assert_eq!(b.open_row(), Some(42));
        assert_eq!(b.earliest_col(), 103);
        assert_eq!(b.earliest_pre(), 108);
        assert_eq!(b.earliest_act(), 111);
    }

    #[test]
    fn column_pushes_pre_watermark_monotonically() {
        let mut b = Bank::new();
        b.apply_activate(0, 1, 3, 8, 11);
        assert_eq!(b.earliest_pre(), 8);
        b.apply_column(3, 2); // 3+2=5 < 8: watermark unchanged
        assert_eq!(b.earliest_pre(), 8);
        b.apply_column(10, 9); // 10+9=19 > 8
        assert_eq!(b.earliest_pre(), 19);
    }

    #[test]
    fn precharge_closes_and_arms_trp() {
        let mut b = Bank::new();
        b.apply_activate(0, 1, 3, 8, 11);
        b.apply_precharge(8, 3);
        assert!(!b.is_active());
        // tRC from the ACT still dominates: max(11, 8+3) = 11.
        assert_eq!(b.earliest_act(), 11);
        let mut b2 = Bank::new();
        b2.apply_activate(0, 1, 3, 8, 11);
        b2.apply_precharge(20, 3);
        assert_eq!(b2.earliest_act(), 23);
    }
}
