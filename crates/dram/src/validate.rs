//! Independent command-trace validation.
//!
//! [`BankCluster`](crate::BankCluster) enforces timing legality with
//! earliest-cycle watermarks, which is fast but shares code with the very
//! scheduler it constrains. This module provides a *second, independent*
//! implementation of the JEDEC-style rules: a [`TraceValidator`] that
//! replays a recorded command trace and checks every window pairwise
//! against the resolved timing parameters. Property tests drive random
//! request streams through the controller and then assert that the trace
//! the device actually executed is legal under this oracle — any
//! disagreement between the two implementations is a bug in one of them.

use crate::command::DramCommand;
use crate::params::{Geometry, ResolvedTiming};

/// One committed command with its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedCommand {
    /// Interface-clock cycle of the command.
    pub cycle: u64,
    /// The command.
    pub cmd: DramCommand,
}

/// A timing-rule violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending command in the trace.
    pub index: usize,
    /// The offending command.
    pub cmd: DramCommand,
    /// Cycle at which it was issued.
    pub cycle: u64,
    /// Which rule it broke.
    pub rule: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "command #{} ({} @ cycle {}): {}",
            self.index, self.cmd, self.cycle, self.rule
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct BankView {
    open: bool,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_rd: Option<u64>,
    last_wr: Option<u64>,
}

impl BankView {
    fn new() -> Self {
        BankView {
            open: false,
            last_act: None,
            last_pre: None,
            last_rd: None,
            last_wr: None,
        }
    }
}

/// Replays a command trace and reports every timing/state violation.
///
/// The validator is deliberately written as pairwise "last event of kind X
/// → candidate command" checks straight from the rule definitions, with no
/// shared state machinery with the device model.
#[derive(Debug)]
pub struct TraceValidator {
    t: ResolvedTiming,
    geometry: Geometry,
}

impl TraceValidator {
    /// Creates a validator for one device configuration.
    pub fn new(timing: ResolvedTiming, geometry: Geometry) -> Self {
        TraceValidator {
            t: timing,
            geometry,
        }
    }

    /// Checks `trace` (commands in issue order) and returns all violations.
    pub fn check(&self, trace: &[TracedCommand]) -> Vec<Violation> {
        let t = self.t;
        let mut v = Vec::new();
        let mut banks = vec![BankView::new(); self.geometry.banks as usize];
        let mut last_cmd_cycle: Option<u64> = None;
        let mut last_any_act: Option<u64> = None;
        let mut last_ref: Option<u64> = None;
        let mut last_rd_any: Option<u64> = None;
        let mut last_wr_any: Option<u64> = None;
        let mut powered_down_since: Option<u64> = None;
        let mut last_pdx: Option<u64> = None;
        let mut self_refresh_since: Option<u64> = None;
        let mut last_srx: Option<u64> = None;

        fn push(v: &mut Vec<Violation>, index: usize, cmd: DramCommand, cycle: u64, rule: String) {
            v.push(Violation {
                index,
                cmd,
                cycle,
                rule,
            });
        }

        for (i, &TracedCommand { cycle, cmd }) in trace.iter().enumerate() {
            // Global rules.
            if let Some(prev) = last_cmd_cycle {
                if cycle < prev {
                    push(&mut v, i, cmd, cycle, format!("trace goes backwards (prev {prev})"));
                } else if cycle == prev {
                    push(&mut v, i, cmd, cycle, "command bus carries one command per cycle".into());
                }
            }
            if let Some(r) = last_ref {
                if cycle < r + t.t_rfc && !matches!(cmd, DramCommand::PowerDownExit) {
                    push(&mut v, i, cmd, cycle, format!("tRFC: REF at {r} blocks until {}", r + t.t_rfc));
                }
            }
            if let Some(x) = last_pdx {
                if cycle < x + t.t_xp {
                    push(&mut v, i, cmd, cycle, format!("tXP: PDX at {x} blocks until {}", x + t.t_xp));
                }
            }
            if powered_down_since.is_some() && !matches!(cmd, DramCommand::PowerDownExit) {
                push(&mut v, i, cmd, cycle, "device is powered down; only PDX is legal".into());
            }
            if self_refresh_since.is_some() && !matches!(cmd, DramCommand::SelfRefreshExit) {
                push(&mut v, i, cmd, cycle, "device is in self-refresh; only SRX is legal".into());
            }
            if let Some(x) = last_srx {
                if cycle < x + t.t_xsr {
                    push(&mut v, i, cmd, cycle, format!("tXSR: SRX at {x} blocks until {}", x + t.t_xsr));
                }
            }

            match cmd {
                DramCommand::Activate { bank, row } => {
                    let Some(b) = banks.get(bank as usize).copied() else {
                        push(&mut v, i, cmd, cycle, format!("bank {bank} out of range"));
                        continue;
                    };
                    if row >= self.geometry.rows {
                        push(&mut v, i, cmd, cycle, format!("row {row} out of range"));
                    }
                    if b.open {
                        push(&mut v, i, cmd, cycle, "ACT to a bank with an open row".into());
                    }
                    if let Some(a) = b.last_act {
                        if cycle < a + t.t_rc {
                            push(&mut v, i, cmd, cycle, format!("tRC: prior ACT at {a}"));
                        }
                    }
                    if let Some(p) = b.last_pre {
                        if cycle < p + t.t_rp {
                            push(&mut v, i, cmd, cycle, format!("tRP: prior PRE at {p}"));
                        }
                    }
                    if let Some(a) = last_any_act {
                        if cycle < a + t.t_rrd {
                            push(&mut v, i, cmd, cycle, format!("tRRD: prior ACT (any bank) at {a}"));
                        }
                    }
                    banks[bank as usize].open = true;
                    banks[bank as usize].last_act = Some(cycle);
                    last_any_act = Some(cycle);
                }
                DramCommand::Read { bank, col } | DramCommand::Write { bank, col } => {
                    let is_read = matches!(cmd, DramCommand::Read { .. });
                    let Some(b) = banks.get(bank as usize).copied() else {
                        push(&mut v, i, cmd, cycle, format!("bank {bank} out of range"));
                        continue;
                    };
                    if col >= self.geometry.cols {
                        push(&mut v, i, cmd, cycle, format!("column {col} out of range"));
                    }
                    if !b.open {
                        push(&mut v, i, cmd, cycle, "column command to a closed bank".into());
                    }
                    if let Some(a) = b.last_act {
                        if cycle < a + t.t_rcd {
                            push(&mut v, i, cmd, cycle, format!("tRCD: ACT at {a}"));
                        }
                    }
                    if is_read {
                        if let Some(r) = last_rd_any {
                            if cycle < r + t.bl_ck {
                                push(&mut v, i, cmd, cycle, format!("data bus: prior RD at {r}"));
                            }
                        }
                        if let Some(w) = last_wr_any {
                            if cycle < w + t.wr_to_rd() {
                                push(&mut v, i, cmd, cycle, format!("tWTR turnaround: prior WR at {w}"));
                            }
                        }
                        banks[bank as usize].last_rd = Some(cycle);
                        last_rd_any = Some(cycle);
                    } else {
                        if let Some(w) = last_wr_any {
                            if cycle < w + t.bl_ck {
                                push(&mut v, i, cmd, cycle, format!("data bus: prior WR at {w}"));
                            }
                        }
                        if let Some(r) = last_rd_any {
                            if cycle < r + t.rd_to_wr() {
                                push(&mut v, i, cmd, cycle, format!("bus turnaround: prior RD at {r}"));
                            }
                        }
                        banks[bank as usize].last_wr = Some(cycle);
                        last_wr_any = Some(cycle);
                    }
                }
                DramCommand::Precharge { bank } => {
                    let Some(b) = banks.get(bank as usize).copied() else {
                        push(&mut v, i, cmd, cycle, format!("bank {bank} out of range"));
                        continue;
                    };
                    if b.open {
                        self.check_pre_windows(i, cmd, cycle, &b, &mut v);
                        banks[bank as usize].open = false;
                        banks[bank as usize].last_pre = Some(cycle);
                    }
                    // PRE to an idle bank is a legal no-op.
                }
                DramCommand::PrechargeAll => {
                    for bi in 0..banks.len() {
                        let b = banks[bi];
                        if b.open {
                            self.check_pre_windows(i, cmd, cycle, &b, &mut v);
                            banks[bi].open = false;
                            banks[bi].last_pre = Some(cycle);
                        }
                    }
                }
                DramCommand::Refresh => {
                    if banks.iter().any(|b| b.open) {
                        push(&mut v, i, cmd, cycle, "REF with an open bank".into());
                    }
                    for b in &banks {
                        if let Some(p) = b.last_pre {
                            if cycle < p + t.t_rp {
                                push(&mut v, i, cmd, cycle, format!("tRP before REF: PRE at {p}"));
                            }
                        }
                    }
                    last_ref = Some(cycle);
                }
                DramCommand::PowerDownEnter => {
                    if powered_down_since.is_some() {
                        push(&mut v, i, cmd, cycle, "PDE while already powered down".into());
                    }
                    // In-flight data must have drained.
                    let data_end = last_rd_any
                        .map(|r| r + t.cl + t.bl_ck)
                        .into_iter()
                        .chain(last_wr_any.map(|w| w + t.wl + t.bl_ck))
                        .max();
                    if let Some(end) = data_end {
                        if cycle < end {
                            push(&mut v, i, cmd, cycle, format!("PDE before data drained (until {end})"));
                        }
                    }
                    powered_down_since = Some(cycle);
                }
                DramCommand::PowerDownExit => {
                    match powered_down_since {
                        None => push(&mut v, i, cmd, cycle, "PDX while not powered down".into()),
                        Some(e) => {
                            if cycle < e + t.t_cke_min {
                                push(&mut v, i, cmd, cycle, format!("tCKE: PDE at {e}"));
                            }
                        }
                    }
                    powered_down_since = None;
                    last_pdx = Some(cycle);
                }
                DramCommand::SelfRefreshEnter => {
                    if self_refresh_since.is_some() {
                        push(&mut v, i, cmd, cycle, "SRE while already in self-refresh".into());
                    }
                    if powered_down_since.is_some() {
                        push(&mut v, i, cmd, cycle, "SRE while powered down".into());
                    }
                    if banks.iter().any(|b| b.open) {
                        push(&mut v, i, cmd, cycle, "SRE with an open bank".into());
                    }
                    for b in &banks {
                        if let Some(p) = b.last_pre {
                            if cycle < p + t.t_rp {
                                push(&mut v, i, cmd, cycle, format!("tRP before SRE: PRE at {p}"));
                            }
                        }
                    }
                    self_refresh_since = Some(cycle);
                }
                DramCommand::SelfRefreshExit => {
                    match self_refresh_since {
                        None => push(&mut v, i, cmd, cycle, "SRX while not in self-refresh".into()),
                        Some(e) => {
                            if cycle < e + t.t_cke_min {
                                push(&mut v, i, cmd, cycle, format!("tCKE: SRE at {e}"));
                            }
                        }
                    }
                    self_refresh_since = None;
                    last_srx = Some(cycle);
                }
            }
            last_cmd_cycle = Some(cycle);
        }
        v
    }

    fn check_pre_windows(
        &self,
        index: usize,
        cmd: DramCommand,
        cycle: u64,
        b: &BankView,
        v: &mut Vec<Violation>,
    ) {
        let t = self.t;
        let mut report = |rule: String| {
            v.push(Violation {
                index,
                cmd,
                cycle,
                rule,
            });
        };
        if let Some(a) = b.last_act {
            if cycle < a + t.t_ras {
                report(format!("tRAS: ACT at {a}"));
            }
        }
        if let Some(r) = b.last_rd {
            if cycle < r + t.t_rtp {
                report(format!("tRTP: RD at {r}"));
            }
        }
        if let Some(w) = b.last_wr {
            if cycle < w + t.wr_to_pre() {
                report(format!("tWR: WR at {w}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TimingParams;

    fn validator() -> TraceValidator {
        let g = Geometry::next_gen_mobile_ddr();
        let t = TimingParams::next_gen_mobile_ddr().resolve(400, &g).unwrap();
        TraceValidator::new(t, g)
    }

    fn tc(cycle: u64, cmd: DramCommand) -> TracedCommand {
        TracedCommand { cycle, cmd }
    }

    #[test]
    fn legal_open_read_close_passes() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(6, DramCommand::Read { bank: 0, col: 0 }),
            tc(16, DramCommand::Precharge { bank: 0 }),
        ];
        assert!(v.check(&trace).is_empty());
    }

    #[test]
    fn trcd_violation_is_caught() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(3, DramCommand::Read { bank: 0, col: 0 }), // tRCD = 6
        ];
        let errs = v.check(&trace);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].rule.contains("tRCD"), "{}", errs[0]);
    }

    #[test]
    fn tras_violation_is_caught() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(10, DramCommand::Precharge { bank: 0 }), // tRAS = 16 @ 400 MHz
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("tRAS")));
    }

    #[test]
    fn same_cycle_commands_are_flagged() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(0, DramCommand::Activate { bank: 1, row: 1 }),
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("one command per cycle")));
    }

    #[test]
    fn read_to_closed_bank_is_flagged() {
        let v = validator();
        let errs = v.check(&[tc(0, DramCommand::Read { bank: 2, col: 0 })]);
        assert!(errs.iter().any(|e| e.rule.contains("closed bank")));
    }

    #[test]
    fn power_down_rules() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::PowerDownEnter),
            tc(5, DramCommand::Activate { bank: 0, row: 0 }), // illegal: PD
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("powered down")));

        let trace = [
            tc(0, DramCommand::PowerDownEnter),
            tc(2, DramCommand::PowerDownExit),
            tc(3, DramCommand::Activate { bank: 0, row: 0 }), // tXP = 2
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("tXP")));
    }

    #[test]
    fn refresh_rules() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 0 }),
            tc(100, DramCommand::Refresh), // bank open
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("open bank")));

        let trace = [
            tc(0, DramCommand::Refresh),
            tc(10, DramCommand::Activate { bank: 0, row: 0 }), // tRFC = 44
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("tRFC")));
    }

    #[test]
    fn turnaround_rules() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 0 }),
            tc(6, DramCommand::Write { bank: 0, col: 0 }),
            tc(8, DramCommand::Read { bank: 0, col: 4 }), // wr_to_rd = 5
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("tWTR")), "{errs:?}");
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            index: 3,
            cmd: DramCommand::Refresh,
            cycle: 17,
            rule: "tRFC".into(),
        };
        assert_eq!(v.to_string(), "command #3 (REF @ cycle 17): tRFC");
    }
}
