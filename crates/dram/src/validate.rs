//! Independent command-trace validation.
//!
//! [`BankCluster`](crate::BankCluster) enforces timing legality with
//! earliest-cycle watermarks, which is fast but shares code with the very
//! scheduler it constrains. This module provides a *second, independent*
//! implementation of the JEDEC-style rules: a [`TraceValidator`] that
//! replays a recorded command trace and checks every window pairwise
//! against the resolved timing parameters. Property tests drive random
//! request streams through the controller and then assert that the trace
//! the device actually executed is legal under this oracle — any
//! disagreement between the two implementations is a bug in one of them.
//!
//! Every violation carries a machine-readable [`RuleKind`] with a stable
//! `MCM0xx` identifier; the `mcm-verify` crate builds its diagnostic
//! catalogue on top of these.

use crate::command::DramCommand;
use crate::params::{Geometry, ResolvedTiming};

/// One committed command with its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedCommand {
    /// Interface-clock cycle of the command.
    pub cycle: u64,
    /// The command.
    pub cmd: DramCommand,
}

/// The rule a trace violation broke, with a stable diagnostic identifier.
///
/// Identifiers are part of the tool's output contract (`mcm check` prints
/// and JSON-encodes them); add new variants at the end and never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// MCM001: trace ordering — cycles must be monotonic and the command
    /// bus carries one command per cycle.
    CommandBus,
    /// MCM002: tRCD — ACT to column command in the same bank.
    Trcd,
    /// MCM003: tRAS — minimum row-open time before PRE.
    Tras,
    /// MCM004: tRC — ACT to ACT in the same bank.
    Trc,
    /// MCM005: tRP — PRE to next use of the bank.
    Trp,
    /// MCM006: tRRD — ACT to ACT across banks.
    Trrd,
    /// MCM007: bank/row/column addressing and open/closed-state legality.
    BankState,
    /// MCM008: data-bus occupancy — burst data beats may not overlap.
    DataBus,
    /// MCM009: read↔write bus turnaround (tWTR and read-to-write gap).
    Turnaround,
    /// MCM010: write recovery and read-to-precharge (tWR, tRTP).
    WriteRecovery,
    /// MCM011: refresh timing — tRFC blackout, banks precharged around REF.
    RefreshTiming,
    /// MCM012: refresh-interval budget — matured tREFI obligations must not
    /// outrun issued REFs by more than the postpone allowance.
    RefreshBudget,
    /// MCM013: power-down entry/exit legality (CKE rules, tXP, drain).
    PowerDown,
    /// MCM014: self-refresh entry/exit legality (tXSR, precharged entry).
    SelfRefresh,
    /// MCM015: tFAW — at most four ACTs in any four-activate window.
    Tfaw,
}

impl RuleKind {
    /// The stable diagnostic identifier, e.g. `"MCM002"`.
    pub fn id(&self) -> &'static str {
        match self {
            RuleKind::CommandBus => "MCM001",
            RuleKind::Trcd => "MCM002",
            RuleKind::Tras => "MCM003",
            RuleKind::Trc => "MCM004",
            RuleKind::Trp => "MCM005",
            RuleKind::Trrd => "MCM006",
            RuleKind::BankState => "MCM007",
            RuleKind::DataBus => "MCM008",
            RuleKind::Turnaround => "MCM009",
            RuleKind::WriteRecovery => "MCM010",
            RuleKind::RefreshTiming => "MCM011",
            RuleKind::RefreshBudget => "MCM012",
            RuleKind::PowerDown => "MCM013",
            RuleKind::SelfRefresh => "MCM014",
            RuleKind::Tfaw => "MCM015",
        }
    }

    /// One-line description of the rule for catalogues and `--help` text.
    pub fn describe(&self) -> &'static str {
        match self {
            RuleKind::CommandBus => "command-bus ordering: one command per cycle, monotonic time",
            RuleKind::Trcd => "tRCD: row activate to column command",
            RuleKind::Tras => "tRAS: minimum row-open time before precharge",
            RuleKind::Trc => "tRC: activate to activate, same bank",
            RuleKind::Trp => "tRP: precharge to next use of the bank",
            RuleKind::Trrd => "tRRD: activate to activate, different banks",
            RuleKind::BankState => "bank state: addressing range and open/closed legality",
            RuleKind::DataBus => "data bus: burst data beats may not overlap",
            RuleKind::Turnaround => "bus turnaround: read/write direction switches",
            RuleKind::WriteRecovery => "write recovery / read-to-precharge (tWR, tRTP)",
            RuleKind::RefreshTiming => "refresh timing: tRFC blackout, banks precharged",
            RuleKind::RefreshBudget => "refresh budget: REFs keep up with matured tREFI intervals",
            RuleKind::PowerDown => "power-down entry/exit legality (CKE, tXP)",
            RuleKind::SelfRefresh => "self-refresh entry/exit legality (tXSR)",
            RuleKind::Tfaw => "tFAW: at most four activates per rolling window",
        }
    }

    /// All rule kinds, in identifier order (for catalogue listings).
    pub const ALL: [RuleKind; 15] = [
        RuleKind::CommandBus,
        RuleKind::Trcd,
        RuleKind::Tras,
        RuleKind::Trc,
        RuleKind::Trp,
        RuleKind::Trrd,
        RuleKind::BankState,
        RuleKind::DataBus,
        RuleKind::Turnaround,
        RuleKind::WriteRecovery,
        RuleKind::RefreshTiming,
        RuleKind::RefreshBudget,
        RuleKind::PowerDown,
        RuleKind::SelfRefresh,
        RuleKind::Tfaw,
    ];
}

/// A timing-rule violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending command in the trace.
    pub index: usize,
    /// The offending command.
    pub cmd: DramCommand,
    /// Cycle at which it was issued.
    pub cycle: u64,
    /// Which rule it broke (machine-readable).
    pub kind: RuleKind,
    /// Which rule it broke (human-readable detail).
    pub rule: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "command #{} ({} @ cycle {}): {}",
            self.index, self.cmd, self.cycle, self.rule
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct BankView {
    open: bool,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_rd: Option<u64>,
    last_wr: Option<u64>,
}

impl BankView {
    fn new() -> Self {
        BankView {
            open: false,
            last_act: None,
            last_pre: None,
            last_rd: None,
            last_wr: None,
        }
    }
}

/// Replays a command trace and reports every timing/state violation.
///
/// The validator is deliberately written as pairwise "last event of kind X
/// → candidate command" checks straight from the rule definitions, with no
/// shared state machinery with the device model.
#[derive(Debug)]
pub struct TraceValidator {
    t: ResolvedTiming,
    geometry: Geometry,
    /// When set, enforce the refresh-interval budget (MCM012): matured
    /// tREFI obligations may outrun issued REFs by at most this many
    /// postponed intervals (plus one in flight).
    refresh_budget: Option<u32>,
}

impl TraceValidator {
    /// Creates a validator for one device configuration.
    pub fn new(timing: ResolvedTiming, geometry: Geometry) -> Self {
        TraceValidator {
            t: timing,
            geometry,
            refresh_budget: None,
        }
    }

    /// Enables the refresh-interval budget rule (MCM012) with the given
    /// postpone allowance (a controller's `RefreshPolicy::max_postpone`).
    ///
    /// Off by default because a partial trace window legitimately carries
    /// no refresh obligations; enable it when auditing a full run of a
    /// refresh-enabled controller. Time spent in self-refresh matures no
    /// obligations, matching controller accounting.
    pub fn with_refresh_budget(mut self, max_postpone: u32) -> Self {
        self.refresh_budget = Some(max_postpone);
        self
    }

    /// Checks `trace` (commands in issue order) and returns all violations.
    pub fn check(&self, trace: &[TracedCommand]) -> Vec<Violation> {
        let t = self.t;
        let mut v = Vec::new();
        let mut banks = vec![BankView::new(); self.geometry.banks as usize];
        let mut last_cmd_cycle: Option<u64> = None;
        let mut last_any_act: Option<u64> = None;
        let mut recent_acts: Vec<u64> = Vec::new();
        let mut last_ref: Option<u64> = None;
        let mut last_rd_any: Option<u64> = None;
        let mut last_wr_any: Option<u64> = None;
        let mut powered_down_since: Option<u64> = None;
        let mut last_pdx: Option<u64> = None;
        let mut self_refresh_since: Option<u64> = None;
        let mut last_srx: Option<u64> = None;
        let mut refreshes_issued: u64 = 0;
        let mut self_refresh_total: u64 = 0;
        let mut over_budget = false;

        fn push(
            v: &mut Vec<Violation>,
            index: usize,
            cmd: DramCommand,
            cycle: u64,
            kind: RuleKind,
            rule: String,
        ) {
            v.push(Violation {
                index,
                cmd,
                cycle,
                kind,
                rule,
            });
        }

        for (i, &TracedCommand { cycle, cmd }) in trace.iter().enumerate() {
            // Global rules.
            if let Some(prev) = last_cmd_cycle {
                if cycle < prev {
                    push(
                        &mut v,
                        i,
                        cmd,
                        cycle,
                        RuleKind::CommandBus,
                        format!("trace goes backwards (prev {prev})"),
                    );
                } else if cycle == prev {
                    push(
                        &mut v,
                        i,
                        cmd,
                        cycle,
                        RuleKind::CommandBus,
                        "command bus carries one command per cycle".into(),
                    );
                }
            }
            if let Some(r) = last_ref {
                if cycle < r + t.t_rfc && !matches!(cmd, DramCommand::PowerDownExit) {
                    push(
                        &mut v,
                        i,
                        cmd,
                        cycle,
                        RuleKind::RefreshTiming,
                        format!("tRFC: REF at {r} blocks until {}", r + t.t_rfc),
                    );
                }
            }
            if let Some(x) = last_pdx {
                if cycle < x + t.t_xp {
                    push(
                        &mut v,
                        i,
                        cmd,
                        cycle,
                        RuleKind::PowerDown,
                        format!("tXP: PDX at {x} blocks until {}", x + t.t_xp),
                    );
                }
            }
            if powered_down_since.is_some() && !matches!(cmd, DramCommand::PowerDownExit) {
                push(
                    &mut v,
                    i,
                    cmd,
                    cycle,
                    RuleKind::PowerDown,
                    "device is powered down; only PDX is legal".into(),
                );
            }
            if self_refresh_since.is_some() && !matches!(cmd, DramCommand::SelfRefreshExit) {
                push(
                    &mut v,
                    i,
                    cmd,
                    cycle,
                    RuleKind::SelfRefresh,
                    "device is in self-refresh; only SRX is legal".into(),
                );
            }
            if let Some(x) = last_srx {
                if cycle < x + t.t_xsr {
                    push(
                        &mut v,
                        i,
                        cmd,
                        cycle,
                        RuleKind::SelfRefresh,
                        format!("tXSR: SRX at {x} blocks until {}", x + t.t_xsr),
                    );
                }
            }
            if let Some(max_postpone) = self.refresh_budget {
                // Obligations mature with elapsed time outside self-refresh
                // (one REF due per tREFI). The scheduler is allowed to hold
                // `max_postpone` of them plus the one being serviced.
                let sr_now =
                    self_refresh_total + self_refresh_since.map_or(0, |e| cycle.saturating_sub(e));
                let matured = cycle.saturating_sub(sr_now) / t.t_refi;
                let deficit = matured.saturating_sub(refreshes_issued);
                if deficit > max_postpone as u64 + 1 {
                    // Report the excursion once, not per command.
                    if !over_budget {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::RefreshBudget,
                            format!(
                                "refresh budget: {deficit} intervals overdue (allowance {})",
                                max_postpone as u64 + 1
                            ),
                        );
                    }
                    over_budget = true;
                } else {
                    over_budget = false;
                }
            }

            match cmd {
                DramCommand::Activate { bank, row } => {
                    let Some(b) = banks.get(bank as usize).copied() else {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::BankState,
                            format!("bank {bank} out of range"),
                        );
                        continue;
                    };
                    if row >= self.geometry.rows {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::BankState,
                            format!("row {row} out of range"),
                        );
                    }
                    if b.open {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::BankState,
                            "ACT to a bank with an open row".into(),
                        );
                    }
                    if let Some(a) = b.last_act {
                        if cycle < a + t.t_rc {
                            push(
                                &mut v,
                                i,
                                cmd,
                                cycle,
                                RuleKind::Trc,
                                format!("tRC: prior ACT at {a}"),
                            );
                        }
                    }
                    if let Some(p) = b.last_pre {
                        if cycle < p + t.t_rp {
                            push(
                                &mut v,
                                i,
                                cmd,
                                cycle,
                                RuleKind::Trp,
                                format!("tRP: prior PRE at {p}"),
                            );
                        }
                    }
                    if let Some(a) = last_any_act {
                        if cycle < a + t.t_rrd {
                            push(
                                &mut v,
                                i,
                                cmd,
                                cycle,
                                RuleKind::Trrd,
                                format!("tRRD: prior ACT (any bank) at {a}"),
                            );
                        }
                    }
                    if recent_acts.len() >= 4 {
                        let window_start = recent_acts[recent_acts.len() - 4];
                        if cycle < window_start + t.t_faw {
                            push(&mut v, i, cmd, cycle, RuleKind::Tfaw, format!(
                                "tFAW: fifth ACT inside the four-activate window opened at {window_start}"
                            ));
                        }
                        recent_acts.remove(0);
                    }
                    recent_acts.push(cycle);
                    banks[bank as usize].open = true;
                    banks[bank as usize].last_act = Some(cycle);
                    last_any_act = Some(cycle);
                }
                DramCommand::Read { bank, col } | DramCommand::Write { bank, col } => {
                    let is_read = matches!(cmd, DramCommand::Read { .. });
                    let Some(b) = banks.get(bank as usize).copied() else {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::BankState,
                            format!("bank {bank} out of range"),
                        );
                        continue;
                    };
                    if col >= self.geometry.cols {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::BankState,
                            format!("column {col} out of range"),
                        );
                    }
                    if !b.open {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::BankState,
                            "column command to a closed bank".into(),
                        );
                    }
                    if let Some(a) = b.last_act {
                        if cycle < a + t.t_rcd {
                            push(
                                &mut v,
                                i,
                                cmd,
                                cycle,
                                RuleKind::Trcd,
                                format!("tRCD: ACT at {a}"),
                            );
                        }
                    }
                    if is_read {
                        if let Some(r) = last_rd_any {
                            if cycle < r + t.bl_ck {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::DataBus,
                                    format!("data bus: prior RD at {r}"),
                                );
                            }
                        }
                        if let Some(w) = last_wr_any {
                            if cycle < w + t.wr_to_rd() {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::Turnaround,
                                    format!("tWTR turnaround: prior WR at {w}"),
                                );
                            }
                        }
                        banks[bank as usize].last_rd = Some(cycle);
                        last_rd_any = Some(cycle);
                    } else {
                        if let Some(w) = last_wr_any {
                            if cycle < w + t.bl_ck {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::DataBus,
                                    format!("data bus: prior WR at {w}"),
                                );
                            }
                        }
                        if let Some(r) = last_rd_any {
                            if cycle < r + t.rd_to_wr() {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::Turnaround,
                                    format!("bus turnaround: prior RD at {r}"),
                                );
                            }
                        }
                        banks[bank as usize].last_wr = Some(cycle);
                        last_wr_any = Some(cycle);
                    }
                }
                DramCommand::Precharge { bank } => {
                    let Some(b) = banks.get(bank as usize).copied() else {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::BankState,
                            format!("bank {bank} out of range"),
                        );
                        continue;
                    };
                    if b.open {
                        self.check_pre_windows(i, cmd, cycle, &b, &mut v);
                        banks[bank as usize].open = false;
                        banks[bank as usize].last_pre = Some(cycle);
                    }
                    // PRE to an idle bank is a legal no-op.
                }
                DramCommand::PrechargeAll => {
                    for slot in banks.iter_mut() {
                        let b = *slot;
                        if b.open {
                            self.check_pre_windows(i, cmd, cycle, &b, &mut v);
                            slot.open = false;
                            slot.last_pre = Some(cycle);
                        }
                    }
                }
                DramCommand::Refresh => {
                    if banks.iter().any(|b| b.open) {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::RefreshTiming,
                            "REF with an open bank".into(),
                        );
                    }
                    for b in &banks {
                        if let Some(p) = b.last_pre {
                            if cycle < p + t.t_rp {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::RefreshTiming,
                                    format!("tRP before REF: PRE at {p}"),
                                );
                            }
                        }
                    }
                    last_ref = Some(cycle);
                    refreshes_issued += 1;
                }
                DramCommand::PowerDownEnter => {
                    if powered_down_since.is_some() {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::PowerDown,
                            "PDE while already powered down".into(),
                        );
                    }
                    // In-flight data must have drained.
                    let data_end = last_rd_any
                        .map(|r| r + t.cl + t.bl_ck)
                        .into_iter()
                        .chain(last_wr_any.map(|w| w + t.wl + t.bl_ck))
                        .max();
                    if let Some(end) = data_end {
                        if cycle < end {
                            push(
                                &mut v,
                                i,
                                cmd,
                                cycle,
                                RuleKind::PowerDown,
                                format!("PDE before data drained (until {end})"),
                            );
                        }
                    }
                    powered_down_since = Some(cycle);
                }
                DramCommand::PowerDownExit => {
                    match powered_down_since {
                        None => push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::PowerDown,
                            "PDX while not powered down".into(),
                        ),
                        Some(e) => {
                            if cycle < e + t.t_cke_min {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::PowerDown,
                                    format!("tCKE: PDE at {e}"),
                                );
                            }
                        }
                    }
                    powered_down_since = None;
                    last_pdx = Some(cycle);
                }
                DramCommand::SelfRefreshEnter => {
                    if self_refresh_since.is_some() {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::SelfRefresh,
                            "SRE while already in self-refresh".into(),
                        );
                    }
                    if powered_down_since.is_some() {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::SelfRefresh,
                            "SRE while powered down".into(),
                        );
                    }
                    if banks.iter().any(|b| b.open) {
                        push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::SelfRefresh,
                            "SRE with an open bank".into(),
                        );
                    }
                    for b in &banks {
                        if let Some(p) = b.last_pre {
                            if cycle < p + t.t_rp {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::SelfRefresh,
                                    format!("tRP before SRE: PRE at {p}"),
                                );
                            }
                        }
                    }
                    self_refresh_since = Some(cycle);
                }
                DramCommand::SelfRefreshExit => {
                    match self_refresh_since {
                        None => push(
                            &mut v,
                            i,
                            cmd,
                            cycle,
                            RuleKind::SelfRefresh,
                            "SRX while not in self-refresh".into(),
                        ),
                        Some(e) => {
                            if cycle < e + t.t_cke_min {
                                push(
                                    &mut v,
                                    i,
                                    cmd,
                                    cycle,
                                    RuleKind::SelfRefresh,
                                    format!("tCKE: SRE at {e}"),
                                );
                            }
                            self_refresh_total += cycle.saturating_sub(e);
                        }
                    }
                    self_refresh_since = None;
                    last_srx = Some(cycle);
                }
            }
            last_cmd_cycle = Some(cycle);
        }
        v
    }

    fn check_pre_windows(
        &self,
        index: usize,
        cmd: DramCommand,
        cycle: u64,
        b: &BankView,
        v: &mut Vec<Violation>,
    ) {
        let t = self.t;
        let mut report = |kind: RuleKind, rule: String| {
            v.push(Violation {
                index,
                cmd,
                cycle,
                kind,
                rule,
            });
        };
        if let Some(a) = b.last_act {
            if cycle < a + t.t_ras {
                report(RuleKind::Tras, format!("tRAS: ACT at {a}"));
            }
        }
        if let Some(r) = b.last_rd {
            if cycle < r + t.t_rtp {
                report(RuleKind::WriteRecovery, format!("tRTP: RD at {r}"));
            }
        }
        if let Some(w) = b.last_wr {
            if cycle < w + t.wr_to_pre() {
                report(RuleKind::WriteRecovery, format!("tWR: WR at {w}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TimingParams;

    fn validator() -> TraceValidator {
        let g = Geometry::next_gen_mobile_ddr();
        let t = TimingParams::next_gen_mobile_ddr()
            .resolve(400, &g)
            .unwrap();
        TraceValidator::new(t, g)
    }

    fn tc(cycle: u64, cmd: DramCommand) -> TracedCommand {
        TracedCommand { cycle, cmd }
    }

    #[test]
    fn legal_open_read_close_passes() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(6, DramCommand::Read { bank: 0, col: 0 }),
            tc(16, DramCommand::Precharge { bank: 0 }),
        ];
        assert!(v.check(&trace).is_empty());
    }

    #[test]
    fn trcd_violation_is_caught() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(3, DramCommand::Read { bank: 0, col: 0 }), // tRCD = 6
        ];
        let errs = v.check(&trace);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].rule.contains("tRCD"), "{}", errs[0]);
        assert_eq!(errs[0].kind, RuleKind::Trcd);
        assert_eq!(errs[0].kind.id(), "MCM002");
    }

    #[test]
    fn tras_violation_is_caught() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(10, DramCommand::Precharge { bank: 0 }), // tRAS = 16 @ 400 MHz
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.kind == RuleKind::Tras));
    }

    #[test]
    fn same_cycle_commands_are_flagged() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(0, DramCommand::Activate { bank: 1, row: 1 }),
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.kind == RuleKind::CommandBus));
    }

    #[test]
    fn read_to_closed_bank_is_flagged() {
        let v = validator();
        let errs = v.check(&[tc(0, DramCommand::Read { bank: 2, col: 0 })]);
        assert!(errs.iter().any(|e| e.rule.contains("closed bank")));
        assert!(errs.iter().any(|e| e.kind == RuleKind::BankState));
    }

    #[test]
    fn power_down_rules() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::PowerDownEnter),
            tc(5, DramCommand::Activate { bank: 0, row: 0 }), // illegal: PD
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("powered down")));
        assert!(errs.iter().any(|e| e.kind == RuleKind::PowerDown));

        let trace = [
            tc(0, DramCommand::PowerDownEnter),
            tc(2, DramCommand::PowerDownExit),
            tc(3, DramCommand::Activate { bank: 0, row: 0 }), // tXP = 2
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("tXP")));
    }

    #[test]
    fn refresh_rules() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 0 }),
            tc(100, DramCommand::Refresh), // bank open
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.rule.contains("open bank")));

        let trace = [
            tc(0, DramCommand::Refresh),
            tc(10, DramCommand::Activate { bank: 0, row: 0 }), // tRFC = 44
        ];
        let errs = v.check(&trace);
        assert!(errs.iter().any(|e| e.kind == RuleKind::RefreshTiming));
    }

    #[test]
    fn turnaround_rules() {
        let v = validator();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 0 }),
            tc(6, DramCommand::Write { bank: 0, col: 0 }),
            tc(8, DramCommand::Read { bank: 0, col: 4 }), // wr_to_rd = 5
        ];
        let errs = v.check(&trace);
        assert!(
            errs.iter().any(|e| e.kind == RuleKind::Turnaround),
            "{errs:?}"
        );
    }

    #[test]
    fn tfaw_violation_needs_eight_banks() {
        // With 8 banks, five ACTs spaced at tRRD land inside tFAW without
        // breaking tRC (each goes to a fresh bank).
        let mut g = Geometry::next_gen_mobile_ddr();
        g.banks = 8;
        g.rows = 4096; // keep capacity constant-ish; only legality matters
        let t = TimingParams::next_gen_mobile_ddr()
            .resolve(400, &g)
            .unwrap();
        assert_eq!(t.t_rrd, 4);
        assert_eq!(t.t_faw, 18);
        let v = TraceValidator::new(t, g);
        let trace: Vec<TracedCommand> = (0u64..5)
            .map(|k| {
                tc(
                    k * 4,
                    DramCommand::Activate {
                        bank: k as u32,
                        row: 0,
                    },
                )
            })
            .collect();
        let errs = v.check(&trace);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert_eq!(errs[0].kind, RuleKind::Tfaw);
        assert_eq!(errs[0].cycle, 16); // fifth ACT at 4×tRRD, two cycles inside tFAW

        // Spaced at tFAW/4 the same pattern is legal.
        let trace: Vec<TracedCommand> = (0u64..5)
            .map(|k| {
                tc(
                    k * 5,
                    DramCommand::Activate {
                        bank: k as u32,
                        row: 0,
                    },
                )
            })
            .collect();
        assert!(v.check(&trace).is_empty());
    }

    #[test]
    fn refresh_budget_rule_is_opt_in() {
        let g = Geometry::next_gen_mobile_ddr();
        let t = TimingParams::next_gen_mobile_ddr()
            .resolve(400, &g)
            .unwrap();
        // 20 matured intervals, no REF in the trace.
        let quiet = [
            tc(0, DramCommand::Activate { bank: 0, row: 0 }),
            tc(20 * t.t_refi, DramCommand::Precharge { bank: 0 }),
        ];
        let off = TraceValidator::new(t, g);
        assert!(off.check(&quiet).is_empty());
        let on = TraceValidator::new(t, g).with_refresh_budget(8);
        let errs = on.check(&quiet);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert_eq!(errs[0].kind, RuleKind::RefreshBudget);
        assert_eq!(errs[0].kind.id(), "MCM012");
    }

    #[test]
    fn refresh_budget_honours_self_refresh() {
        let g = Geometry::next_gen_mobile_ddr();
        let t = TimingParams::next_gen_mobile_ddr()
            .resolve(400, &g)
            .unwrap();
        let v = TraceValidator::new(t, g).with_refresh_budget(0);
        // 20 tREFI of wall time, but all of it inside self-refresh: the
        // device refreshes itself, so no obligations mature.
        let trace = [
            tc(0, DramCommand::SelfRefreshEnter),
            tc(20 * t.t_refi, DramCommand::SelfRefreshExit),
        ];
        assert!(v.check(&trace).is_empty(), "{:?}", v.check(&trace));
    }

    #[test]
    fn rule_ids_are_stable_and_unique() {
        let mut ids: Vec<&str> = RuleKind::ALL.iter().map(|k| k.id()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule ids");
        assert_eq!(RuleKind::Tfaw.id(), "MCM015");
        assert!(RuleKind::ALL.iter().all(|k| !k.describe().is_empty()));
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            index: 3,
            cmd: DramCommand::Refresh,
            cycle: 17,
            kind: RuleKind::RefreshTiming,
            rule: "tRFC".into(),
        };
        assert_eq!(v.to_string(), "command #3 (REF @ cycle 17): tRFC");
    }
}
