//! DRAM address multiplexing: how a flat channel-local byte address maps to
//! (bank, row, column).
//!
//! The paper evaluates two types and reports that **Row–Bank–Column (RBC)**
//! performs somewhat better than **Bank–Row–Column (BRC)**; all headline
//! results use RBC. The reason is visible in the sequential traffic of the
//! video use case:
//!
//! * under RBC the bank bits sit between row and column, so a sequential
//!   sweep crosses into *a different bank's* row at every page boundary —
//!   the controller can activate the next bank while the current one is
//!   still bursting;
//! * under BRC the bank bits are most significant, so a sweep stays in one
//!   bank and pays the full precharge+activate stall at every page boundary.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::params::Geometry;

/// Address multiplexing type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Row–Bank–Column: `addr = row ‖ bank ‖ col ‖ byte` (paper's choice).
    #[default]
    Rbc,
    /// Bank–Row–Column: `addr = bank ‖ row ‖ col ‖ byte`.
    Brc,
}

impl fmt::Display for AddressMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressMapping::Rbc => write!(f, "RBC"),
            AddressMapping::Brc => write!(f, "BRC"),
        }
    }
}

/// A decoded channel-local address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddress {
    /// Bank index.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column index within the row (word granularity).
    pub col: u32,
}

/// An address decoder bound to one geometry and mapping.
///
/// # Examples
///
/// ```
/// use mcm_dram::{AddressDecoder, AddressMapping, Geometry};
///
/// let dec = AddressDecoder::new(Geometry::next_gen_mobile_ddr(), AddressMapping::Rbc).unwrap();
/// let d = dec.decode(0).unwrap();
/// assert_eq!((d.bank, d.row, d.col), (0, 0, 0));
/// // One page (2 KiB) later under RBC: same row, next bank.
/// let d = dec.decode(2048).unwrap();
/// assert_eq!((d.bank, d.row, d.col), (1, 0, 0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressDecoder {
    geometry: Geometry,
    mapping: AddressMapping,
    byte_bits: u32,
    col_bits: u32,
    bank_bits: u32,
    row_bits: u32,
}

impl AddressDecoder {
    /// Creates a decoder; fails if the geometry is invalid.
    pub fn new(geometry: Geometry, mapping: AddressMapping) -> Result<Self, DramError> {
        geometry.validate()?;
        Ok(AddressDecoder {
            geometry,
            mapping,
            byte_bits: geometry.word_bytes().trailing_zeros(),
            col_bits: geometry.cols.trailing_zeros(),
            bank_bits: geometry.banks.trailing_zeros(),
            row_bits: geometry.rows.trailing_zeros(),
        })
    }

    /// The geometry this decoder addresses.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The multiplexing type in use.
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Decodes a channel-local byte address.
    pub fn decode(&self, addr: u64) -> Result<DecodedAddress, DramError> {
        if addr >= self.geometry.capacity_bytes() {
            return Err(DramError::AddressOutOfRange {
                addr,
                capacity_bytes: self.geometry.capacity_bytes(),
            });
        }
        let word = addr >> self.byte_bits;
        let col = (word & ((1 << self.col_bits) - 1)) as u32;
        let rest = word >> self.col_bits;
        let (bank, row) = match self.mapping {
            AddressMapping::Rbc => {
                let bank = (rest & ((1 << self.bank_bits) - 1)) as u32;
                let row = (rest >> self.bank_bits) as u32;
                (bank, row)
            }
            AddressMapping::Brc => {
                let row = (rest & ((1 << self.row_bits) - 1)) as u32;
                let bank = (rest >> self.row_bits) as u32;
                (bank, row)
            }
        };
        Ok(DecodedAddress { bank, row, col })
    }

    /// Re-encodes a decoded address back to the flat byte address of its
    /// first byte (inverse of [`AddressDecoder::decode`] at word alignment).
    pub fn encode(&self, d: DecodedAddress) -> Result<u64, DramError> {
        if d.bank >= self.geometry.banks {
            return Err(DramError::BadBank {
                bank: d.bank,
                banks: self.geometry.banks,
            });
        }
        if d.row >= self.geometry.rows || d.col >= self.geometry.cols {
            return Err(DramError::AddressOutOfRange {
                addr: u64::MAX,
                capacity_bytes: self.geometry.capacity_bytes(),
            });
        }
        let rest = match self.mapping {
            AddressMapping::Rbc => ((d.row as u64) << self.bank_bits) | d.bank as u64,
            AddressMapping::Brc => ((d.bank as u64) << self.row_bits) | d.row as u64,
        };
        Ok(((rest << self.col_bits) | d.col as u64) << self.byte_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(mapping: AddressMapping) -> AddressDecoder {
        AddressDecoder::new(Geometry::next_gen_mobile_ddr(), mapping).unwrap()
    }

    #[test]
    fn rbc_sequential_sweep_rotates_banks_at_page_boundaries() {
        let d = dec(AddressMapping::Rbc);
        let page = d.geometry().page_bytes() as u64;
        let a0 = d.decode(0).unwrap();
        let a1 = d.decode(page).unwrap();
        let a4 = d.decode(4 * page).unwrap();
        assert_eq!((a0.bank, a0.row), (0, 0));
        assert_eq!((a1.bank, a1.row), (1, 0));
        // After all four banks, the row advances.
        assert_eq!((a4.bank, a4.row), (0, 1));
    }

    #[test]
    fn brc_sequential_sweep_stays_in_bank() {
        let d = dec(AddressMapping::Brc);
        let page = d.geometry().page_bytes() as u64;
        let a1 = d.decode(page).unwrap();
        assert_eq!((a1.bank, a1.row), (0, 1));
        // Bank changes only after sweeping all rows of bank 0.
        let bank_span = page * d.geometry().rows as u64;
        let b = d.decode(bank_span).unwrap();
        assert_eq!((b.bank, b.row), (1, 0));
    }

    #[test]
    fn columns_advance_within_page() {
        for mapping in [AddressMapping::Rbc, AddressMapping::Brc] {
            let d = dec(mapping);
            let a = d.decode(16).unwrap(); // one burst in
            assert_eq!(a.col, 4); // 16 bytes / 4-byte words
            assert_eq!(a.bank, 0);
            assert_eq!(a.row, 0);
        }
    }

    #[test]
    fn decode_encode_roundtrip_spot_checks() {
        for mapping in [AddressMapping::Rbc, AddressMapping::Brc] {
            let d = dec(mapping);
            for addr in [0u64, 4, 2048, 65536, 1 << 20, (512 << 20) / 8 - 4] {
                let dd = d.decode(addr).unwrap();
                assert_eq!(d.encode(dd).unwrap(), addr, "mapping {mapping} addr {addr}");
            }
        }
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let d = dec(AddressMapping::Rbc);
        let cap = d.geometry().capacity_bytes();
        assert!(d.decode(cap).is_err());
        assert!(d.decode(cap - 1).is_ok());
    }

    #[test]
    fn encode_rejects_bad_fields() {
        let d = dec(AddressMapping::Rbc);
        assert!(d
            .encode(DecodedAddress {
                bank: 4,
                row: 0,
                col: 0
            })
            .is_err());
        assert!(d
            .encode(DecodedAddress {
                bank: 0,
                row: 8192,
                col: 0
            })
            .is_err());
        assert!(d
            .encode(DecodedAddress {
                bank: 0,
                row: 0,
                col: 512
            })
            .is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(AddressMapping::Rbc.to_string(), "RBC");
        assert_eq!(AddressMapping::Brc.to_string(), "BRC");
        assert_eq!(AddressMapping::default(), AddressMapping::Rbc);
    }
}
