//! DRAM core power model, following the Micron system-power methodology
//! (TN-46-03 *"Calculating DDR Memory System Power"*), which is exactly the
//! reference the paper cites for its power numbers.
//!
//! The model splits power into:
//!
//! * **background** power — a function of which of four states the device is
//!   in (precharge/active standby, precharge/active power-down), accounted
//!   by state residency;
//! * **per-event** energies — an increment above background for each
//!   activate/precharge pair, read burst, write burst, and refresh.
//!
//! Datasheet IDD currents are specified at a measurement voltage and clock
//! (1.8 V / 200 MHz for the Mobile DDR parts the paper extrapolates from).
//! Scaling to the operating point follows the paper's assumptions:
//!
//! * all power scales with voltage squared, reaching the paper's projected
//!   1.35 V core;
//! * standby currents (clock tree, input buffers) scale linearly with the
//!   interface clock;
//! * per-event energies are charge-based and therefore frequency-independent
//!   (a burst at a faster clock draws the same charge in less time);
//! * power-down currents are leakage-dominated and do not scale with clock.

use mcm_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::params::{Geometry, TimingParams};

/// Datasheet-style IDD currents (milliamps) at the measurement conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IddValues {
    /// One-bank activate–precharge current (measured at one ACT-PRE per tRC).
    pub idd0_ma: f64,
    /// Precharge power-down current.
    pub idd2p_ma: f64,
    /// Precharge standby current.
    pub idd2n_ma: f64,
    /// Active power-down current.
    pub idd3p_ma: f64,
    /// Active standby current.
    pub idd3n_ma: f64,
    /// Read burst current.
    pub idd4r_ma: f64,
    /// Write burst current.
    pub idd4w_ma: f64,
    /// Auto-refresh (burst refresh) current.
    pub idd5_ma: f64,
    /// Self-refresh current (the deepest idle mode; mobile DDR parts use
    /// temperature-compensated self refresh to push this down).
    pub idd6_ma: f64,
}

impl IddValues {
    /// Datasheet-class values for a 512 Mb ×32 Mobile DDR device at
    /// 1.8 V / 200 MHz — the anchor the paper extrapolates from.
    pub fn mobile_ddr_512mb() -> Self {
        IddValues {
            idd0_ma: 75.0,
            idd2p_ma: 0.6,
            idd2n_ma: 12.0,
            idd3p_ma: 2.0,
            idd3n_ma: 20.0,
            idd4r_ma: 105.0,
            idd4w_ma: 95.0,
            idd5_ma: 90.0,
            idd6_ma: 0.45,
        }
    }

    /// Commodity DDR2-class currents at the same measurement conditions:
    /// much higher standby and power-down floors (no low-power process, no
    /// temperature-compensated self refresh, DLL always on). The basis of
    /// the low-power-vs-standard device comparison.
    pub fn standard_ddr2_512mb() -> Self {
        IddValues {
            idd0_ma: 110.0,
            idd2p_ma: 7.0,
            idd2n_ma: 35.0,
            idd3p_ma: 14.0,
            idd3n_ma: 45.0,
            idd4r_ma: 180.0,
            idd4w_ma: 170.0,
            idd5_ma: 150.0,
            idd6_ma: 5.0,
        }
    }

    /// Checks ordering constraints that any physical device satisfies
    /// (power-down below standby below burst).
    pub fn validate(&self) -> Result<(), DramError> {
        let vals = [
            ("idd0", self.idd0_ma),
            ("idd2p", self.idd2p_ma),
            ("idd2n", self.idd2n_ma),
            ("idd3p", self.idd3p_ma),
            ("idd3n", self.idd3n_ma),
            ("idd4r", self.idd4r_ma),
            ("idd4w", self.idd4w_ma),
            ("idd5", self.idd5_ma),
            ("idd6", self.idd6_ma),
        ];
        for (name, v) in vals {
            if !v.is_finite() || v < 0.0 {
                return Err(DramError::InvalidTiming {
                    reason: format!("{name} = {v} mA must be finite and non-negative"),
                });
            }
        }
        if self.idd2p_ma > self.idd2n_ma || self.idd3p_ma > self.idd3n_ma {
            return Err(DramError::InvalidTiming {
                reason: "power-down currents must not exceed standby currents".into(),
            });
        }
        if self.idd6_ma > self.idd2p_ma {
            return Err(DramError::InvalidTiming {
                reason: "self-refresh must be the lowest-current state".into(),
            });
        }
        if self.idd3n_ma > self.idd4r_ma || self.idd3n_ma > self.idd4w_ma {
            return Err(DramError::InvalidTiming {
                reason: "burst currents must exceed active standby".into(),
            });
        }
        Ok(())
    }
}

/// Voltage/frequency conditions: where the IDD values were measured and
/// where the device actually operates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core voltage at which the IDD values are specified.
    pub vdd_meas_v: f64,
    /// Clock at which the IDD values are specified, MHz.
    pub f_meas_mhz: f64,
    /// Projected operating core voltage (paper: 1.35 V per ITRS 2007).
    pub vdd_op_v: f64,
}

impl OperatingPoint {
    /// The paper's conditions: datasheet at 1.8 V / 200 MHz, operated at
    /// 1.35 V.
    pub fn next_gen_mobile_ddr() -> Self {
        OperatingPoint {
            vdd_meas_v: 1.8,
            f_meas_mhz: 200.0,
            vdd_op_v: 1.35,
        }
    }

    /// Voltage-squared scaling factor from measurement to operation.
    pub fn voltage_scale(&self) -> f64 {
        (self.vdd_op_v / self.vdd_meas_v).powi(2)
    }
}

/// The four background states of a bank cluster.
///
/// Values index into the residency tracker of
/// [`EnergyAccount`]; ordering is part of the public contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum BackgroundState {
    /// All banks precharged, CKE high.
    PrechargeStandby = 0,
    /// At least one bank open, CKE high.
    ActiveStandby = 1,
    /// All banks precharged, CKE low (the paper's preferred idle state).
    PrechargePowerDown = 2,
    /// At least one bank open, CKE low.
    ActivePowerDown = 3,
    /// Self-refresh: all banks precharged, the device refreshes itself
    /// internally at the lowest possible current.
    SelfRefresh = 4,
}

impl BackgroundState {
    /// Number of background states.
    pub const COUNT: usize = 5;

    /// Derives the state from device status flags.
    pub fn from_flags(any_bank_open: bool, powered_down: bool) -> Self {
        match (powered_down, any_bank_open) {
            (false, false) => BackgroundState::PrechargeStandby,
            (false, true) => BackgroundState::ActiveStandby,
            (true, false) => BackgroundState::PrechargePowerDown,
            (true, true) => BackgroundState::ActivePowerDown,
        }
    }
}

/// IDD parameters resolved into concrete energies and powers at one
/// operating point — everything the simulator needs on its hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Extra energy per ACT(+implied PRE) above background, picojoules.
    pub e_act_pj: f64,
    /// Extra energy per read burst above active standby, picojoules.
    pub e_rd_burst_pj: f64,
    /// Extra energy per write burst above active standby, picojoules.
    pub e_wr_burst_pj: f64,
    /// Extra energy per refresh above precharge standby, picojoules.
    pub e_ref_pj: f64,
    /// Background power per state, milliwatts, indexed by
    /// [`BackgroundState`] discriminant.
    pub p_bg_mw: [f64; BackgroundState::COUNT],
}

impl EnergyModel {
    /// Builds the energy model for `idd` at clock `clock_mhz`.
    ///
    /// `timing` supplies the analog windows (tRC, tRAS, tRFC) the TN-46-03
    /// formulas integrate over; `geometry` supplies the burst length.
    pub fn resolve(
        idd: &IddValues,
        op: &OperatingPoint,
        timing: &TimingParams,
        geometry: &Geometry,
        clock_mhz: u64,
    ) -> Result<Self, DramError> {
        idd.validate()?;
        timing.validate()?;
        geometry.validate()?;
        let all_positive = [op.vdd_meas_v, op.vdd_op_v, op.f_meas_mhz]
            .iter()
            .all(|v| *v > 0.0);
        if !all_positive {
            return Err(DramError::InvalidTiming {
                reason: "operating point voltages and frequency must be positive".into(),
            });
        }
        let vscale = op.voltage_scale();
        let fscale = clock_mhz as f64 / op.f_meas_mhz;
        let v = op.vdd_meas_v;

        // Per-event energies are charge-based: computed from the measurement
        // clock's time windows, independent of the operating clock.
        // mA * ns * V = pJ.
        let e_act_pj = (idd.idd0_ma * timing.t_rc_ns
            - idd.idd3n_ma * timing.t_ras_ns
            - idd.idd2n_ma * (timing.t_rc_ns - timing.t_ras_ns))
            .max(0.0)
            * v
            * vscale;
        let tck_meas_ns = 1_000.0 / op.f_meas_mhz;
        let burst_ns_meas = geometry.burst_cycles() as f64 * tck_meas_ns;
        let e_rd_burst_pj = (idd.idd4r_ma - idd.idd3n_ma).max(0.0) * burst_ns_meas * v * vscale;
        let e_wr_burst_pj = (idd.idd4w_ma - idd.idd3n_ma).max(0.0) * burst_ns_meas * v * vscale;
        let e_ref_pj = (idd.idd5_ma - idd.idd2n_ma).max(0.0) * timing.t_rfc_ns * v * vscale;

        // Background powers: standby scales with clock, power-down is
        // leakage-dominated. mA * V = mW.
        let p_bg_mw = [
            idd.idd2n_ma * v * vscale * fscale,
            idd.idd3n_ma * v * vscale * fscale,
            idd.idd2p_ma * v * vscale,
            idd.idd3p_ma * v * vscale,
            idd.idd6_ma * v * vscale,
        ];
        Ok(EnergyModel {
            e_act_pj,
            e_rd_burst_pj,
            e_wr_burst_pj,
            e_ref_pj,
            p_bg_mw,
        })
    }
}

/// Accumulates core energy for one bank cluster over a simulation:
/// per-event energies plus background-state residency.
#[derive(Debug, Clone)]
pub struct EnergyAccount {
    model: EnergyModel,
    event_pj: f64,
    state: BackgroundState,
    state_since_ps: u64,
    bg_pj: f64,
    acts: u64,
    rd_bursts: u64,
    wr_bursts: u64,
    refreshes: u64,
}

impl EnergyAccount {
    /// Starts accounting in `initial` state at time zero.
    pub fn new(model: EnergyModel, initial: BackgroundState) -> Self {
        EnergyAccount {
            model,
            event_pj: 0.0,
            state: initial,
            state_since_ps: 0,
            bg_pj: 0.0,
            acts: 0,
            rd_bursts: 0,
            wr_bursts: 0,
            refreshes: 0,
        }
    }

    fn close_interval(&mut self, now: SimTime) {
        // Clamp: a query for a horizon the bookkeeping has already passed
        // (e.g. a catch-up refresh committed just beyond it) contributes no
        // negative interval.
        let now_ps = now.as_ps().max(self.state_since_ps);
        let dt_ns = (now_ps - self.state_since_ps) as f64 / 1_000.0;
        // mW * ns = pJ.
        self.bg_pj += self.model.p_bg_mw[self.state as usize] * dt_ns;
        self.state_since_ps = now_ps;
    }

    /// Records a background-state transition at `now`.
    pub fn switch_state(&mut self, state: BackgroundState, now: SimTime) {
        self.close_interval(now);
        self.state = state;
    }

    /// Like [`EnergyAccount::switch_state`], but returns the background
    /// interval it closed as `(from_ps, to_ps, delta_pj)` so callers can
    /// attribute the energy elsewhere (e.g. an observability timeline).
    pub fn switch_state_traced(&mut self, state: BackgroundState, now: SimTime) -> (u64, u64, f64) {
        let closed = self.close_traced(now);
        self.state = state;
        closed
    }

    /// Closes the open background interval at `now` without changing state
    /// and returns it as `(from_ps, to_ps, delta_pj)`. A zero-length
    /// interval returns `delta_pj == 0.0`.
    pub fn close_traced(&mut self, now: SimTime) -> (u64, u64, f64) {
        let from_ps = self.state_since_ps;
        let before = self.bg_pj;
        self.close_interval(now);
        (from_ps, self.state_since_ps, self.bg_pj - before)
    }

    /// The resolved per-event/background energy model in use.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Records one activate (with its eventual precharge).
    pub fn record_activate(&mut self) {
        self.event_pj += self.model.e_act_pj;
        self.acts += 1;
    }

    /// Records one read burst.
    pub fn record_read_burst(&mut self) {
        self.event_pj += self.model.e_rd_burst_pj;
        self.rd_bursts += 1;
    }

    /// Records one write burst.
    pub fn record_write_burst(&mut self) {
        self.event_pj += self.model.e_wr_burst_pj;
        self.wr_bursts += 1;
    }

    /// Records one auto-refresh.
    pub fn record_refresh(&mut self) {
        self.event_pj += self.model.e_ref_pj;
        self.refreshes += 1;
    }

    /// Total core energy up to `now`, picojoules (closes the open background
    /// interval without disturbing further accounting).
    pub fn total_pj(&mut self, now: SimTime) -> f64 {
        self.close_interval(now);
        self.event_pj + self.bg_pj
    }

    /// Background-only energy up to `now`, picojoules.
    pub fn background_pj(&mut self, now: SimTime) -> f64 {
        self.close_interval(now);
        self.bg_pj
    }

    /// Per-event energy so far, picojoules.
    pub fn event_pj(&self) -> f64 {
        self.event_pj
    }

    /// (activates, read bursts, write bursts, refreshes) recorded so far.
    pub fn event_counts(&self) -> (u64, u64, u64, u64) {
        (self.acts, self.rd_bursts, self.wr_bursts, self.refreshes)
    }

    /// Per-event energy split by command class, picojoules:
    /// (activate, read burst, write burst, refresh).
    pub fn event_breakdown_pj(&self) -> (f64, f64, f64, f64) {
        (
            self.acts as f64 * self.model.e_act_pj,
            self.rd_bursts as f64 * self.model.e_rd_burst_pj,
            self.wr_bursts as f64 * self.model.e_wr_burst_pj,
            self.refreshes as f64 * self.model.e_ref_pj,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_at(clock_mhz: u64) -> EnergyModel {
        EnergyModel::resolve(
            &IddValues::mobile_ddr_512mb(),
            &OperatingPoint::next_gen_mobile_ddr(),
            &TimingParams::next_gen_mobile_ddr(),
            &Geometry::next_gen_mobile_ddr(),
            clock_mhz,
        )
        .unwrap()
    }

    #[test]
    fn idd_validation_catches_inversions() {
        let mut idd = IddValues::mobile_ddr_512mb();
        idd.idd2p_ma = 50.0; // power-down above standby
        assert!(idd.validate().is_err());

        let mut idd = IddValues::mobile_ddr_512mb();
        idd.idd4r_ma = 1.0; // burst below standby
        assert!(idd.validate().is_err());

        let mut idd = IddValues::mobile_ddr_512mb();
        idd.idd0_ma = -1.0;
        assert!(idd.validate().is_err());
    }

    #[test]
    fn voltage_scale_is_squared() {
        let op = OperatingPoint::next_gen_mobile_ddr();
        assert!((op.voltage_scale() - (1.35f64 / 1.8).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn per_event_energies_are_clock_independent() {
        let m200 = model_at(200);
        let m400 = model_at(400);
        assert!((m200.e_act_pj - m400.e_act_pj).abs() < 1e-9);
        assert!((m200.e_rd_burst_pj - m400.e_rd_burst_pj).abs() < 1e-9);
        assert!((m200.e_ref_pj - m400.e_ref_pj).abs() < 1e-9);
    }

    #[test]
    fn standby_power_scales_with_clock_power_down_does_not() {
        let m200 = model_at(200);
        let m400 = model_at(400);
        let sb = BackgroundState::PrechargeStandby as usize;
        let pd = BackgroundState::PrechargePowerDown as usize;
        assert!((m400.p_bg_mw[sb] / m200.p_bg_mw[sb] - 2.0).abs() < 1e-9);
        assert!((m400.p_bg_mw[pd] - m200.p_bg_mw[pd]).abs() < 1e-12);
    }

    #[test]
    fn background_state_from_flags() {
        assert_eq!(
            BackgroundState::from_flags(false, false),
            BackgroundState::PrechargeStandby
        );
        assert_eq!(
            BackgroundState::from_flags(true, false),
            BackgroundState::ActiveStandby
        );
        assert_eq!(
            BackgroundState::from_flags(false, true),
            BackgroundState::PrechargePowerDown
        );
        assert_eq!(
            BackgroundState::from_flags(true, true),
            BackgroundState::ActivePowerDown
        );
    }

    #[test]
    fn account_integrates_background_by_residency() {
        let model = model_at(400);
        let mut acc = EnergyAccount::new(model, BackgroundState::PrechargeStandby);
        // 1 ms in precharge standby, then 1 ms powered down.
        acc.switch_state(BackgroundState::PrechargePowerDown, SimTime::from_ms(1));
        let total = acc.total_pj(SimTime::from_ms(2));
        let expect = model.p_bg_mw[0] * 1e6 + model.p_bg_mw[2] * 1e6; // mW * ns
        assert!(
            (total - expect).abs() / expect < 1e-9,
            "total={total} expect={expect}"
        );
    }

    #[test]
    fn account_sums_event_energies() {
        let model = model_at(400);
        let mut acc = EnergyAccount::new(model, BackgroundState::PrechargeStandby);
        acc.record_activate();
        acc.record_read_burst();
        acc.record_read_burst();
        acc.record_write_burst();
        acc.record_refresh();
        let expect =
            model.e_act_pj + 2.0 * model.e_rd_burst_pj + model.e_wr_burst_pj + model.e_ref_pj;
        assert!((acc.event_pj() - expect).abs() < 1e-9);
        assert_eq!(acc.event_counts(), (1, 2, 1, 1));
    }

    #[test]
    fn burst_energy_magnitude_is_plausible() {
        // (105-20) mA * 1.8 V * 10 ns * 0.5625 ≈ 0.86 nJ per 16-byte burst.
        let m = model_at(400);
        assert!(
            m.e_rd_burst_pj > 500.0 && m.e_rd_burst_pj < 1500.0,
            "e_rd_burst_pj = {}",
            m.e_rd_burst_pj
        );
    }
}
