//! Device geometry and timing parameters for the paper's *theoretical
//! next-generation mobile DDR SDRAM*, plus the estimation rules used to
//! derive them.
//!
//! The paper's procedure (Section III):
//!
//! * capacity 512 Mbit per bank cluster, four banks, ×32 data, DDR;
//! * interface clock restricted to the DDR2 span, **200–533 MHz**;
//! * timing/power values taken from contemporary Micron Mobile DDR SDRAM
//!   datasheets at 200 MHz; "the parameters with clear connection to clock
//!   frequency are extrapolated accordingly" — i.e. analog parameters are
//!   held constant in nanoseconds and re-expressed in clock cycles at the
//!   target frequency (rounding up), while fixed-cycle parameters stay in
//!   cycles;
//! * operating voltage projected to **1.35 V** per the ITRS 2007 system
//!   drivers chapter.

use mcm_sim::{ClockDomain, Frequency};
use serde::{Deserialize, Serialize};

use crate::error::DramError;

/// Physical organization of one bank cluster (one channel's memory device).
///
/// # Examples
///
/// ```
/// use mcm_dram::Geometry;
///
/// let g = Geometry::next_gen_mobile_ddr();
/// assert_eq!(g.capacity_bytes(), 512 * 1024 * 1024 / 8);
/// assert_eq!(g.burst_bytes(), 16); // BL4 × 32 bit — the interleave granule
/// assert_eq!(g.page_bytes(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of independent banks in the cluster (paper: 4).
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row (each column is one word).
    pub cols: u32,
    /// Data bus width in bits (paper: 32).
    pub word_bits: u32,
    /// Burst length in words (paper: minimum DRAM burst size 4).
    pub burst_len: u32,
}

impl Geometry {
    /// The paper's bank cluster: 512 Mb, 4 banks, ×32, BL4
    /// (8192 rows × 512 columns per bank).
    pub fn next_gen_mobile_ddr() -> Self {
        Geometry {
            banks: 4,
            rows: 8192,
            cols: 512,
            word_bits: 32,
            burst_len: 4,
        }
    }

    /// A large-capacity variant of the paper's part: 2 Gb per bank cluster
    /// (4× the rows), i.e. 256 MiB per channel instead of 64 MiB. The
    /// frame-buffer ceiling is a datasheet property — `capacity_bytes()` —
    /// not a constant of the model, and this part is the witness: 2160p30
    /// fits one or two channels of it where the paper's 512 Mb part
    /// overflows (`MCM406`).
    ///
    /// ```
    /// use mcm_dram::Geometry;
    ///
    /// assert_eq!(Geometry::large_capacity_mobile_ddr().capacity_bytes(), 256 << 20);
    /// ```
    pub fn large_capacity_mobile_ddr() -> Self {
        Geometry {
            rows: 32_768,
            ..Geometry::next_gen_mobile_ddr()
        }
    }

    /// Validates internal consistency (powers of two where addressing
    /// requires them, non-zero sizes, burst no longer than a row).
    pub fn validate(&self) -> Result<(), DramError> {
        let fields = [
            ("banks", self.banks),
            ("rows", self.rows),
            ("cols", self.cols),
            ("word_bits", self.word_bits),
            ("burst_len", self.burst_len),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(DramError::InvalidGeometry {
                    reason: format!("{name} must be non-zero"),
                });
            }
            if !v.is_power_of_two() {
                return Err(DramError::InvalidGeometry {
                    reason: format!("{name} = {v} must be a power of two"),
                });
            }
        }
        if !self.word_bits.is_multiple_of(8) {
            return Err(DramError::InvalidGeometry {
                reason: format!(
                    "word_bits = {} must be a whole number of bytes",
                    self.word_bits
                ),
            });
        }
        if self.burst_len > self.cols {
            return Err(DramError::InvalidGeometry {
                reason: format!(
                    "burst_len {} exceeds columns per row {}",
                    self.burst_len, self.cols
                ),
            });
        }
        Ok(())
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.banks as u64 * self.rows as u64 * self.cols as u64 * self.word_bits as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bits() / 8
    }

    /// Bytes per word (data-bus width in bytes).
    pub fn word_bytes(&self) -> u32 {
        self.word_bits / 8
    }

    /// Bytes per burst — the minimum practical transfer and, per Table II,
    /// the channel interleaving granule (16 B for the paper's device).
    pub fn burst_bytes(&self) -> u32 {
        self.burst_len * self.word_bytes()
    }

    /// Bytes per open page (row): columns × word bytes.
    pub fn page_bytes(&self) -> u32 {
        self.cols * self.word_bytes()
    }

    /// Clock cycles of data-bus occupancy per burst (two beats per cycle on
    /// a DDR interface).
    pub fn burst_cycles(&self) -> u64 {
        (self.burst_len as u64).div_ceil(2)
    }
}

/// Raw timing parameters, split into the analog (nanosecond) domain and the
/// clock (cycle) domain, plus the legal interface-clock range.
///
/// Defaults follow the Micron 512 Mb Mobile DDR SDRAM datasheet class at
/// 200 MHz, which is exactly where the paper takes them from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT to RD/WR delay (row to column), ns.
    pub t_rcd_ns: f64,
    /// PRE to ACT delay (row precharge), ns.
    pub t_rp_ns: f64,
    /// Minimum ACT to PRE (row active time), ns.
    pub t_ras_ns: f64,
    /// Minimum ACT to ACT in the same bank (row cycle), ns.
    pub t_rc_ns: f64,
    /// Minimum ACT to ACT across different banks, ns.
    pub t_rrd_ns: f64,
    /// Four-activate window: at most four ACTs (any banks) may fall inside
    /// any window of this length, ns (tFAW).
    pub t_faw_ns: f64,
    /// Write recovery: last write data beat to PRE, ns.
    pub t_wr_ns: f64,
    /// Auto-refresh cycle time, ns.
    pub t_rfc_ns: f64,
    /// Average refresh interval (one REF due every tREFI), ns.
    pub t_refi_ns: f64,
    /// CAS latency expressed in ns; converted to a whole CL at resolve time
    /// (15 ns ⇒ CL3 at 200 MHz … CL8 at 533 MHz).
    pub cas_latency_ns: f64,
    /// Write latency in cycles (Mobile DDR: 1).
    pub write_latency_ck: u64,
    /// Write-to-read turnaround beyond the data burst, cycles.
    pub t_wtr_ck: u64,
    /// Read-to-precharge spacing beyond BL/2, cycles.
    pub t_rtp_extra_ck: u64,
    /// Power-down exit to first command, cycles.
    pub t_xp_ck: u64,
    /// Self-refresh exit to first command, ns (tXSR).
    pub t_xsr_ns: f64,
    /// Minimum power-down residency (CKE low pulse width), cycles.
    pub t_cke_min_ck: u64,
    /// Lowest legal interface clock, MHz (paper: DDR2 span ⇒ 200).
    pub min_clock_mhz: u64,
    /// Highest legal interface clock, MHz (paper: DDR2 span ⇒ 533).
    pub max_clock_mhz: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::next_gen_mobile_ddr()
    }
}

impl TimingParams {
    /// Datasheet-class Mobile DDR timings at the 200 MHz anchor, with the
    /// paper's DDR2 clock window.
    pub fn next_gen_mobile_ddr() -> Self {
        TimingParams {
            t_rcd_ns: 15.0,
            t_rp_ns: 15.0,
            t_ras_ns: 40.0,
            t_rc_ns: 55.0,
            t_rrd_ns: 10.0,
            t_faw_ns: 45.0,
            t_wr_ns: 15.0,
            t_rfc_ns: 110.0,
            t_refi_ns: 7_812.5, // 8192 rows refreshed per 64 ms
            cas_latency_ns: 15.0,
            write_latency_ck: 1,
            t_wtr_ck: 2,
            t_rtp_extra_ck: 0,
            t_xp_ck: 2,
            t_xsr_ns: 120.0,
            t_cke_min_ck: 1,
            min_clock_mhz: 200,
            max_clock_mhz: 533,
        }
    }

    /// The contemporary (2008-era) Mobile DDR part the estimates derive
    /// from: same analog timings, but clock window restricted to the
    /// 133–200 MHz the real datasheets support. Useful as a baseline.
    pub fn contemporary_mobile_ddr() -> Self {
        TimingParams {
            min_clock_mhz: 133,
            max_clock_mhz: 200,
            ..Self::next_gen_mobile_ddr()
        }
    }

    /// A projected *next-next-generation* low-power part (LPDDR2-class):
    /// the same analog core pushed to an 800 MHz interface window with
    /// slightly tightened row timings from a process shrink. Used by the
    /// "future needs" study (`ext_future`).
    pub fn future_lpddr2() -> Self {
        TimingParams {
            t_rcd_ns: 12.0,
            t_rp_ns: 12.0,
            t_ras_ns: 36.0,
            t_rc_ns: 48.0,
            t_rrd_ns: 8.0,
            t_faw_ns: 48.0,
            cas_latency_ns: 12.5,
            min_clock_mhz: 333,
            max_clock_mhz: 800,
            ..Self::next_gen_mobile_ddr()
        }
    }

    /// A commodity (non-low-power) DDR2-class part over the same clock
    /// window: comparable analog timings, but a slower self-refresh exit
    /// and DLL-bound power-down exit. Used by the device-class comparison
    /// the paper motivates with Micron's "Low-Power Versus Standard DDR
    /// SDRAM" note.
    pub fn standard_ddr2() -> Self {
        TimingParams {
            t_rfc_ns: 105.0,
            t_faw_ns: 50.0,
            t_xp_ck: 3,
            t_xsr_ns: 200.0,
            t_wtr_ck: 3,
            write_latency_ck: 2,
            ..Self::next_gen_mobile_ddr()
        }
    }

    /// Checks parameter consistency.
    pub fn validate(&self) -> Result<(), DramError> {
        let nonneg = [
            ("t_rcd_ns", self.t_rcd_ns),
            ("t_rp_ns", self.t_rp_ns),
            ("t_ras_ns", self.t_ras_ns),
            ("t_rc_ns", self.t_rc_ns),
            ("t_rrd_ns", self.t_rrd_ns),
            ("t_faw_ns", self.t_faw_ns),
            ("t_wr_ns", self.t_wr_ns),
            ("t_rfc_ns", self.t_rfc_ns),
            ("t_refi_ns", self.t_refi_ns),
            ("cas_latency_ns", self.cas_latency_ns),
        ];
        for (name, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(DramError::InvalidTiming {
                    reason: format!("{name} = {v} must be finite and non-negative"),
                });
            }
        }
        if self.t_faw_ns + 1e-9 < self.t_rrd_ns {
            return Err(DramError::InvalidTiming {
                reason: format!(
                    "tFAW ({}) must be at least tRRD ({})",
                    self.t_faw_ns, self.t_rrd_ns
                ),
            });
        }
        if self.t_ras_ns + self.t_rp_ns > self.t_rc_ns + 1e-9 {
            return Err(DramError::InvalidTiming {
                reason: format!(
                    "tRAS ({}) + tRP ({}) exceeds tRC ({})",
                    self.t_ras_ns, self.t_rp_ns, self.t_rc_ns
                ),
            });
        }
        if self.t_refi_ns <= self.t_rfc_ns {
            return Err(DramError::InvalidTiming {
                reason: format!(
                    "tREFI ({}) must exceed tRFC ({}) or refresh starves the device",
                    self.t_refi_ns, self.t_rfc_ns
                ),
            });
        }
        if self.min_clock_mhz == 0 || self.min_clock_mhz > self.max_clock_mhz {
            return Err(DramError::InvalidTiming {
                reason: format!(
                    "clock window {}-{} MHz is empty",
                    self.min_clock_mhz, self.max_clock_mhz
                ),
            });
        }
        Ok(())
    }

    /// Resolves the analog parameters into whole cycle counts at `clock_mhz`,
    /// enforcing the device's legal clock window. This is the paper's
    /// extrapolation rule made executable.
    pub fn resolve(
        &self,
        clock_mhz: u64,
        geometry: &Geometry,
    ) -> Result<ResolvedTiming, DramError> {
        self.validate()?;
        geometry.validate()?;
        if clock_mhz < self.min_clock_mhz || clock_mhz > self.max_clock_mhz {
            return Err(DramError::ClockOutOfRange {
                requested_mhz: clock_mhz,
                min_mhz: self.min_clock_mhz,
                max_mhz: self.max_clock_mhz,
            });
        }
        let clock = ClockDomain::new(Frequency::from_mhz(clock_mhz)).map_err(|e| {
            DramError::InvalidTiming {
                reason: format!("interface clock {clock_mhz} MHz: {e}"),
            }
        })?;
        let ck = |ns: f64| clock.ns_to_cycles_ceil(ns);
        let bl_ck = geometry.burst_cycles();
        let cl = ck(self.cas_latency_ns).max(2);
        let wl = self.write_latency_ck;
        Ok(ResolvedTiming {
            // Derived command-to-command deltas, resolved once per datasheet
            // so the per-command hot path reads a field instead of
            // recomputing.
            rd_to_wr_ck: cl + bl_ck + 1 - wl.min(cl),
            wr_to_rd_ck: wl + bl_ck + self.t_wtr_ck,
            wr_to_pre_ck: wl + bl_ck + ck(self.t_wr_ns),
            clock,
            clock_mhz,
            cl,
            wl: self.write_latency_ck,
            bl_ck,
            t_rcd: ck(self.t_rcd_ns),
            t_rp: ck(self.t_rp_ns),
            t_ras: ck(self.t_ras_ns),
            t_rc: ck(self.t_rc_ns),
            t_rrd: ck(self.t_rrd_ns),
            t_faw: ck(self.t_faw_ns),
            t_wr: ck(self.t_wr_ns),
            t_rfc: ck(self.t_rfc_ns),
            t_refi: ck(self.t_refi_ns),
            t_wtr: self.t_wtr_ck,
            t_rtp: bl_ck + self.t_rtp_extra_ck,
            t_xp: self.t_xp_ck,
            t_xsr: ck(self.t_xsr_ns),
            t_cke_min: self.t_cke_min_ck,
        })
    }
}

/// Timing parameters resolved to whole clock cycles at one interface clock.
///
/// All values are minimum command spacings in cycles of [`ResolvedTiming::clock`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedTiming {
    /// The interface clock domain.
    pub clock: ClockDomain,
    /// The interface clock in MHz (for display).
    pub clock_mhz: u64,
    /// CAS (read) latency, cycles.
    pub cl: u64,
    /// Write latency, cycles.
    pub wl: u64,
    /// Data-bus occupancy per burst, cycles (BL/2 on DDR).
    pub bl_ck: u64,
    /// ACT → RD/WR, cycles.
    pub t_rcd: u64,
    /// PRE → ACT, cycles.
    pub t_rp: u64,
    /// ACT → PRE minimum, cycles.
    pub t_ras: u64,
    /// ACT → ACT same bank, cycles.
    pub t_rc: u64,
    /// ACT → ACT different bank, cycles.
    pub t_rrd: u64,
    /// Four-activate window, cycles (tFAW): a fifth ACT must wait until
    /// this many cycles after the fourth-most-recent ACT.
    pub t_faw: u64,
    /// End of write data → PRE, cycles.
    pub t_wr: u64,
    /// REF duration, cycles.
    pub t_rfc: u64,
    /// Refresh obligation period, cycles.
    pub t_refi: u64,
    /// End of write data → RD, cycles.
    pub t_wtr: u64,
    /// RD command → PRE, cycles.
    pub t_rtp: u64,
    /// Power-down exit → any command, cycles.
    pub t_xp: u64,
    /// Self-refresh exit → any command, cycles (tXSR).
    pub t_xsr: u64,
    /// Minimum power-down residency, cycles.
    pub t_cke_min: u64,
    /// Precomputed READ → WRITE bus-turnaround gap, cycles
    /// (`cl + bl_ck + 1 - min(wl, cl)`).
    pub rd_to_wr_ck: u64,
    /// Precomputed WRITE → READ gap, cycles (`wl + bl_ck + t_wtr`).
    pub wr_to_rd_ck: u64,
    /// Precomputed WRITE → PRE gap, cycles (`wl + bl_ck + t_wr`).
    pub wr_to_pre_ck: u64,
}

impl ResolvedTiming {
    /// Gap required between a READ command and a following WRITE command on
    /// the same channel (bus turnaround): the read data must clear the bus
    /// before write data is driven.
    #[inline]
    pub fn rd_to_wr(&self) -> u64 {
        self.rd_to_wr_ck
    }

    /// Gap required between a WRITE command and a following READ command
    /// (write data beats plus tWTR recovery).
    #[inline]
    pub fn wr_to_rd(&self) -> u64 {
        self.wr_to_rd_ck
    }

    /// Earliest PRE after a WRITE command: write data end plus tWR.
    #[inline]
    pub fn wr_to_pre(&self) -> u64 {
        self.wr_to_pre_ck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_geometry_is_512mbit() {
        let g = Geometry::next_gen_mobile_ddr();
        g.validate().unwrap();
        assert_eq!(g.capacity_bits(), 512 * 1024 * 1024);
        assert_eq!(g.burst_bytes(), 16);
        assert_eq!(g.page_bytes(), 2048);
        assert_eq!(g.burst_cycles(), 2);
    }

    #[test]
    fn geometry_rejects_non_power_of_two() {
        let mut g = Geometry::next_gen_mobile_ddr();
        g.rows = 1000;
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn geometry_rejects_burst_longer_than_row() {
        let mut g = Geometry::next_gen_mobile_ddr();
        g.burst_len = 1024;
        assert!(g.validate().is_err());
    }

    #[test]
    fn resolve_at_200mhz_matches_datasheet_cycles() {
        let t = TimingParams::next_gen_mobile_ddr();
        let g = Geometry::next_gen_mobile_ddr();
        let r = t.resolve(200, &g).unwrap();
        assert_eq!(r.cl, 3);
        assert_eq!(r.t_rcd, 3);
        assert_eq!(r.t_rp, 3);
        assert_eq!(r.t_ras, 8);
        assert_eq!(r.t_rc, 11);
        assert_eq!(r.t_rrd, 2);
        assert_eq!(r.t_faw, 9); // 45 ns at 5 ns/ck
        assert_eq!(r.t_rfc, 22);
        // tREFI = 7812.5 ns at 5 ns/ck = 1562.5 -> 1563
        assert_eq!(r.t_refi, 1563);
    }

    #[test]
    fn resolve_extrapolates_with_frequency() {
        let t = TimingParams::next_gen_mobile_ddr();
        let g = Geometry::next_gen_mobile_ddr();
        let r400 = t.resolve(400, &g).unwrap();
        assert_eq!(r400.cl, 6); // 15 ns at 2.5 ns/ck
        assert_eq!(r400.t_rc, 22);
        let r533 = t.resolve(533, &g).unwrap();
        assert_eq!(r533.cl, 8); // 15 ns at 1.876 ns/ck = 7.995 -> 8
    }

    #[test]
    fn resolve_enforces_ddr2_clock_window() {
        let t = TimingParams::next_gen_mobile_ddr();
        let g = Geometry::next_gen_mobile_ddr();
        assert!(matches!(
            t.resolve(100, &g),
            Err(DramError::ClockOutOfRange { .. })
        ));
        assert!(matches!(
            t.resolve(667, &g),
            Err(DramError::ClockOutOfRange { .. })
        ));
        assert!(t.resolve(200, &g).is_ok());
        assert!(t.resolve(533, &g).is_ok());
    }

    #[test]
    fn contemporary_part_tops_out_at_200() {
        let t = TimingParams::contemporary_mobile_ddr();
        let g = Geometry::next_gen_mobile_ddr();
        assert!(t.resolve(166, &g).is_ok());
        assert!(t.resolve(266, &g).is_err());
    }

    #[test]
    fn validation_catches_inconsistent_windows() {
        let mut t = TimingParams::next_gen_mobile_ddr();
        t.t_ras_ns = 50.0; // 50 + 15 > 55
        assert!(matches!(t.validate(), Err(DramError::InvalidTiming { .. })));

        let mut t = TimingParams::next_gen_mobile_ddr();
        t.t_refi_ns = 50.0;
        assert!(t.validate().is_err());

        let mut t = TimingParams::next_gen_mobile_ddr();
        t.t_rcd_ns = f64::NAN;
        assert!(t.validate().is_err());

        let mut t = TimingParams::next_gen_mobile_ddr();
        t.min_clock_mhz = 600;
        assert!(t.validate().is_err());

        let mut t = TimingParams::next_gen_mobile_ddr();
        t.t_faw_ns = 5.0; // below tRRD
        assert!(t.validate().is_err());
    }

    #[test]
    fn turnaround_gaps_are_sane() {
        let t = TimingParams::next_gen_mobile_ddr();
        let g = Geometry::next_gen_mobile_ddr();
        let r = t.resolve(400, &g).unwrap();
        // rd->wr: CL(6) + BL/2(2) + 1 - WL(1) = 8
        assert_eq!(r.rd_to_wr(), 8);
        // wr->rd: WL(1) + BL/2(2) + tWTR(2) = 5
        assert_eq!(r.wr_to_rd(), 5);
        // wr->pre: WL(1) + BL/2(2) + tWR(6) = 9
        assert_eq!(r.wr_to_pre(), 9);
    }
}
