//! Property tests for DRAM address multiplexing: decode/encode must be a
//! bijection over the device capacity for both RBC and BRC, and the two
//! mappings must agree on the column (low-order) bits.

use mcm_dram::{AddressDecoder, AddressMapping, DecodedAddress, Geometry};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    // Powers of two within realistic mobile-DRAM ranges.
    (
        1u32..=3,  // banks: 2^1..2^3
        8u32..=14, // rows: 2^8..2^14
        6u32..=10, // cols: 2^6..2^10
        prop_oneof![Just(16u32), Just(32u32)],
        prop_oneof![Just(2u32), Just(4u32), Just(8u32)],
    )
        .prop_map(|(b, r, c, w, bl)| Geometry {
            banks: 1 << b,
            rows: 1 << r,
            cols: 1 << c,
            word_bits: w,
            burst_len: bl,
        })
}

proptest! {
    #[test]
    fn decode_encode_roundtrip(geometry in arb_geometry(), frac in 0.0f64..1.0, mapping_rbc in any::<bool>()) {
        let mapping = if mapping_rbc { AddressMapping::Rbc } else { AddressMapping::Brc };
        let dec = AddressDecoder::new(geometry, mapping).unwrap();
        let words = geometry.capacity_bytes() / geometry.word_bytes() as u64;
        let word = ((words as f64 - 1.0) * frac) as u64;
        let addr = word * geometry.word_bytes() as u64;
        let d = dec.decode(addr).unwrap();
        prop_assert!(d.bank < geometry.banks);
        prop_assert!(d.row < geometry.rows);
        prop_assert!(d.col < geometry.cols);
        prop_assert_eq!(dec.encode(d).unwrap(), addr);
    }

    #[test]
    fn encode_decode_roundtrip(geometry in arb_geometry(), bank in any::<u32>(), row in any::<u32>(), col in any::<u32>(), mapping_rbc in any::<bool>()) {
        let mapping = if mapping_rbc { AddressMapping::Rbc } else { AddressMapping::Brc };
        let dec = AddressDecoder::new(geometry, mapping).unwrap();
        let d = DecodedAddress {
            bank: bank % geometry.banks,
            row: row % geometry.rows,
            col: col % geometry.cols,
        };
        let addr = dec.encode(d).unwrap();
        prop_assert!(addr < geometry.capacity_bytes());
        prop_assert_eq!(dec.decode(addr).unwrap(), d);
    }

    #[test]
    fn mappings_agree_on_column_bits(geometry in arb_geometry(), frac in 0.0f64..1.0) {
        let rbc = AddressDecoder::new(geometry, AddressMapping::Rbc).unwrap();
        let brc = AddressDecoder::new(geometry, AddressMapping::Brc).unwrap();
        let words = geometry.capacity_bytes() / geometry.word_bytes() as u64;
        let addr = (((words as f64 - 1.0) * frac) as u64) * geometry.word_bytes() as u64;
        prop_assert_eq!(rbc.decode(addr).unwrap().col, brc.decode(addr).unwrap().col);
    }

    #[test]
    fn sequential_addresses_fill_pages_before_switching_rows(geometry in arb_geometry(), mapping_rbc in any::<bool>()) {
        let mapping = if mapping_rbc { AddressMapping::Rbc } else { AddressMapping::Brc };
        let dec = AddressDecoder::new(geometry, mapping).unwrap();
        let page = geometry.page_bytes() as u64;
        // Every address within the first page decodes to bank 0, row 0.
        for addr in (0..page).step_by(geometry.burst_bytes() as usize) {
            let d = dec.decode(addr).unwrap();
            prop_assert_eq!((d.bank, d.row), (0, 0));
        }
    }
}
