//! Device-level fuzzing: random walks over the command space.
//!
//! At every step we draw a random command; if the device declares it legal
//! we commit it at its earliest cycle (plus a random dither) and record it.
//! At the end the whole executed trace must satisfy the independent
//! pairwise-rule oracle, and the device's statistics must agree with the
//! trace. This exercises command interleavings the controller never
//! generates (e.g. PREA with several open banks, refresh storms,
//! power-down entry directly after writes).

use mcm_dram::{BankCluster, ClusterConfig, DramCommand, TraceValidator, TracedCommand};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Pick {
    Act { bank: u32, row: u32 },
    Read { bank: u32, col: u32 },
    Write { bank: u32, col: u32 },
    Pre { bank: u32 },
    PreAll,
    Refresh,
    Pde,
    Pdx,
    Sre,
    Srx,
}

fn arb_pick() -> impl Strategy<Value = Pick> {
    prop_oneof![
        3 => (0u32..4, 0u32..8192).prop_map(|(bank, row)| Pick::Act { bank, row }),
        6 => (0u32..4, 0u32..512).prop_map(|(bank, col)| Pick::Read { bank, col }),
        6 => (0u32..4, 0u32..512).prop_map(|(bank, col)| Pick::Write { bank, col }),
        2 => (0u32..4).prop_map(|bank| Pick::Pre { bank }),
        1 => Just(Pick::PreAll),
        1 => Just(Pick::Refresh),
        1 => Just(Pick::Pde),
        1 => Just(Pick::Pdx),
        1 => Just(Pick::Sre),
        1 => Just(Pick::Srx),
    ]
}

fn to_cmd(p: Pick) -> DramCommand {
    match p {
        Pick::Act { bank, row } => DramCommand::Activate { bank, row },
        Pick::Read { bank, col } => DramCommand::Read { bank, col },
        Pick::Write { bank, col } => DramCommand::Write { bank, col },
        Pick::Pre { bank } => DramCommand::Precharge { bank },
        Pick::PreAll => DramCommand::PrechargeAll,
        Pick::Refresh => DramCommand::Refresh,
        Pick::Pde => DramCommand::PowerDownEnter,
        Pick::Pdx => DramCommand::PowerDownExit,
        Pick::Sre => DramCommand::SelfRefreshEnter,
        Pick::Srx => DramCommand::SelfRefreshExit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_legal_walks_satisfy_the_oracle(
        clock in prop_oneof![Just(200u64), Just(400), Just(533)],
        picks in prop::collection::vec((arb_pick(), 0u64..8), 1..300),
    ) {
        let mut dev = BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(clock)).unwrap();
        dev.enable_trace();
        let mut committed = 0usize;
        for (pick, dither) in picks {
            let cmd = to_cmd(pick);
            match dev.earliest_issue(cmd, 0) {
                Ok(earliest) => {
                    dev.issue(cmd, earliest + dither).unwrap();
                    committed += 1;
                }
                Err(_) => continue, // illegal in this state: skip
            }
        }
        let trace: Vec<TracedCommand> = dev.trace().unwrap().to_vec();
        prop_assert_eq!(trace.len(), committed);

        // Oracle agreement.
        let validator = TraceValidator::new(*dev.timing(), *dev.geometry());
        let violations = validator.check(&trace);
        prop_assert!(
            violations.is_empty(),
            "device committed an illegal trace: {:?}",
            &violations[..violations.len().min(3)]
        );

        // Stats agree with the trace.
        let stats = dev.stats();
        let count = |m: &str| trace.iter().filter(|t| t.cmd.mnemonic() == m).count() as u64;
        prop_assert_eq!(stats.activates, count("ACT"));
        prop_assert_eq!(stats.reads, count("RD"));
        prop_assert_eq!(stats.writes, count("WR"));
        prop_assert_eq!(stats.refreshes, count("REF"));
        prop_assert_eq!(stats.power_downs, count("PDE"));
        prop_assert_eq!(stats.self_refreshes, count("SRE"));

        // Energy is finite and monotone with the horizon.
        let e1 = dev.total_energy_pj(1_000_000);
        let e2 = dev.total_energy_pj(2_000_000);
        prop_assert!(e1.is_finite() && e2.is_finite());
        prop_assert!(e2 >= e1);
    }

    #[test]
    fn earliest_issue_is_idempotent_and_consistent(
        picks in prop::collection::vec(arb_pick(), 1..100),
    ) {
        // earliest_issue must not mutate state: asking twice gives the same
        // answer, and issuing at exactly that cycle always succeeds.
        let mut dev = BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(400)).unwrap();
        for pick in picks {
            let cmd = to_cmd(pick);
            let first = dev.earliest_issue(cmd, 0);
            let second = dev.earliest_issue(cmd, 0);
            match (first, second) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a, b, "earliest_issue changed the device");
                    dev.issue(cmd, a).unwrap();
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "inconsistent legality: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn a_x16_device_works_end_to_end() {
    // A narrower part: x16 bus, BL8 -> the same 16-byte burst granule.
    use mcm_dram::{ClusterConfig, Geometry};
    let mut cfg = ClusterConfig::next_gen_mobile_ddr(400);
    cfg.geometry = Geometry {
        banks: 4,
        rows: 8192,
        cols: 1024,
        word_bits: 16,
        burst_len: 8,
    };
    assert_eq!(cfg.geometry.capacity_bits(), 512 * 1024 * 1024);
    assert_eq!(cfg.geometry.burst_bytes(), 16);
    let mut dev = BankCluster::new(&cfg).unwrap();
    let t = *dev.timing();
    // BL8 on a DDR bus occupies 4 clock cycles.
    assert_eq!(t.bl_ck, 4);
    dev.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
        .unwrap();
    let out = dev
        .issue(DramCommand::Read { bank: 0, col: 0 }, t.t_rcd)
        .unwrap();
    assert_eq!(out.data_end_cycle, Some(t.t_rcd + t.cl + 4));
}
