//! Workload-model guard suite.
//!
//! Two contracts are pinned here:
//!
//! 1. **Table I through the trait is the paper, bit for bit.** The
//!    [`mcm_load::LoadModel`] seam exists so alternative workloads can be
//!    slotted in; the default (`Workload::TableI`) must remain
//!    indistinguishable from the pre-trait code path — same per-stage
//!    rows, same sustained demand, same operation stream, same simulated
//!    result. The per-stage cells are additionally re-checked against the
//!    frozen Table I goldens (±0.5%) *via the trait*, so a regression in
//!    the trait plumbing cannot hide behind an intact `UseCase`.
//! 2. **Stochastic generation is a pure function of (seed, frame).** The
//!    Markov-modulated generator must produce bit-identical operation
//!    streams no matter which thread asks, so sweep results stay
//!    cache-stable and thread-count invariant.

use mcm_core::{Experiment, FrameResult, RunOptions};
use mcm_load::{
    FrameLayout, FrameTraffic, HdOperatingPoint, LayoutOptions, LoadOp, UseCase, Workload,
};

const LEVELS: [HdOperatingPoint; 5] = [
    HdOperatingPoint::Hd720p30,
    HdOperatingPoint::Hd720p60,
    HdOperatingPoint::Hd1080p30,
    HdOperatingPoint::Hd1080p60,
    HdOperatingPoint::Uhd2160p30,
];

/// Runs a healthy single-frame simulation of `exp`.
fn simulate(exp: &Experiment) -> FrameResult {
    exp.run_with(&RunOptions::default())
        .unwrap()
        .into_frame()
        .unwrap()
}

/// The engine's placement options for the paper's geometry at `channels`.
fn paper_options(channels: u32) -> LayoutOptions {
    let g = mcm_dram::Geometry::next_gen_mobile_ddr();
    LayoutOptions::bank_staggered(
        g.capacity_bytes() * channels as u64,
        g.page_bytes() as u64,
        channels,
        g.banks,
    )
}

#[test]
fn table_i_through_the_trait_reproduces_the_stage_rows_bit_identically() {
    for p in LEVELS {
        let uc = UseCase::hd(p);
        let model = Workload::TableI.model(&uc);
        assert_eq!(
            model.bits_per_second(),
            uc.table_row().bits_per_second(),
            "{p:?}: sustained demand"
        );
        // Table I is deterministic: the frame index must not matter.
        for frame in [0u64, 1, 7, 1000] {
            assert_eq!(
                model.stage_rows(frame),
                uc.stage_traffic(),
                "{p:?} frame {frame}: per-stage rows"
            );
        }
    }
}

#[test]
fn table_i_through_the_trait_matches_the_frozen_goldens() {
    // The 1080p30 column of the frozen Table I goldens (see
    // paper_golden.rs for provenance), re-checked through the trait at
    // the golden suite's ±0.5% cell tolerance.
    let golden_mbits = [
        48.11, 96.22, 96.22, 81.53, 66.85, 42.64, 18.43, 627.35, 0.004, 1.34, 0.67,
    ];
    let uc = UseCase::hd(HdOperatingPoint::Hd1080p30);
    let rows = Workload::TableI.model(&uc).stage_rows(0);
    assert_eq!(rows.len(), golden_mbits.len());
    for (row, want) in rows.iter().zip(golden_mbits) {
        let got = row.total_mbits();
        let tol = (want * 0.005_f64).max(0.01);
        assert!(
            (got - want).abs() <= tol,
            "Table I via trait, {}: got {got}, want {want} (±{tol})",
            row.stage.label()
        );
    }
}

#[test]
fn table_i_through_the_trait_emits_the_same_operation_stream() {
    for p in [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30] {
        let uc = UseCase::hd(p);
        let options = paper_options(4);
        let chunk = 4096;
        let layout = FrameLayout::with_options(&uc, &options).unwrap();
        let legacy: Vec<LoadOp> = FrameTraffic::new(&uc, &layout, chunk).unwrap().collect();
        let via_trait: Vec<LoadOp> = Workload::TableI
            .model(&uc)
            .traffic(&options, chunk, 0, &[])
            .unwrap()
            .collect();
        assert_eq!(legacy, via_trait, "{p:?}: op streams must be identical");
    }
}

#[test]
fn table_i_through_the_trait_simulates_identically() {
    // End to end: an experiment with the (default) Table I workload must
    // produce the same numbers whether the workload field was set
    // explicitly or left at its default — there is only one code path.
    let mut explicit = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
    explicit.op_limit = Some(3_000);
    explicit.workload = Workload::TableI;
    let mut default = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
    default.op_limit = Some(3_000);

    let a = simulate(&explicit);
    let b = simulate(&default);
    assert_eq!(a.access_time, b.access_time);
    assert_eq!(a.planned_bytes, b.planned_bytes);
    assert_eq!(a.power, b.power);
    assert_eq!(
        a.achieved_bandwidth_bytes_per_s(),
        b.achieved_bandwidth_bytes_per_s()
    );
}

#[test]
fn same_seed_stochastic_traffic_is_bit_identical_across_threads() {
    let workload = Workload::parse("stochastic:42:75").unwrap();
    let gen_ops = move |frame: u64| -> Vec<LoadOp> {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        workload
            .model(&uc)
            .traffic(&paper_options(2), 4096, frame, &[])
            .unwrap()
            .collect()
    };
    // Reference streams for a few frames, generated on this thread.
    let frames: Vec<u64> = vec![0, 1, 2, 3, 17];
    let reference: Vec<Vec<LoadOp>> = frames.iter().map(|&f| gen_ops(f)).collect();
    // The frame index must matter (the generator actually modulates) ...
    assert_ne!(reference[0], reference[1], "frames must differ");
    // ... but the calling thread must not: four threads each regenerate
    // every frame and must agree with the reference bit for bit.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let frames = frames.clone();
            std::thread::spawn(move || {
                frames
                    .iter()
                    .map(|&f| gen_ops(f))
                    .collect::<Vec<Vec<LoadOp>>>()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(
            h.join().unwrap(),
            reference,
            "stochastic traffic must be a pure function of (seed, frame)"
        );
    }
}

#[test]
fn same_seed_stochastic_runs_simulate_identically() {
    let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
    exp.op_limit = Some(3_000);
    exp.workload = Workload::parse("stochastic:42").unwrap();
    let a = simulate(&exp);
    let b = simulate(&exp);
    assert_eq!(a.access_time, b.access_time);
    assert_eq!(a.planned_bytes, b.planned_bytes);
    assert_eq!(a.power, b.power);
}
