//! Paper-golden suite: pins the reproduction against the DATE 2009 paper
//! (Aho, Nikara, Tuominen, Kuusilinna, *A case for multi-channel memories
//! in video recording*).
//!
//! Two kinds of constants live here:
//!
//! - **Prose anchors** transcribed from PAPER.md ("Headline anchors")
//!   carry a loose ±10% tolerance — the paper states them with ≈.
//! - **Table I cells**: the published table is partly garbled in the
//!   source text, so the per-stage golden values below are the Section II
//!   load-model formulas evaluated once and frozen (the same numbers
//!   `mcm table1` renders). They carry a tight ±0.5% tolerance and exist
//!   to catch any silent change to the load model.
//!
//! Every value cites the table cell (stage row × level column) or the
//! PAPER.md anchor it pins.

use mcm_channel::InterleaveMap;
use mcm_dram::{ClusterConfig, Geometry};
use mcm_load::{HdOperatingPoint, Stage, UseCase};

/// Tight tolerance for frozen Table I cells (model regression guard).
const CELL_TOL: f64 = 0.005;
/// Loose tolerance for the paper's ≈-prose anchors.
const ANCHOR_TOL: f64 = 0.10;

fn assert_close(got: f64, want: f64, rel_tol: f64, what: &str) {
    // Small cells (audio is ~0.004 Mb/frame) get an absolute floor so a
    // relative check does not divide by almost-zero.
    let tol = (want.abs() * rel_tol).max(0.01);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got}, want {want} (±{tol})"
    );
}

/// One Table I column: per-stage traffic in Mb/frame (read + write), in
/// the table's row order, plus the bottom "Data mem. load [MB/s]" row.
struct GoldenColumn {
    point: HdOperatingPoint,
    stages: [f64; 11],
    total_mbytes_per_s: f64,
}

/// Table I row order (top to bottom).
const STAGE_ORDER: [Stage; 11] = [
    Stage::CameraIf,
    Stage::Preprocess,
    Stage::BayerToYuv,
    Stage::Stabilization,
    Stage::PostProcDigizoom,
    Stage::ScaleToDisplay,
    Stage::DisplayCtrl,
    Stage::VideoEncoder,
    Stage::Audio,
    Stage::Multiplex,
    Stage::MemoryCard,
];

/// Table I, all five HD-capable H.264/AVC level columns. Stage values are
/// Mb/frame; comments give the level column. Row order is [`STAGE_ORDER`].
const TABLE1: [GoldenColumn; 5] = [
    // Column "1280x720@30 (L3.1)".
    GoldenColumn {
        point: HdOperatingPoint::Hd720p30,
        stages: [
            21.23,  // Camera I/F: one 16-bit Bayer frame written (with border)
            42.47,  // Preprocess: Bayer in + out
            42.47,  // Bayer to YUV
            35.98,  // Video stabilization: border crop to YUV 4:2:2
            29.49,  // Post proc & digizoom
            23.96,  // Scaling to display: YUV in, WVGA RGB888 out
            18.43,  // DisplayCtrl: WVGA @ 60 Hz refresh / 30 fps capture
            276.95, // Video encoder: ref reads + recon write + bitstream
            0.004,  // Audio: 128 kbps / 30 fps
            0.94,   // Multiplex: A/V bitstream in + out
            0.47,   // Memory card: muxed stream read
        ],
        total_mbytes_per_s: 1846.0, // PAPER.md anchor: ≈ 1.9 GB/s
    },
    // Column "1280x720@60 (L3.2)".
    GoldenColumn {
        point: HdOperatingPoint::Hd720p60,
        stages: [
            21.23, 42.47, 42.47, 35.98, 29.49, 23.96,
            9.22, // DisplayCtrl halves per frame at 60 fps capture
            276.81, 0.002, 0.67, 0.34,
        ],
        total_mbytes_per_s: 3620.0,
    },
    // Column "1920x1088@30 (L4)".
    GoldenColumn {
        point: HdOperatingPoint::Hd1080p30,
        stages: [
            48.11, 96.22, 96.22, 81.53, 66.85, 42.64, 18.43, 627.35, 0.004, 1.34, 0.67,
        ],
        total_mbytes_per_s: 4048.0, // PAPER.md anchor: ≈ 4.3 GB/s
    },
    // Column "1920x1088@60 (L4.2)".
    GoldenColumn {
        point: HdOperatingPoint::Hd1080p60,
        stages: [
            48.11, 96.22, 96.22, 81.53, 66.85, 42.64, 9.22, 627.52, 0.002, 1.67, 0.84,
        ],
        total_mbytes_per_s: 8031.0, // PAPER.md anchor: ≈ 8.6 GB/s
    },
    // Column "3840x2160@30 (L5.2)".
    GoldenColumn {
        point: HdOperatingPoint::Uhd2160p30,
        stages: [
            191.10, 382.21, 382.21, 323.81, 265.42, 141.93, 18.43, 2496.32, 0.004, 16.01, 8.00,
        ],
        total_mbytes_per_s: 15845.0,
    },
];

#[test]
fn table1_per_stage_bits_per_frame_match_for_all_five_levels() {
    for col in &TABLE1 {
        let uc = UseCase::hd(col.point);
        let traffic = uc.stage_traffic();
        assert_eq!(traffic.len(), STAGE_ORDER.len(), "{:?}", col.point);
        for (i, (stage, want)) in STAGE_ORDER.iter().zip(col.stages).enumerate() {
            assert_eq!(traffic[i].stage, *stage, "{:?} row {i}", col.point);
            assert_close(
                traffic[i].total_mbits(),
                want,
                CELL_TOL,
                &format!("Table I, {} × {:?}", stage.label(), col.point),
            );
        }
    }
}

#[test]
fn table1_total_mbytes_per_second_matches_for_all_five_levels() {
    for col in &TABLE1 {
        let row = UseCase::hd(col.point).table_row();
        assert_close(
            row.mbytes_per_second(),
            col.total_mbytes_per_s,
            CELL_TOL,
            &format!("Table I, Data mem. load [MB/s] × {:?}", col.point),
        );
        // The per-stage cells and the total must agree with each other,
        // not just each with its constant.
        let sum_mb: f64 = col.stages.iter().sum();
        assert_close(
            row.bits_per_frame() as f64 / 1e6,
            sum_mb,
            CELL_TOL,
            &format!("Table I column sum × {:?}", col.point),
        );
    }
}

#[test]
fn paper_prose_anchors_hold() {
    let gbps = |p| UseCase::hd(p).table_row().gbytes_per_second();
    // PAPER.md: "720p30 total load ≈ 1.9 GB/s".
    assert_close(gbps(HdOperatingPoint::Hd720p30), 1.9, ANCHOR_TOL, "720p30");
    // PAPER.md: "1080p30 total load ≈ 4.3 GB/s (≈ 2.2 × 720p30)".
    assert_close(
        gbps(HdOperatingPoint::Hd1080p30),
        4.3,
        ANCHOR_TOL,
        "1080p30",
    );
    assert_close(
        gbps(HdOperatingPoint::Hd1080p30) / gbps(HdOperatingPoint::Hd720p30),
        2.2,
        ANCHOR_TOL,
        "1080p30 / 720p30 ratio",
    );
    // PAPER.md: "1080p60 total load ≈ 8.6 GB/s".
    assert_close(
        gbps(HdOperatingPoint::Hd1080p60),
        8.6,
        ANCHOR_TOL,
        "1080p60",
    );
}

#[test]
fn table2_device_parameters_match_the_paper() {
    // Table II / Section III: 512 Mb, 4-bank, ×32 DDR bank cluster.
    let g = Geometry::next_gen_mobile_ddr();
    assert_eq!(g.banks, 4, "Table II: 4 banks per cluster");
    assert_eq!(g.word_bits, 32, "Table II: ×32 data bus");
    assert_eq!(
        g.capacity_bytes() * 8,
        512 << 20,
        "Table II: 512 Mb per cluster"
    );
    assert_eq!(g.burst_len, 4, "Section III: minimum DRAM burst of 4 words");

    // Section III: 200–533 MHz interface clock window.
    let cfg = ClusterConfig::next_gen_mobile_ddr(400);
    assert_eq!(cfg.timing.min_clock_mhz, 200, "clock window low end");
    assert_eq!(cfg.timing.max_clock_mhz, 533, "clock window high end");

    // PAPER.md anchor: 8 channels @ 400 MHz ≈ 25.6 GB/s peak (DDR: two
    // words per clock per channel).
    let peak = 8.0 * (g.word_bits as f64 / 8.0) * 2.0 * 400e6;
    assert_close(peak / 1e9, 25.6, ANCHOR_TOL, "8 ch @ 400 MHz peak GB/s");
}

#[test]
fn table2_interleave_maps_16_byte_granules_round_robin() {
    // Table II: data is interleaved over the channels at 16-byte
    // granularity — consecutive granules BC0, BC1, … rotate channels.
    for channels in [1u32, 2, 4, 8] {
        let map = InterleaveMap::new(channels, 16).unwrap();
        assert_eq!(map.channels(), channels);
        assert_eq!(map.granule_bytes(), 16);
        for granule in 0..(4 * channels as u64) {
            let addr = granule * 16;
            let slices = map.split_range(addr, 16);
            let holders: Vec<u32> = slices
                .iter()
                .enumerate()
                .filter_map(|(ch, s)| s.map(|_| ch as u32))
                .collect();
            assert_eq!(
                holders,
                vec![(granule % channels as u64) as u32],
                "granule {granule} on {channels} ch"
            );
        }
    }
}

#[test]
fn paper_experiment_defaults_match_table2() {
    // The default experiment is the paper's configuration: 16-byte
    // interleave granule over the Table II bank clusters.
    let exp = mcm_core::Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
    assert_eq!(exp.memory.granule_bytes, 16, "Table II: 16 B granule");
    assert_eq!(
        exp.memory.controller.cluster.geometry,
        Geometry::next_gen_mobile_ddr(),
        "Section III: paper bank cluster"
    );
    // Section III: up to eight parallel channels are supported.
    for channels in [1u32, 2, 4, 8] {
        mcm_core::Experiment::paper(HdOperatingPoint::Hd720p30, channels, 400)
            .validate()
            .unwrap_or_else(|e| panic!("{channels} channels must be valid: {e}"));
    }
}
