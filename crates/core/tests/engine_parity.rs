//! Cross-engine parity: the optimized hot path must be a pure speedup.
//!
//! Three seams changed for throughput and each must be invisible in the
//! results: the kernel's calendar event queue vs the reference binary
//! heap, the controller's batched same-row command runs vs per-command
//! issue (forced onto the slow path by attaching a recorder), and the
//! event-driven master's dense in-flight tracking. These tests pin
//! bit-identical outcomes over the paper's whole operating grid and over
//! proptest-drawn random configurations.

use mcm_core::eventsim::{run_event_driven_configured, EventDrivenResult};
use mcm_core::{ChunkPolicy, Experiment, Pacing, RunOptions};
use mcm_ctrl::PagePolicy;
use mcm_load::HdOperatingPoint;
use mcm_sim::QueueKind;
use proptest::prelude::*;

const LEVELS: [HdOperatingPoint; 5] = [
    HdOperatingPoint::Hd720p30,
    HdOperatingPoint::Hd720p60,
    HdOperatingPoint::Hd1080p30,
    HdOperatingPoint::Hd1080p60,
    HdOperatingPoint::Uhd2160p30,
];
const CHANNELS: [u32; 4] = [1, 2, 4, 8];

fn quick(point: HdOperatingPoint, channels: u32) -> Experiment {
    let mut e = Experiment::paper(point, channels, 400);
    e.op_limit = Some(3_000);
    e
}

fn event_driven(
    e: &Experiment,
    window: u32,
    queue: QueueKind,
) -> Result<EventDrivenResult, String> {
    run_event_driven_configured(e, window, queue, None).map_err(|err| err.to_string())
}

/// Same experiment, both queue implementations: identical access time,
/// transaction count, and fired-event count — or the identical error on
/// infeasible grid cells (2160p does not fit few channels).
#[test]
fn calendar_queue_matches_binary_heap_across_the_grid() {
    for point in LEVELS {
        for channels in CHANNELS {
            let e = quick(point, channels);
            let cal = event_driven(&e, 8, QueueKind::Calendar);
            let heap = event_driven(&e, 8, QueueKind::BinaryHeap);
            match (cal, heap) {
                (Ok(c), Ok(h)) => {
                    assert_eq!(c.access_time, h.access_time, "{point:?} x {channels}ch");
                    assert_eq!(c.transactions, h.transactions, "{point:?} x {channels}ch");
                    assert_eq!(c.events, h.events, "{point:?} x {channels}ch");
                }
                (Err(c), Err(h)) => {
                    assert_eq!(
                        c, h,
                        "engines must fail identically at {point:?} x {channels}ch"
                    )
                }
                (c, h) => panic!("engines diverged at {point:?} x {channels}ch: {c:?} vs {h:?}"),
            }
        }
    }
}

/// Narrow windows serialize the master and exercise queue tie-breaking
/// hardest (completion and next-issue events collide on one timestamp).
#[test]
fn window_extremes_agree_between_queues() {
    for window in [1, 2, u32::MAX] {
        let e = quick(HdOperatingPoint::Hd1080p30, 4);
        let cal = event_driven(&e, window, QueueKind::Calendar).unwrap();
        let heap = event_driven(&e, window, QueueKind::BinaryHeap).unwrap();
        assert_eq!(cal.access_time, heap.access_time, "window {window}");
        assert_eq!(cal.events, heap.events, "window {window}");
    }
}

/// Attaching a recorder forces the controller and device onto the
/// unbatched per-command path; the batched fast path must produce the
/// same frame, byte for byte and picosecond for picosecond.
#[test]
fn batched_admission_matches_per_command_issue() {
    for point in LEVELS {
        for channels in [1, 2, 4] {
            let e = quick(point, channels);
            let fast = e.run_with(&RunOptions::default());
            let slow = e.run_with(
                &RunOptions::default()
                    .with_recorder(std::sync::Arc::new(mcm_obs::StatsRecorder::new())),
            );
            match (fast, slow) {
                (Ok(f), Ok(s)) => {
                    let f = f.into_frame().unwrap();
                    let s = s.into_frame().unwrap();
                    assert_eq!(f.access_time, s.access_time, "{point:?} x {channels}ch");
                    assert_eq!(f.verdict, s.verdict, "{point:?} x {channels}ch");
                    assert_eq!(f.simulated_bytes, s.simulated_bytes);
                    for (cf, cs) in f.report.channels.iter().zip(&s.report.channels) {
                        assert_eq!(
                            cf.ctrl.row_hits, cs.ctrl.row_hits,
                            "{point:?} x {channels}ch"
                        );
                        assert_eq!(cf.ctrl.row_misses, cs.ctrl.row_misses);
                        assert_eq!(cf.ctrl.row_conflicts, cs.ctrl.row_conflicts);
                        assert_eq!(cf.device.reads, cs.device.reads);
                        assert_eq!(cf.device.writes, cs.device.writes);
                        assert_eq!(cf.device.activates, cs.device.activates);
                        assert_eq!(cf.device.refreshes, cs.device.refreshes);
                        assert!((cf.total_energy_pj - cs.total_energy_pj).abs() < 1e-9);
                    }
                }
                (Err(f), Err(s)) => assert_eq!(f.to_string(), s.to_string()),
                (f, s) => panic!("paths diverged at {point:?} x {channels}ch: {f:?} vs {s:?}"),
            }
        }
    }
}

proptest! {
    /// Random valid configurations never diverge between the two queue
    /// implementations (and infeasible draws fail identically).
    #[test]
    fn random_configs_never_diverge(
        level in 0usize..5,
        channels_log2 in 0u32..4,
        clock_idx in 0usize..4,
        granule_log2 in 4u64..8,
        closed_page in any::<bool>(),
        paced in any::<bool>(),
        chunk_per_channel in any::<bool>(),
        window in 1u32..12,
        op_limit in 200u64..1_500,
    ) {
        let clocks = [200u64, 266, 333, 400];
        let mut builder = Experiment::builder()
            .point(LEVELS[level])
            .channels(1 << channels_log2)
            .clock_mhz(clocks[clock_idx])
            .granule_bytes(1 << granule_log2)
            .chunk(if chunk_per_channel {
                ChunkPolicy::PerChannel(64)
            } else {
                ChunkPolicy::Fixed(128)
            })
            .op_limit(op_limit);
        if closed_page {
            builder = builder.page_policy(PagePolicy::Closed);
        }
        if paced {
            builder = builder.pacing(Pacing::Paced);
        }
        let e = match builder.build() {
            Ok(e) => e,
            // Infeasible draws (layout overflow) are build-time errors and
            // carry no engine to compare.
            Err(_) => return Ok(()),
        };
        let cal = event_driven(&e, window, QueueKind::Calendar);
        let heap = event_driven(&e, window, QueueKind::BinaryHeap);
        prop_assert_eq!(cal.is_ok(), heap.is_ok());
        if let (Ok(c), Ok(h)) = (cal, heap) {
            prop_assert_eq!(c.access_time, h.access_time);
            prop_assert_eq!(c.transactions, h.transactions);
            prop_assert_eq!(c.events, h.events);
        }
    }
}
