//! Cross-engine parity: the optimized hot path must be a pure speedup.
//!
//! Three seams changed for throughput and each must be invisible in the
//! results: the kernel's calendar event queue vs the reference binary
//! heap, the controller's batched same-row command runs vs per-command
//! issue (forced onto the slow path by attaching a recorder), and the
//! event-driven master's dense in-flight tracking. These tests pin
//! bit-identical outcomes over the paper's whole operating grid and over
//! proptest-drawn random configurations.

use std::sync::Arc;

use mcm_core::eventsim::{run_event_driven_configured, EventDrivenResult};
use mcm_core::{ChunkPolicy, ExecutionPolicy, Experiment, Pacing, RunOptions};
use mcm_ctrl::PagePolicy;
use mcm_load::HdOperatingPoint;
use mcm_obs::{merge_event_streams, ObsEvent, StatsRecorder};
use mcm_sim::QueueKind;
use proptest::prelude::*;

const LEVELS: [HdOperatingPoint; 5] = [
    HdOperatingPoint::Hd720p30,
    HdOperatingPoint::Hd720p60,
    HdOperatingPoint::Hd1080p30,
    HdOperatingPoint::Hd1080p60,
    HdOperatingPoint::Uhd2160p30,
];
const CHANNELS: [u32; 4] = [1, 2, 4, 8];

fn quick(point: HdOperatingPoint, channels: u32) -> Experiment {
    let mut e = Experiment::paper(point, channels, 400);
    e.op_limit = Some(3_000);
    e
}

fn event_driven(
    e: &Experiment,
    window: u32,
    queue: QueueKind,
) -> Result<EventDrivenResult, String> {
    run_event_driven_configured(e, window, queue, None).map_err(|err| err.to_string())
}

/// Same experiment, both queue implementations: identical access time,
/// transaction count, and fired-event count — or the identical error on
/// infeasible grid cells (2160p does not fit few channels).
#[test]
fn calendar_queue_matches_binary_heap_across_the_grid() {
    for point in LEVELS {
        for channels in CHANNELS {
            let e = quick(point, channels);
            let cal = event_driven(&e, 8, QueueKind::Calendar);
            let heap = event_driven(&e, 8, QueueKind::BinaryHeap);
            match (cal, heap) {
                (Ok(c), Ok(h)) => {
                    assert_eq!(c.access_time, h.access_time, "{point:?} x {channels}ch");
                    assert_eq!(c.transactions, h.transactions, "{point:?} x {channels}ch");
                    assert_eq!(c.events, h.events, "{point:?} x {channels}ch");
                }
                (Err(c), Err(h)) => {
                    assert_eq!(
                        c, h,
                        "engines must fail identically at {point:?} x {channels}ch"
                    )
                }
                (c, h) => panic!("engines diverged at {point:?} x {channels}ch: {c:?} vs {h:?}"),
            }
        }
    }
}

/// Narrow windows serialize the master and exercise queue tie-breaking
/// hardest (completion and next-issue events collide on one timestamp).
#[test]
fn window_extremes_agree_between_queues() {
    for window in [1, 2, u32::MAX] {
        let e = quick(HdOperatingPoint::Hd1080p30, 4);
        let cal = event_driven(&e, window, QueueKind::Calendar).unwrap();
        let heap = event_driven(&e, window, QueueKind::BinaryHeap).unwrap();
        assert_eq!(cal.access_time, heap.access_time, "window {window}");
        assert_eq!(cal.events, heap.events, "window {window}");
    }
}

/// Attaching a recorder forces the controller and device onto the
/// unbatched per-command path; the batched fast path must produce the
/// same frame, byte for byte and picosecond for picosecond.
#[test]
fn batched_admission_matches_per_command_issue() {
    for point in LEVELS {
        for channels in [1, 2, 4] {
            let e = quick(point, channels);
            let fast = e.run_with(&RunOptions::default());
            let slow = e.run_with(
                &RunOptions::default()
                    .with_recorder(std::sync::Arc::new(mcm_obs::StatsRecorder::new())),
            );
            match (fast, slow) {
                (Ok(f), Ok(s)) => {
                    let f = f.into_frame().unwrap();
                    let s = s.into_frame().unwrap();
                    assert_eq!(f.access_time, s.access_time, "{point:?} x {channels}ch");
                    assert_eq!(f.verdict, s.verdict, "{point:?} x {channels}ch");
                    assert_eq!(f.simulated_bytes, s.simulated_bytes);
                    for (cf, cs) in f.report.channels.iter().zip(&s.report.channels) {
                        assert_eq!(
                            cf.ctrl.row_hits, cs.ctrl.row_hits,
                            "{point:?} x {channels}ch"
                        );
                        assert_eq!(cf.ctrl.row_misses, cs.ctrl.row_misses);
                        assert_eq!(cf.ctrl.row_conflicts, cs.ctrl.row_conflicts);
                        assert_eq!(cf.device.reads, cs.device.reads);
                        assert_eq!(cf.device.writes, cs.device.writes);
                        assert_eq!(cf.device.activates, cs.device.activates);
                        assert_eq!(cf.device.refreshes, cs.device.refreshes);
                        assert!((cf.total_energy_pj - cs.total_energy_pj).abs() < 1e-9);
                    }
                }
                (Err(f), Err(s)) => assert_eq!(f.to_string(), s.to_string()),
                (f, s) => panic!("paths diverged at {point:?} x {channels}ch: {f:?} vs {s:?}"),
            }
        }
    }
}

/// Per-channel parallel execution must be bit-identical to serial at any
/// thread count: same `FrameResult` (every field, including every f64 bit
/// pattern — channels couple only through `max(done_cycle)` and the merge
/// replays recorder events in the serial emission order) and the same
/// `StatsRecorder` report, byte for byte.
#[test]
fn per_channel_parallelism_matches_serial_bit_for_bit() {
    for point in LEVELS {
        for channels in CHANNELS {
            let e = quick(point, channels);
            let serial_rec = Arc::new(StatsRecorder::new());
            let serial = e.run_with(&RunOptions::default().with_recorder(serial_rec.clone()));
            for threads in [1usize, 2, 4] {
                let rec = Arc::new(StatsRecorder::new());
                let par = e.run_with(
                    &RunOptions::default()
                        .with_recorder(rec.clone())
                        .with_execution(ExecutionPolicy::per_channel(threads)),
                );
                match (&serial, &par) {
                    (Ok(s), Ok(p)) => {
                        let s = s.frame().unwrap();
                        let p = p.frame().unwrap();
                        // Debug formatting prints every field, f64s with
                        // full precision: equality here is bit-parity.
                        assert_eq!(
                            format!("{s:?}"),
                            format!("{p:?}"),
                            "{point:?} x{channels}ch, {threads} thread(s)"
                        );
                        assert_eq!(
                            serial_rec.report().to_json(),
                            rec.report().to_json(),
                            "{point:?} x{channels}ch, {threads} thread(s): recorder drifted"
                        );
                    }
                    (Err(s), Err(p)) => assert_eq!(
                        s.to_string(),
                        p.to_string(),
                        "{point:?} x{channels}ch, {threads} thread(s)"
                    ),
                    (s, p) => panic!(
                        "paths diverged at {point:?} x{channels}ch, {threads} thread(s): \
                         {s:?} vs {p:?}"
                    ),
                }
            }
        }
    }
}

/// The memoized steady path prices recurring frames from their first
/// occurrence instead of re-simulating them. It is a documented analytic
/// approximation (refresh-debt drift and backlog coupling across skipped
/// frames are ignored), so the contract is: identical schedule, bytes and
/// verdicts, a bit-identical first frame (always simulated live), and
/// access times / power that track the full simulation closely.
#[test]
fn memoized_steady_state_prices_frames_like_the_simulated_run() {
    for channels in [1u32, 4] {
        let e = quick(HdOperatingPoint::Hd1080p30, channels);
        let plain = e.run_with(&RunOptions::steady(6)).unwrap();
        let plain = plain.steady().unwrap();
        let memo = e
            .run_with(
                &RunOptions::steady(6)
                    .with_execution(ExecutionPolicy::default().with_memoize_steady(true)),
            )
            .unwrap();
        let memo = memo.steady().unwrap();
        assert_eq!(plain.bytes, memo.bytes, "{channels}ch");
        assert_eq!(plain.frames.len(), memo.frames.len(), "{channels}ch");
        assert_eq!(
            format!("{:?}", plain.frames[0]),
            format!("{:?}", memo.frames[0]),
            "{channels}ch: first frame is simulated live and must be exact"
        );
        for (i, (p, m)) in plain.frames.iter().zip(&memo.frames).enumerate() {
            assert_eq!(p.start_cycle, m.start_cycle, "{channels}ch frame {i}");
            assert_eq!(p.verdict, m.verdict, "{channels}ch frame {i}");
            let ratio = m.access_time.as_ps() as f64 / p.access_time.as_ps().max(1) as f64;
            assert!(
                (0.95..=1.05).contains(&ratio),
                "{channels}ch frame {i}: memoized price drifted {ratio}"
            );
        }
        let power_ratio = memo.power.core_mw / plain.power.core_mw;
        assert!(
            (0.75..=1.25).contains(&power_ratio),
            "{channels}ch: memoized power drifted {power_ratio}"
        );
    }
}

/// Rebuild an `ObsEvent` stream element from proptest-drawn scalars. The
/// variant mix covers timestamped, untimestamped and channel-less events,
/// which exercise every arm of the merge key.
fn event_from(ts: u64, ch: u32, payload: u64) -> ObsEvent {
    match payload % 4 {
        0 => ObsEvent::Latency {
            channel: ch,
            latency_ps: payload,
        },
        1 => ObsEvent::Bytes {
            channel: ch,
            write: payload.is_multiple_of(3),
            bytes: payload,
            at_ps: ts,
        },
        2 => ObsEvent::QueueDepth {
            channel: ch,
            depth: payload,
        },
        _ => ObsEvent::Energy {
            channel: ch,
            kind: mcm_obs::CommandKind::Read,
            pj: payload as f64,
            at_ps: ts,
        },
    }
}

proptest! {
    /// `merge_event_streams` is a stable sort by `(timestamp, channel,
    /// sequence)`: permuting the order the per-channel streams are handed
    /// in never changes the merged output.
    #[test]
    fn merge_is_invariant_under_stream_permutation(
        raw in prop::collection::vec((0u64..40, 0u32..6, any::<u64>()), 0..80),
        seed in any::<u64>(),
    ) {
        // Partition the drawn events into one stream per channel, in
        // channel order — the canonical presentation.
        let mut streams: Vec<Vec<ObsEvent>> = (0..6).map(|_| Vec::new()).collect();
        for &(ts, ch, payload) in &raw {
            streams[ch as usize].push(event_from(ts, ch, payload));
        }
        let reference = merge_event_streams(streams.clone());

        // Fisher–Yates with a seeded LCG: a deterministic, proptest-drawn
        // permutation of the stream order.
        let mut shuffled = streams;
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(&merge_event_streams(shuffled), &reference);

        // And the merged order itself follows the calendar-queue tiebreak:
        // keys are non-decreasing.
        let keys: Vec<(u64, u64)> = reference
            .iter()
            .map(|e| (e.timestamp_ps(), e.channel().map_or(u64::MAX, u64::from)))
            .collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}

proptest! {
    /// Random valid configurations never diverge between the two queue
    /// implementations (and infeasible draws fail identically).
    #[test]
    fn random_configs_never_diverge(
        level in 0usize..5,
        channels_log2 in 0u32..4,
        clock_idx in 0usize..4,
        granule_log2 in 4u64..8,
        closed_page in any::<bool>(),
        paced in any::<bool>(),
        chunk_per_channel in any::<bool>(),
        window in 1u32..12,
        op_limit in 200u64..1_500,
    ) {
        let clocks = [200u64, 266, 333, 400];
        let mut builder = Experiment::builder()
            .point(LEVELS[level])
            .channels(1 << channels_log2)
            .clock_mhz(clocks[clock_idx])
            .granule_bytes(1 << granule_log2)
            .chunk(if chunk_per_channel {
                ChunkPolicy::PerChannel(64)
            } else {
                ChunkPolicy::Fixed(128)
            })
            .op_limit(op_limit);
        if closed_page {
            builder = builder.page_policy(PagePolicy::Closed);
        }
        if paced {
            builder = builder.pacing(Pacing::Paced);
        }
        let e = match builder.build() {
            Ok(e) => e,
            // Infeasible draws (layout overflow) are build-time errors and
            // carry no engine to compare.
            Err(_) => return Ok(()),
        };
        let cal = event_driven(&e, window, QueueKind::Calendar);
        let heap = event_driven(&e, window, QueueKind::BinaryHeap);
        prop_assert_eq!(cal.is_ok(), heap.is_ok());
        if let (Ok(c), Ok(h)) = (cal, heap) {
            prop_assert_eq!(c.access_time, h.access_time);
            prop_assert_eq!(c.transactions, h.transactions);
            prop_assert_eq!(c.events, h.events);
        }
    }
}
