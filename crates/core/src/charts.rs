//! Plain-text chart rendering for the figure binaries: the paper's Figs.
//! 3–5 are line/bar charts, and the harness mirrors them as ASCII so the
//! *shape* (crossings of the real-time line, bar families per format) is
//! visible directly in a terminal.

use crate::figures::{Fig3Data, FormatGridData};

/// Renders one horizontal bar of width proportional to `value / max`.
fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// An annotated horizontal bar chart: one row per (label, value), scaled to
/// the maximum value; `mark` draws a vertical reference line (e.g. the
/// real-time requirement).
///
/// # Examples
///
/// ```
/// use mcm_core::charts::hbar_chart;
///
/// let rows = vec![("1 ch".to_string(), 46.9), ("2 ch".to_string(), 23.4)];
/// let chart = hbar_chart(&rows, Some(33.3), 40, "ms");
/// assert!(chart.contains("1 ch"));
/// assert!(chart.contains("46.9"));
/// ```
pub fn hbar_chart(rows: &[(String, f64)], mark: Option<f64>, width: usize, unit: &str) -> String {
    let max = rows
        .iter()
        .map(|&(_, v)| v)
        .chain(mark)
        .fold(0.0f64, f64::max);
    if max <= 0.0 {
        return String::from("  (no data)\n");
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mark_col =
        mark.map(|m| (((m / max) * width as f64).round() as usize).min(width.saturating_sub(1)));
    let mut out = String::new();
    for (label, value) in rows {
        let mut b = format!("{:<w$}", bar(*value, max, width), w = width);
        if let Some(col) = mark_col {
            if col < width {
                // Overlay the reference line.
                let mut chars: Vec<char> = b.chars().collect();
                chars[col] = if chars[col] == '█' { '▓' } else { '|' };
                b = chars.into_iter().collect();
            }
        }
        out.push_str(&format!("  {label:<label_w$} {b} {value:.1} {unit}\n"));
    }
    if let Some(m) = mark {
        out.push_str(&format!(
            "  {:<label_w$} {:>w$}\n",
            "",
            format!("| = {m:.1} {unit}"),
            w = width + 8
        ));
    }
    out
}

/// Fig. 3 as a chart: one bar per channel count at a chosen clock, against
/// the real-time line.
pub fn fig3_chart(d: &Fig3Data, clock_mhz: u64) -> String {
    let Some(col) = d.clocks_mhz.iter().position(|&c| c == clock_mhz) else {
        return format!("  (no data for {clock_mhz} MHz)\n");
    };
    let rows: Vec<(String, f64)> = d
        .channels
        .iter()
        .zip(&d.cells)
        .filter_map(|(ch, row)| row[col].access_ms.map(|ms| (format!("{ch} ch"), ms)))
        .collect();
    let mut out = format!("  720p30 access time @ {clock_mhz} MHz (| = 30 fps budget)\n");
    out.push_str(&hbar_chart(&rows, Some(d.realtime_ms), 48, "ms"));
    out
}

/// Fig. 5 as a chart: total power bars per channel count for one format
/// column (suppressed bars shown as zero, as in the paper).
pub fn fig5_chart(d: &FormatGridData, point_index: usize) -> String {
    let Some(label) = d.points.get(point_index) else {
        return String::from("  (no such format)\n");
    };
    let rows: Vec<(String, f64)> = d
        .channels
        .iter()
        .zip(&d.cells)
        .map(|(ch, row)| {
            (
                format!("{ch} ch"),
                row[point_index].fig5_power_mw().unwrap_or(0.0),
            )
        })
        .collect();
    let mut out = format!("  power for {label} (0 = fails real time with margin)\n");
    out.push_str(&hbar_chart(&rows, None, 48, "mW"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_linearly() {
        assert_eq!(bar(50.0, 100.0, 10), "█████");
        assert_eq!(bar(100.0, 100.0, 10), "██████████");
        assert_eq!(bar(0.0, 100.0, 10), "");
        assert_eq!(bar(200.0, 100.0, 10).chars().count(), 10); // clamped
    }

    #[test]
    fn chart_contains_labels_values_and_mark() {
        let rows = vec![
            ("one".to_string(), 10.0),
            ("two".to_string(), 20.0),
            ("three".to_string(), 40.0),
        ];
        let c = hbar_chart(&rows, Some(30.0), 20, "ms");
        for needle in ["one", "two", "three", "10.0 ms", "40.0 ms", "= 30.0 ms"] {
            assert!(c.contains(needle), "missing {needle} in:\n{c}");
        }
        // The longest bar is longest.
        let lens: Vec<usize> = c
            .lines()
            .take(3)
            .map(|l| l.chars().filter(|&ch| ch == '█' || ch == '▓').count())
            .collect();
        assert!(lens[0] < lens[1] && lens[1] < lens[2]);
    }

    #[test]
    fn empty_chart_is_graceful() {
        assert!(hbar_chart(&[], None, 20, "x").contains("no data"));
    }
}
