//! Fluent, validating construction of [`Experiment`]s.
//!
//! [`Experiment::paper`] hard-codes the paper's operating assumptions; every
//! deviation (mapping, page policy, power-down, chunking…) used to be a
//! field mutation after the fact, with invalid combinations only surfacing
//! as panics or errors deep inside a run. [`ExperimentBuilder`] makes the
//! whole configuration space reachable from one fluent chain and moves the
//! validation to [`ExperimentBuilder::build`], which returns typed
//! [`CoreError`]s instead.
//!
//! ```
//! use mcm_core::{ChunkPolicy, Experiment, RunOptions};
//! use mcm_load::HdOperatingPoint;
//!
//! let exp = Experiment::builder()
//!     .point(HdOperatingPoint::Hd720p30)
//!     .channels(4)
//!     .clock_mhz(400)
//!     .chunk(ChunkPolicy::PerChannel(64))
//!     .op_limit(10_000)
//!     .build()
//!     .unwrap();
//! let outcome = exp.run_with(&RunOptions::default()).unwrap();
//! assert!(outcome.frame().unwrap().verdict.is_real_time());
//!
//! // Invalid configurations fail at build time, not mid-simulation.
//! assert!(Experiment::builder().channels(3).build().is_err());
//! ```

use mcm_channel::MemoryConfig;
use mcm_ctrl::{PagePolicy, PowerDownPolicy};
use mcm_dram::AddressMapping;
use mcm_load::{HdOperatingPoint, UseCase, Workload};
use mcm_power::InterfacePowerModel;

use crate::error::CoreError;
use crate::experiment::{ChunkPolicy, Experiment, Pacing};

/// Fluent builder for [`Experiment`]; obtain one via [`Experiment::builder`].
///
/// Defaults are the paper's headline configuration: 1080p30 recording on
/// 4 × next-generation mobile DDR at 400 MHz, RBC mapping, open page,
/// immediate power-down, 16-byte interleave granules, 64 bytes per channel
/// per master transaction, greedy pacing, 15 % data-processing margin.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    use_case: UseCase,
    channels: u32,
    clock_mhz: u64,
    granule_bytes: u64,
    mapping: Option<AddressMapping>,
    page_policy: Option<PagePolicy>,
    power_down: Option<PowerDownPolicy>,
    chunk: ChunkPolicy,
    pacing: Pacing,
    margin: f64,
    interface: InterfacePowerModel,
    op_limit: Option<u64>,
    workload: Workload,
    geometry: Option<mcm_dram::Geometry>,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            use_case: UseCase::hd(HdOperatingPoint::Hd1080p30),
            channels: 4,
            clock_mhz: 400,
            granule_bytes: 16,
            mapping: None,
            page_policy: None,
            power_down: None,
            chunk: ChunkPolicy::PerChannel(64),
            pacing: Pacing::Greedy,
            margin: 0.15,
            interface: InterfacePowerModel::paper(),
            op_limit: None,
            workload: Workload::TableI,
            geometry: None,
        }
    }
}

impl ExperimentBuilder {
    /// Records `point` with the paper's full recording use case.
    pub fn point(mut self, point: HdOperatingPoint) -> Self {
        self.use_case = UseCase::hd(point);
        self
    }

    /// Uses `point` in viewfinder-only mode (no encoding/storage traffic).
    pub fn viewfinder(mut self, point: HdOperatingPoint) -> Self {
        self.use_case = UseCase::viewfinder(point);
        self
    }

    /// Replaces the whole load model (custom use cases).
    pub fn use_case(mut self, use_case: UseCase) -> Self {
        self.use_case = use_case;
        self
    }

    /// Channel count (must be a non-zero power of two).
    pub fn channels(mut self, channels: u32) -> Self {
        self.channels = channels;
        self
    }

    /// Interface clock shared by all channels, MHz.
    pub fn clock_mhz(mut self, clock_mhz: u64) -> Self {
        self.clock_mhz = clock_mhz;
        self
    }

    /// Interleave granularity, bytes (must be a non-zero power of two).
    pub fn granule_bytes(mut self, granule_bytes: u64) -> Self {
        self.granule_bytes = granule_bytes;
        self
    }

    /// Address multiplexing (default: RBC).
    pub fn mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// Row-buffer policy (default: open page).
    pub fn page_policy(mut self, page_policy: PagePolicy) -> Self {
        self.page_policy = Some(page_policy);
        self
    }

    /// CKE policy (default: power down after the first idle cycle).
    pub fn power_down(mut self, power_down: PowerDownPolicy) -> Self {
        self.power_down = Some(power_down);
        self
    }

    /// Master-transaction sizing.
    pub fn chunk(mut self, chunk: ChunkPolicy) -> Self {
        self.chunk = chunk;
        self
    }

    /// Arrival pacing (default: greedy, the paper's model).
    pub fn pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Data-processing margin on the real-time budget, in `[0, 1)`.
    pub fn margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// Interface power model (default: equation (1) with paper constants).
    pub fn interface(mut self, interface: InterfacePowerModel) -> Self {
        self.interface = interface;
        self
    }

    /// Caps the number of simulated load operations (quick tests only).
    pub fn op_limit(mut self, ops: u64) -> Self {
        self.op_limit = Some(ops);
        self
    }

    /// Selects the workload model (default: the paper's Table I chain).
    /// The use case set by [`ExperimentBuilder::point`] /
    /// [`ExperimentBuilder::use_case`] still shapes the buffers and rates.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the per-channel device geometry (default: the paper's
    /// 512 Mb part). The frame-buffer capacity ceiling is a datasheet
    /// field — pass [`mcm_dram::Geometry::large_capacity_mobile_ddr`] to
    /// fit 2160p30 into one or two channels.
    pub fn geometry(mut self, geometry: mcm_dram::Geometry) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Validates the configuration and produces the [`Experiment`].
    ///
    /// Everything [`Experiment::validate`] checks is checked here, so a
    /// built experiment cannot fail parameter validation later.
    pub fn build(self) -> Result<Experiment, CoreError> {
        let mut memory = MemoryConfig::paper(self.channels, self.clock_mhz);
        memory.granule_bytes = self.granule_bytes;
        if let Some(mapping) = self.mapping {
            memory.controller.mapping = mapping;
        }
        if let Some(page_policy) = self.page_policy {
            memory.controller.page_policy = page_policy;
        }
        if let Some(power_down) = self.power_down {
            memory.controller.power_down = power_down;
        }
        if let Some(geometry) = self.geometry {
            memory.controller.cluster.geometry = geometry;
        }
        let exp = Experiment {
            use_case: self.use_case,
            memory,
            chunk: self.chunk,
            pacing: self.pacing,
            margin: self.margin,
            interface: self.interface,
            op_limit: self.op_limit,
            workload: self.workload,
        };
        exp.validate()?;
        exp.model().validate()?;
        Ok(exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let built = Experiment::builder().build().unwrap();
        let paper = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        assert_eq!(built.memory.channels, paper.memory.channels);
        assert_eq!(built.memory.clock_mhz, paper.memory.clock_mhz);
        assert_eq!(built.memory.granule_bytes, paper.memory.granule_bytes);
        assert_eq!(built.chunk, paper.chunk);
        assert_eq!(built.pacing, paper.pacing);
        assert_eq!(built.margin, paper.margin);
        assert_eq!(built.use_case, paper.use_case);
    }

    #[test]
    fn builder_applies_every_knob() {
        let exp = Experiment::builder()
            .point(HdOperatingPoint::Hd720p60)
            .channels(2)
            .clock_mhz(333)
            .granule_bytes(64)
            .mapping(AddressMapping::Brc)
            .page_policy(PagePolicy::Closed)
            .power_down(PowerDownPolicy::Never)
            .chunk(ChunkPolicy::Fixed(256))
            .pacing(Pacing::Paced)
            .margin(0.2)
            .op_limit(123)
            .build()
            .unwrap();
        assert_eq!(exp.memory.channels, 2);
        assert_eq!(exp.memory.clock_mhz, 333);
        assert_eq!(exp.memory.granule_bytes, 64);
        assert_eq!(exp.memory.controller.mapping, AddressMapping::Brc);
        assert_eq!(exp.memory.controller.page_policy, PagePolicy::Closed);
        assert_eq!(exp.memory.controller.power_down, PowerDownPolicy::Never);
        assert_eq!(exp.chunk, ChunkPolicy::Fixed(256));
        assert_eq!(exp.pacing, Pacing::Paced);
        assert_eq!(exp.margin, 0.2);
        assert_eq!(exp.op_limit, Some(123));
    }

    #[test]
    fn invalid_configs_fail_at_build_with_typed_errors() {
        let cases: [(&str, ExperimentBuilder); 5] = [
            ("channels", Experiment::builder().channels(3)),
            ("channels", Experiment::builder().channels(0)),
            ("clock", Experiment::builder().clock_mhz(0)),
            ("granule", Experiment::builder().granule_bytes(24)),
            ("margin", Experiment::builder().margin(1.0)),
        ];
        for (what, builder) in cases {
            match builder.build() {
                Err(CoreError::BadParam { reason }) => {
                    assert!(reason.contains(what), "{what}: {reason}")
                }
                other => panic!("{what}: expected BadParam, got {other:?}"),
            }
        }
        // Zero-byte master transactions are rejected too.
        assert!(matches!(
            Experiment::builder().chunk(ChunkPolicy::Fixed(0)).build(),
            Err(CoreError::BadParam { .. })
        ));
    }

    #[test]
    fn workload_knob_selects_the_model() {
        let exp = Experiment::builder()
            .point(HdOperatingPoint::Hd720p30)
            .workload(Workload::MultiTenant(2))
            .build()
            .unwrap();
        assert_eq!(exp.workload, Workload::MultiTenant(2));
        assert_eq!(exp.model().name(), "multi-tenant:2");
        // The default stays the paper's chain.
        assert!(Experiment::builder().build().unwrap().workload.is_default());
    }

    #[test]
    fn viewfinder_builder_cuts_the_load() {
        let rec = Experiment::builder()
            .point(HdOperatingPoint::Hd720p30)
            .build()
            .unwrap();
        let vf = Experiment::builder()
            .viewfinder(HdOperatingPoint::Hd720p30)
            .build()
            .unwrap();
        let bits = |e: &Experiment| e.use_case.table_row().bits_per_frame();
        assert!(bits(&vf) * 2 < bits(&rec));
    }
}
