//! The unified execution policy: *how* a run executes, as opposed to
//! *what* it computes.
//!
//! Engine selection (calendar queue vs binary heap), intra-run per-channel
//! parallelism and steady-state memoization used to be scattered knobs
//! across the core, sweep, serve and CLI layers. [`ExecutionPolicy`] is the
//! one value that carries all of them; it rides on
//! [`RunOptions::execution`](crate::RunOptions) and is accepted everywhere a
//! run can be launched (`RunOptions::with_execution`, `SweepOptions`, the
//! serve JSON body's `"execution"` key, and `--execution`/`--threads` on
//! `mcm run`/`mcm bench`/`mcm sweep`).
//!
//! Every field serializes only when it differs from the default, so a
//! default policy round-trips to an *absent* `"execution"` key and existing
//! sweep-cache fingerprints and result-store documents stay warm.
//!
//! Changing the policy never changes simulated results except for
//! [`ExecutionPolicy::memoize_steady`], which is a documented analytic
//! approximation: per-channel parallel execution is bit-identical to serial
//! at any thread count, and both event queues deliver identical orderings
//! (pinned by `engine_parity.rs`).

use std::fmt;
use std::str::FromStr;

use mcm_sim::QueueKind;
use serde::{Deserialize, Serialize};

/// Intra-run parallelism strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// One thread walks all channels (the default).
    #[default]
    Serial,
    /// Each channel's command substream simulates on its own rayon task,
    /// merged deterministically — bit-identical to [`Parallelism::Serial`].
    PerChannel {
        /// Worker threads; `0` follows `RAYON_NUM_THREADS` / the CPU count.
        threads: usize,
    },
}

/// How a run executes: event-queue engine, intra-run parallelism, and the
/// steady-state memoization fast path.
///
/// # Examples
///
/// ```
/// use mcm_core::{ExecutionPolicy, Parallelism};
///
/// let policy: ExecutionPolicy = "per-channel:4,memoized".parse().unwrap();
/// assert_eq!(policy.parallelism, Parallelism::PerChannel { threads: 4 });
/// assert!(policy.memoize_steady);
/// assert_eq!(policy.to_string(), "per-channel:4,memoized");
/// assert_eq!("serial".parse::<ExecutionPolicy>().unwrap(), ExecutionPolicy::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExecutionPolicy {
    /// Event-queue implementation for event-driven runs.
    pub engine: QueueKind,
    /// Intra-run parallelism for the direct frame path.
    pub parallelism: Parallelism,
    /// Price identical steady-state frames once instead of re-simulating
    /// them (multi-frame runs without a recorder only). An analytic
    /// approximation: access times of repeated frames reuse their first
    /// occurrence, so refresh-debt drift across skipped frames is ignored.
    pub memoize_steady: bool,
}

impl ExecutionPolicy {
    /// A serial, calendar-queue, non-memoizing policy (the default).
    pub fn serial() -> Self {
        ExecutionPolicy::default()
    }

    /// A per-channel parallel policy on `threads` workers (`0` = auto).
    pub fn per_channel(threads: usize) -> Self {
        ExecutionPolicy {
            parallelism: Parallelism::PerChannel { threads },
            ..ExecutionPolicy::default()
        }
    }

    /// Sets the event-queue engine (builder style).
    pub fn with_engine(mut self, engine: QueueKind) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables steady-state memoization (builder style).
    pub fn with_memoize_steady(mut self, memoize: bool) -> Self {
        self.memoize_steady = memoize;
        self
    }

    /// The worker-thread count to hand the parallel submit path, or `None`
    /// for serial execution.
    pub fn parallel_threads(&self) -> Option<usize> {
        match self.parallelism {
            Parallelism::Serial => None,
            Parallelism::PerChannel { threads } => Some(threads),
        }
    }
}

fn engine_name(kind: QueueKind) -> &'static str {
    match kind {
        QueueKind::Calendar => "calendar",
        QueueKind::BinaryHeap => "binary-heap",
    }
}

impl fmt::Display for ExecutionPolicy {
    /// Renders the policy in the same comma-separated token form
    /// [`ExecutionPolicy::from_str`] parses; the default policy renders as
    /// `"serial"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut tokens: Vec<String> = Vec::new();
        match self.parallelism {
            Parallelism::Serial => {}
            Parallelism::PerChannel { threads: 0 } => tokens.push("per-channel".into()),
            Parallelism::PerChannel { threads } => tokens.push(format!("per-channel:{threads}")),
        }
        if self.engine != QueueKind::default() {
            tokens.push(engine_name(self.engine).into());
        }
        if self.memoize_steady {
            tokens.push("memoized".into());
        }
        if tokens.is_empty() {
            tokens.push("serial".into());
        }
        write!(f, "{}", tokens.join(","))
    }
}

impl FromStr for ExecutionPolicy {
    type Err = String;

    /// Parses the CLI/serve spelling: comma-separated tokens among
    /// `serial`, `per-channel`, `per-channel:<threads>`, `calendar`,
    /// `binary-heap` and `memoized`, in any order.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut policy = ExecutionPolicy::default();
        for token in s.split(',') {
            let token = token.trim();
            match token {
                "" | "serial" | "default" => policy.parallelism = Parallelism::Serial,
                "per-channel" => policy.parallelism = Parallelism::PerChannel { threads: 0 },
                "calendar" => policy.engine = QueueKind::Calendar,
                "binary-heap" => policy.engine = QueueKind::BinaryHeap,
                "memoized" => policy.memoize_steady = true,
                _ => {
                    if let Some(n) = token.strip_prefix("per-channel:") {
                        let threads: usize = n.parse().map_err(|_| {
                            format!("bad thread count {n:?} in execution spec {s:?}")
                        })?;
                        policy.parallelism = Parallelism::PerChannel { threads };
                    } else {
                        return Err(format!(
                            "unknown execution token {token:?} (expected serial, \
                             per-channel[:N], calendar, binary-heap or memoized)"
                        ));
                    }
                }
            }
        }
        Ok(policy)
    }
}

// Hand-rolled serde: a flat object whose every key is elided at its default
// value, so `ExecutionPolicy::default()` serializes as `{}` and the
// enclosing `RunOptions` can drop the key entirely. A JSON string in the
// `FromStr` spelling is accepted on input (the serve body takes either
// form).
impl Serialize for ExecutionPolicy {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        if self.engine != QueueKind::default() {
            m.insert(
                "engine".to_string(),
                serde::Value::String(engine_name(self.engine).to_string()),
            );
        }
        match self.parallelism {
            Parallelism::Serial => {}
            Parallelism::PerChannel { threads } => {
                m.insert(
                    "parallelism".to_string(),
                    serde::Value::String("per-channel".to_string()),
                );
                if threads != 0 {
                    m.insert("threads".to_string(), (threads as u64).to_value());
                }
            }
        }
        if self.memoize_steady {
            m.insert("memoize_steady".to_string(), true.to_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for ExecutionPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(s) = v.as_str() {
            return s.parse().map_err(serde::Error::custom);
        }
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object or string for ExecutionPolicy"))?;
        let mut policy = ExecutionPolicy::default();
        if let Some(engine) = obj.get("engine") {
            let name: String = Deserialize::from_value(engine)?;
            policy.engine = match name.as_str() {
                "calendar" => QueueKind::Calendar,
                "binary-heap" => QueueKind::BinaryHeap,
                other => {
                    return Err(serde::Error::custom(format!(
                        "unknown engine {other:?} (expected calendar or binary-heap)"
                    )))
                }
            };
        }
        let threads = match obj.get("threads") {
            Some(t) => {
                let t: u64 = Deserialize::from_value(t)?;
                t as usize
            }
            None => 0,
        };
        match obj.get("parallelism") {
            None => {
                if threads != 0 {
                    policy.parallelism = Parallelism::PerChannel { threads };
                }
            }
            Some(p) => {
                let name: String = Deserialize::from_value(p)?;
                policy.parallelism = match name.as_str() {
                    "serial" => Parallelism::Serial,
                    "per-channel" => Parallelism::PerChannel { threads },
                    other => {
                        return Err(serde::Error::custom(format!(
                            "unknown parallelism {other:?} (expected serial or per-channel)"
                        )))
                    }
                };
            }
        }
        if let Some(m) = obj.get("memoize_steady") {
            policy.memoize_steady = Deserialize::from_value(m)?;
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_calendar_unmemoized() {
        let d = ExecutionPolicy::default();
        assert_eq!(d.engine, QueueKind::Calendar);
        assert_eq!(d.parallelism, Parallelism::Serial);
        assert!(!d.memoize_steady);
        assert_eq!(d.parallel_threads(), None);
        assert_eq!(d, ExecutionPolicy::serial());
    }

    #[test]
    fn default_serializes_to_empty_object() {
        let v = ExecutionPolicy::default().to_value();
        assert_eq!(serde_json::to_string(&v).unwrap(), "{}");
    }

    #[test]
    fn round_trips_through_serde() {
        let policies = [
            ExecutionPolicy::default(),
            ExecutionPolicy::per_channel(0),
            ExecutionPolicy::per_channel(4),
            ExecutionPolicy::default().with_engine(QueueKind::BinaryHeap),
            ExecutionPolicy::per_channel(2)
                .with_engine(QueueKind::BinaryHeap)
                .with_memoize_steady(true),
        ];
        for p in policies {
            let v = p.to_value();
            let back = ExecutionPolicy::from_value(&v).unwrap();
            assert_eq!(p, back, "{v:?}");
        }
    }

    #[test]
    fn round_trips_through_display_and_parse() {
        for spec in [
            "serial",
            "per-channel",
            "per-channel:4",
            "binary-heap",
            "per-channel:2,binary-heap,memoized",
            "memoized",
        ] {
            let p: ExecutionPolicy = spec.parse().unwrap();
            assert_eq!(p.to_string(), spec, "canonical form of {spec:?}");
            let again: ExecutionPolicy = p.to_string().parse().unwrap();
            assert_eq!(p, again);
        }
    }

    #[test]
    fn parse_accepts_any_token_order_and_whitespace() {
        let a: ExecutionPolicy = "memoized, per-channel:8".parse().unwrap();
        let b: ExecutionPolicy = "per-channel:8,memoized".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.parallel_threads(), Some(8));
    }

    #[test]
    fn parse_rejects_unknown_tokens() {
        assert!("warp-speed".parse::<ExecutionPolicy>().is_err());
        assert!("per-channel:lots".parse::<ExecutionPolicy>().is_err());
    }

    #[test]
    fn deserializes_from_a_string_value() {
        let v = serde::Value::String("per-channel:3".to_string());
        let p = ExecutionPolicy::from_value(&v).unwrap();
        assert_eq!(p, ExecutionPolicy::per_channel(3));
    }

    #[test]
    fn bare_threads_key_implies_per_channel() {
        let v = serde_json::from_str("{\"threads\": 2}").unwrap();
        let p = ExecutionPolicy::from_value(&v).unwrap();
        assert_eq!(p, ExecutionPolicy::per_channel(2));
    }

    #[test]
    fn rejects_bad_engine_and_parallelism() {
        for bad in [
            "{\"engine\": \"bogo\"}",
            "{\"parallelism\": \"hyper\"}",
            "[1, 2]",
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(ExecutionPolicy::from_value(&v).is_err(), "{bad}");
        }
    }
}
