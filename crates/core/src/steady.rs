//! Multi-frame steady-state simulation.
//!
//! The paper evaluates a single encoded frame ("one frame encoded"). A
//! recording session, however, runs frames back-to-back with the
//! reconstructed frame rotating into the reference set. This module runs
//! `N` consecutive frames against one persistent memory subsystem — refresh
//! debt, power-down state and bank states carry across frame boundaries —
//! and reports per-frame access times and the sustained power.
//!
//! Frame `f`'s operations arrive from cycle `f × budget` (each frame starts
//! on its real-time schedule); if a frame overruns, the next frame's
//! traffic queues behind it, exactly as a real pipeline would back up.

use mcm_channel::{MasterTransaction, MemorySubsystem};
use mcm_ctrl::AccessOp;
use mcm_load::{LayoutOptions, LoadModel};
use mcm_power::PowerSummary;
use mcm_sim::SimTime;

use crate::error::CoreError;
use crate::experiment::{Experiment, RealTimeVerdict};
use crate::ExecutionPolicy;

/// Per-frame measurement within a steady-state run.
#[derive(Debug, Clone, Copy)]
pub struct FrameSample {
    /// Cycle the frame's traffic began arriving.
    pub start_cycle: u64,
    /// Time from frame start to its last data beat.
    pub access_time: SimTime,
    /// Verdict against the frame budget (with the experiment margin).
    pub verdict: RealTimeVerdict,
}

/// Result of a steady-state run.
#[derive(Debug, Clone)]
pub struct SteadyStateResult {
    /// One sample per simulated frame.
    pub frames: Vec<FrameSample>,
    /// Average power over the whole session (core + interface).
    pub power: PowerSummary,
    /// Total bytes moved.
    pub bytes: u64,
}

impl SteadyStateResult {
    /// Whether every frame met real time (with margin).
    pub fn all_real_time(&self) -> bool {
        self.frames.iter().all(|f| f.verdict.is_real_time())
    }

    /// Mean access time over frames after the first (the steady state).
    pub fn steady_access_time(&self) -> Option<SimTime> {
        if self.frames.len() < 2 {
            return None;
        }
        let sum: u64 = self.frames[1..].iter().map(|f| f.access_time.as_ps()).sum();
        Some(SimTime::from_ps(sum / (self.frames.len() - 1) as u64))
    }
}

/// Runs `frames` consecutive frames of `exp`'s workload `model` against one
/// persistent memory subsystem, with an optional instrumentation sink
/// attached; each frame is additionally captured as a `"frame"` span.
/// The model sees the captured-frame index, so reference rotation and
/// stochastic modulation advance frame by frame.
///
/// This is the engine behind
/// [`RunOptions::steady`](crate::RunOptions::steady); prefer
/// [`Experiment::run_with`] and the [`RunOutcome`](crate::RunOutcome)
/// accessors for getting at the [`SteadyStateResult`]. Runs with the
/// default [`ExecutionPolicy`]; use [`run_steady_state_with`] to pick
/// parallelism or the memoizing fast path.
pub fn run_steady_state_observed(
    exp: &Experiment,
    model: &dyn LoadModel,
    frames: u32,
    recorder: Option<std::sync::Arc<dyn mcm_obs::Recorder>>,
) -> Result<SteadyStateResult, CoreError> {
    run_steady_state_with(exp, model, frames, &ExecutionPolicy::default(), recorder)
}

/// FNV-1a over a frame's (direction, address, length) operation stream: the
/// memoization key that decides whether two frames issue identical traffic.
fn frame_stream_key(ops: &[MasterTransaction]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for txn in ops {
        eat(match txn.op {
            AccessOp::Write => 1,
            AccessOp::Read => 0,
        });
        eat(txn.addr);
        eat(txn.len);
    }
    h
}

/// What the memoizer keeps per unique frame stream.
struct MemoFrame {
    access_cycles: u64,
    bytes: u64,
    event_energy_pj: f64,
}

/// [`run_steady_state_observed`] with an explicit [`ExecutionPolicy`].
///
/// * `policy.parallelism` — each frame's transaction batch runs through the
///   per-channel parallel path (bit-identical to serial at any thread
///   count); fault-free steady sessions only, which steady runs always are.
/// * `policy.memoize_steady` — frames whose operation stream (direction,
///   address, length, in order) hashes identically to an already-simulated
///   frame are *priced* from that frame's measurements instead of being
///   re-simulated: same access time and verdict, bytes and per-event DRAM
///   energy credited to the session total. With the paper's deterministic
///   workload the stream recurs once the reference-frame rotation completes
///   a period, so a long session simulates only the first rotation. This is
///   an analytic approximation — refresh-debt drift and backlog coupling
///   across skipped frames are ignored (a backed-up pipeline would slow
///   repeated frames down, the memoizer reports them at their first
///   occurrence's speed) and background energy during skipped frames is
///   accounted as idle — so it is opt-in and disabled whenever a recorder
///   is attached (the event stream would have gaps).
pub fn run_steady_state_with(
    exp: &Experiment,
    model: &dyn LoadModel,
    frames: u32,
    policy: &ExecutionPolicy,
    recorder: Option<std::sync::Arc<dyn mcm_obs::Recorder>>,
) -> Result<SteadyStateResult, CoreError> {
    exp.validate()?;
    if frames == 0 {
        return Err(CoreError::BadParam {
            reason: "steady-state run needs at least one frame".into(),
        });
    }
    let mut memory = MemorySubsystem::new(&exp.memory)?;
    if let Some(rec) = &recorder {
        memory.set_recorder(rec.clone());
    }
    let geometry = exp.memory.controller.cluster.geometry;
    let layout_opts = LayoutOptions::bank_staggered(
        memory.capacity_bytes(),
        geometry.page_bytes() as u64,
        memory.channels(),
        geometry.banks,
    );
    let frame_budget = SimTime::from_ps(1_000_000_000_000u64 / exp.use_case.fps as u64);
    let budget_cycles = memory.clock().cycles_at(frame_budget);
    let chunk = exp.chunk.bytes(memory.channels());
    let memoize = policy.memoize_steady && recorder.is_none();
    let mut memo: std::collections::HashMap<u64, MemoFrame> = std::collections::HashMap::new();
    // Event energy credited for frames the memoizer skipped; background
    // energy over the whole horizon still comes from the live subsystem.
    let mut memo_event_pj = 0.0f64;

    let mut samples = Vec::with_capacity(frames as usize);
    let mut bytes = 0u64;
    let mut batch: Vec<MasterTransaction> = Vec::new();
    for f in 0..frames {
        let start = f as u64 * budget_cycles;
        let traffic = model.traffic(&layout_opts, chunk, f as u64, &[])?;
        batch.clear();
        let mut frame_bytes = 0u64;
        for (ops, op) in traffic.enumerate() {
            if let Some(limit) = exp.op_limit {
                if ops as u64 >= limit {
                    break;
                }
            }
            batch.push(MasterTransaction {
                op: if op.write {
                    AccessOp::Write
                } else {
                    AccessOp::Read
                },
                addr: op.addr,
                len: op.len as u64,
                arrival: start,
            });
            frame_bytes += op.len as u64;
        }
        let key = memoize.then(|| frame_stream_key(&batch));
        let access_cycles = match key.as_ref().and_then(|k| memo.get(k)) {
            Some(prior) => {
                // Identical stream: price it from the first occurrence.
                memo_event_pj += prior.event_energy_pj;
                bytes += prior.bytes;
                prior.access_cycles
            }
            None => {
                let pre_event_pj = memoize.then(|| memory.event_energy_pj());
                let done = match policy.parallel_threads() {
                    Some(threads) => memory.submit_batch_parallel(&batch, threads)?,
                    None => memory.submit_batch(&batch)?,
                };
                let access_cycles = done.max(start) - start;
                bytes += frame_bytes;
                if let (Some(k), Some(pre)) = (key, pre_event_pj) {
                    memo.insert(
                        k,
                        MemoFrame {
                            access_cycles,
                            bytes: frame_bytes,
                            event_energy_pj: memory.event_energy_pj() - pre,
                        },
                    );
                }
                access_cycles
            }
        };
        let access_time = memory.clock().time_of_cycles(start + access_cycles)
            - memory.clock().time_of_cycles(start);
        let verdict = if access_cycles > budget_cycles {
            RealTimeVerdict::Fails
        } else if access_cycles as f64 > budget_cycles as f64 * (1.0 - exp.margin) {
            RealTimeVerdict::Marginal
        } else {
            RealTimeVerdict::Meets
        };
        if let Some(rec) = &recorder {
            let start_ps = memory.clock().time_of_cycles(start).as_ps();
            rec.record_span("frame", None, start_ps, start_ps + access_time.as_ps());
        }
        samples.push(FrameSample {
            start_cycle: start,
            access_time,
            verdict,
        });
    }
    let horizon = frames as u64 * budget_cycles;
    let report = memory.finish(horizon)?;
    let horizon_time = memory
        .clock()
        .time_of_cycles(horizon.max(memory.busy_until()));
    let core_mw = (report.core_energy_pj + memo_event_pj) / horizon_time.as_ns_f64();
    let interface_mw = exp
        .interface
        .total_power_mw(memory.clock().frequency(), memory.channels());
    let power = PowerSummary {
        core_mw,
        interface_mw,
    };
    if let Some(rec) = &recorder {
        power.observe(rec.as_ref());
    }
    Ok(SteadyStateResult {
        frames: samples,
        power,
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    fn steady(e: &Experiment, frames: u32) -> Result<SteadyStateResult, CoreError> {
        e.run_with(&crate::RunOptions::steady(frames))
            .map(|o| o.into_steady().expect("steady outcome"))
    }

    fn exp() -> Experiment {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        e.op_limit = Some(30_000);
        e
    }

    #[test]
    fn zero_frames_rejected() {
        assert!(steady(&exp(), 0).is_err());
    }

    #[test]
    fn frames_are_stable_after_warmup() {
        let r = steady(&exp(), 5).unwrap();
        assert_eq!(r.frames.len(), 5);
        let steady = r.steady_access_time().unwrap();
        for f in &r.frames[1..] {
            let ratio = f.access_time.as_ps() as f64 / steady.as_ps() as f64;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "unstable frame: {} vs steady {}",
                f.access_time,
                steady
            );
        }
        assert!(r.all_real_time());
        assert!(r.power.core_mw > 0.0);
    }

    #[test]
    fn frame_starts_follow_the_schedule() {
        let r = steady(&exp(), 3).unwrap();
        let budget = 13_333_333 / 4; // not used; check monotone spacing instead
        let _ = budget;
        for pair in r.frames.windows(2) {
            assert!(pair[1].start_cycle > pair[0].start_cycle);
            assert_eq!(
                pair[1].start_cycle - pair[0].start_cycle,
                r.frames[1].start_cycle - r.frames[0].start_cycle,
                "frame starts must be periodic"
            );
        }
    }

    #[test]
    fn reference_rotation_cycles_through_the_pool() {
        use mcm_load::FrameLayout;
        let base =
            FrameLayout::new(&mcm_load::UseCase::hd(HdOperatingPoint::Hd720p30), 1 << 30).unwrap();
        let n = base.references.len() + 1;
        let rotated_layout = |base: &FrameLayout, f: usize| base.rotated(f as u64);
        // After n rotations the layout returns to the start.
        let l0 = rotated_layout(&base, 0);
        let ln = rotated_layout(&base, n);
        assert_eq!(l0.reconstructed, ln.reconstructed);
        assert_eq!(l0.references, ln.references);
        // Consecutive frames use different reconstructed buffers.
        let l1 = rotated_layout(&base, 1);
        assert_ne!(l0.reconstructed, l1.reconstructed);
        // The pool is conserved: recon + refs is always the same region set.
        let mut set0: Vec<_> = l0.references.iter().map(|r| r.start).collect();
        set0.push(l0.reconstructed.start);
        set0.sort();
        let mut set1: Vec<_> = l1.references.iter().map(|r| r.start).collect();
        set1.push(l1.reconstructed.start);
        set1.sort();
        assert_eq!(set0, set1);
    }

    #[test]
    fn overloaded_pipeline_backs_up() {
        // One channel at 200 MHz cannot sustain 720p30: later frames must
        // take longer than the first as the backlog grows.
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 1, 200);
        e.op_limit = Some(60_000);
        let r = steady(&e, 4).unwrap();
        // op_limit truncation may keep individual frames under budget, but
        // access times must be non-decreasing once saturated.
        let times: Vec<u64> = r.frames.iter().map(|f| f.access_time.as_ps()).collect();
        assert!(
            times.windows(2).all(|w| w[1] + 1_000_000 >= w[0]),
            "backlog should not shrink: {times:?}"
        );
    }
}
