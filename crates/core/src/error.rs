//! Top-level experiment errors.

use core::fmt;

use mcm_channel::ChannelError;
use mcm_load::LoadError;

/// Errors raised while configuring or running an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The load model rejected the use case or layout.
    Load(LoadError),
    /// The memory subsystem rejected the configuration or a transaction.
    Memory(ChannelError),
    /// An experiment parameter failed validation.
    BadParam {
        /// Explanation.
        reason: String,
    },
    /// An experiment panicked mid-run and the panic was isolated by a batch
    /// executor (one bad grid point must not kill a whole sweep).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Load(e) => write!(f, "load model: {e}"),
            CoreError::Memory(e) => write!(f, "memory subsystem: {e}"),
            CoreError::BadParam { reason } => write!(f, "bad experiment parameter: {reason}"),
            CoreError::Panicked { message } => write!(f, "experiment panicked: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Load(e) => Some(e),
            CoreError::Memory(e) => Some(e),
            CoreError::BadParam { .. } | CoreError::Panicked { .. } => None,
        }
    }
}

impl From<LoadError> for CoreError {
    fn from(e: LoadError) -> Self {
        CoreError::Load(e)
    }
}

impl From<ChannelError> for CoreError {
    fn from(e: ChannelError) -> Self {
        CoreError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: CoreError = LoadError::BadParam { reason: "x".into() }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("load model"));
        let e: CoreError = ChannelError::BadConfig { reason: "y".into() }.into();
        assert!(e.to_string().contains("memory subsystem"));
    }
}
