//! Top-level experiment errors.
//!
//! Every layer's error converts into [`CoreError`] via `From`, so `?` works
//! across the whole stack, and each variant's `Display` carries a stable
//! layer prefix (`sim:`, `dram:`, `ctrl:`, `channel:`, `load:`) that scripts
//! and tests can match on without parsing the layer's own message.

use core::fmt;

use mcm_channel::ChannelError;
use mcm_ctrl::CtrlError;
use mcm_dram::DramError;
use mcm_load::LoadError;
use mcm_sim::SimError;

/// Errors raised while configuring or running an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The event kernel rejected the schedule or a component failed.
    Sim(SimError),
    /// The DRAM device model rejected a command or configuration.
    Dram(DramError),
    /// A channel controller rejected a request or configuration.
    Ctrl(CtrlError),
    /// The load model rejected the use case or layout.
    Load(LoadError),
    /// The memory subsystem rejected the configuration or a transaction.
    Memory(ChannelError),
    /// An experiment parameter failed validation.
    BadParam {
        /// Explanation.
        reason: String,
    },
    /// An experiment panicked mid-run and the panic was isolated by a batch
    /// executor (one bad grid point must not kill a whole sweep).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "sim: {e}"),
            CoreError::Dram(e) => write!(f, "dram: {e}"),
            CoreError::Ctrl(e) => write!(f, "ctrl: {e}"),
            CoreError::Load(e) => write!(f, "load: {e}"),
            CoreError::Memory(e) => write!(f, "channel: {e}"),
            CoreError::BadParam { reason } => write!(f, "bad experiment parameter: {reason}"),
            CoreError::Panicked { message } => write!(f, "experiment panicked: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Dram(e) => Some(e),
            CoreError::Ctrl(e) => Some(e),
            CoreError::Load(e) => Some(e),
            CoreError::Memory(e) => Some(e),
            CoreError::BadParam { .. } | CoreError::Panicked { .. } => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<DramError> for CoreError {
    fn from(e: DramError) -> Self {
        CoreError::Dram(e)
    }
}

impl From<CtrlError> for CoreError {
    fn from(e: CtrlError) -> Self {
        CoreError::Ctrl(e)
    }
}

impl From<LoadError> for CoreError {
    fn from(e: LoadError) -> Self {
        CoreError::Load(e)
    }
}

impl From<ChannelError> for CoreError {
    fn from(e: ChannelError) -> Self {
        CoreError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: CoreError = LoadError::BadParam { reason: "x".into() }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("load: "));
        let e: CoreError = ChannelError::BadConfig { reason: "y".into() }.into();
        assert!(e.to_string().starts_with("channel: "));
    }

    #[test]
    fn every_layer_converts_with_a_stable_prefix() {
        use std::error::Error;
        let sim: CoreError = SimError::EventBudgetExhausted { budget: 1 }.into();
        assert!(sim.to_string().starts_with("sim: "), "{sim}");
        assert!(sim.source().is_some());
        let dram: CoreError = DramError::BadBank { bank: 9, banks: 4 }.into();
        assert!(dram.to_string().starts_with("dram: "), "{dram}");
        assert!(dram.source().is_some());
        let ctrl: CoreError = CtrlError::EmptyRequest.into();
        assert!(ctrl.to_string().starts_with("ctrl: "), "{ctrl}");
        assert!(ctrl.source().is_some());
    }
}
