//! Batch execution strategy for experiment grids.
//!
//! The figure builders in [`crate::figures`] run dozens of independent
//! simulations; how those runs are scheduled (serially, on a thread pool,
//! against a result cache…) is a policy the caller owns. [`BatchRunner`]
//! is that seam: `mcm-core` ships the obvious [`SerialRunner`], and
//! `mcm-sweep` plugs its parallel, cached engine into the same trait
//! without `mcm-core` depending on it.

use crate::error::CoreError;
use crate::experiment::{Experiment, FrameResult};

/// Executes a batch of independent experiments, returning one result per
/// experiment **in input order** regardless of execution order.
pub trait BatchRunner: Sync {
    /// Runs every experiment and collects results in input order.
    fn run_batch(&self, experiments: &[Experiment]) -> Vec<Result<FrameResult, CoreError>>;
}

/// The trivial runner: one experiment after the other on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialRunner;

impl BatchRunner for SerialRunner {
    fn run_batch(&self, experiments: &[Experiment]) -> Vec<Result<FrameResult, CoreError>> {
        experiments.iter().map(run_isolated).collect()
    }
}

/// Runs one experiment with panic isolation: a panicking model turns into
/// [`CoreError::Panicked`] instead of unwinding into the caller, so one bad
/// grid point cannot kill a whole batch.
pub fn run_isolated(exp: &Experiment) -> Result<FrameResult, CoreError> {
    let run = || {
        exp.run_with(&crate::RunOptions::default())
            .and_then(|o| o.try_into_frame())
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => Err(CoreError::Panicked {
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    #[test]
    fn serial_runner_matches_direct_runs() {
        let mk = |ch| {
            let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, ch, 400);
            e.op_limit = Some(2_000);
            e
        };
        let exps = vec![mk(1), mk(2)];
        let batch = SerialRunner.run_batch(&exps);
        for (exp, got) in exps.iter().zip(&batch) {
            let direct = exp
                .run_with(&crate::RunOptions::default())
                .unwrap()
                .into_frame()
                .unwrap();
            assert_eq!(direct.access_time, got.as_ref().unwrap().access_time);
        }
    }

    #[test]
    fn panics_become_typed_errors() {
        let before = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log clean
        let result = std::panic::catch_unwind(|| {
            // A panicking closure stands in for a panicking model.
            match std::panic::catch_unwind(|| panic!("boom")) {
                Ok(()) => unreachable!(),
                Err(p) => CoreError::Panicked {
                    message: panic_message(p.as_ref()),
                },
            }
        });
        std::panic::set_hook(before);
        let err = result.unwrap();
        assert_eq!(err.to_string(), "experiment panicked: boom");
    }
}
