//! Per-stage profiling: where the frame's memory time actually goes.
//!
//! Table I says how many bits each Fig. 1 stage moves; this module measures
//! how much *memory time* each stage costs on a concrete configuration —
//! the two differ because stages have different read/write mixes (bus
//! turnarounds), locality (row hits) and buffer placement.

use mcm_channel::{MasterTransaction, MemorySubsystem};
use mcm_ctrl::AccessOp;
use mcm_load::{LayoutOptions, Stage};
use mcm_sim::SimTime;

use crate::error::CoreError;
use crate::experiment::Experiment;

/// One stage's share of the frame.
#[derive(Debug, Clone, Copy)]
pub struct StageProfile {
    /// The stage.
    pub stage: Stage,
    /// Bytes the stage moved.
    pub bytes: u64,
    /// Memory time attributable to the stage (completion-to-completion).
    pub time: SimTime,
}

impl StageProfile {
    /// The stage's achieved bandwidth, bytes per second.
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        let s = self.time.as_s_f64();
        if s == 0.0 {
            0.0
        } else {
            self.bytes as f64 / s
        }
    }
}

/// Profile of one simulated frame.
#[derive(Debug, Clone)]
pub struct FrameProfile {
    /// Per-stage shares, in pipeline order (stages that moved no bytes are
    /// omitted).
    pub stages: Vec<StageProfile>,
    /// Total frame access time.
    pub total: SimTime,
}

impl FrameProfile {
    /// The stage that consumed the most memory time.
    pub fn bottleneck(&self) -> Option<&StageProfile> {
        self.stages.iter().max_by_key(|s| s.time)
    }

    /// Renders the profile as an aligned text table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("  stage                  |    bytes [MB] | time [ms] |  GB/s | share\n");
        out.push_str(&format!("  {}\n", "-".repeat(68)));
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<22} | {:>13.2} | {:>9.3} | {:>5.1} | {:>4.1}%\n",
                s.stage.label(),
                s.bytes as f64 / 1e6,
                s.time.as_ms_f64(),
                s.bandwidth_bytes_per_s() / 1e9,
                100.0 * s.time.as_ps() as f64 / self.total.as_ps().max(1) as f64,
            ));
        }
        out.push_str(&format!(
            "  {:<22} | {:>13.2} | {:>9.3} |\n",
            "total",
            self.stages.iter().map(|s| s.bytes).sum::<u64>() as f64 / 1e6,
            self.total.as_ms_f64()
        ));
        out
    }
}

/// Runs one frame of `exp`'s workload and attributes memory time to
/// pipeline stages. Multi-tenant workloads interleave tenants, so a stage's
/// time there aggregates every tenant's share of that stage.
pub fn run_profiled(exp: &Experiment) -> Result<FrameProfile, CoreError> {
    let mut memory = MemorySubsystem::new(&exp.memory)?;
    let geometry = exp.memory.controller.cluster.geometry;
    let layout_opts = LayoutOptions::bank_staggered(
        memory.capacity_bytes(),
        geometry.page_bytes() as u64,
        memory.channels(),
        geometry.banks,
    );
    let model = exp.model();
    let mut traffic = model.traffic(&layout_opts, exp.chunk.bytes(memory.channels()), 0, &[])?;

    let clock = memory.clock();
    let mut stages: Vec<StageProfile> = Vec::new();
    let mut current: Option<Stage> = None;
    let mut stage_bytes = 0u64;
    let mut stage_started = SimTime::ZERO; // completion watermark at entry
    let mut last_done = SimTime::ZERO;
    let mut ops = 0u64;

    loop {
        // `current_stage` reflects the stage the iterator will draw from
        // *next*, so sample it before pulling the op.
        let stage_before = traffic.current_stage();
        let Some(op) = traffic.next() else { break };
        if let Some(limit) = exp.op_limit {
            if ops >= limit {
                break;
            }
        }
        ops += 1;
        let Some(stage) = stage_before else {
            // The traffic iterator only yields ops inside a stage.
            break;
        };
        if current != Some(stage) {
            if let Some(prev) = current {
                stages.push(StageProfile {
                    stage: prev,
                    bytes: stage_bytes,
                    time: last_done.saturating_sub(stage_started),
                });
            }
            current = Some(stage);
            stage_bytes = 0;
            stage_started = last_done;
        }
        let res = memory.submit(MasterTransaction {
            op: if op.write {
                AccessOp::Write
            } else {
                AccessOp::Read
            },
            addr: op.addr,
            len: op.len as u64,
            arrival: 0,
        })?;
        stage_bytes += op.len as u64;
        last_done = last_done.max(clock.time_of_cycles(res.done_cycle));
    }
    if let Some(prev) = current {
        stages.push(StageProfile {
            stage: prev,
            bytes: stage_bytes,
            time: last_done.saturating_sub(stage_started),
        });
    }
    Ok(FrameProfile {
        stages,
        total: last_done,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    #[test]
    fn profile_covers_the_frame_and_finds_the_encoder() {
        let exp = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        let p = run_profiled(&exp).unwrap();
        // Stage times partition the total (no gaps: stages are processed
        // back-to-back).
        let sum: u64 = p.stages.iter().map(|s| s.time.as_ps()).sum();
        let diff = (sum as i64 - p.total.as_ps() as i64).unsigned_abs();
        assert!(diff < p.total.as_ps() / 100, "{sum} vs {}", p.total.as_ps());
        // Bytes match Table I.
        let bytes: u64 = p.stages.iter().map(|s| s.bytes).sum();
        let table = mcm_load::UseCase::hd(HdOperatingPoint::Hd720p30)
            .table_row()
            .bits_per_frame()
            / 8;
        assert!(bytes.abs_diff(table) < 64);
        // "The single most memory intensive part is the video encoding."
        assert_eq!(p.bottleneck().unwrap().stage, Stage::VideoEncoder);
        // Render sanity.
        let text = p.render();
        assert!(text.contains("Video encoder"));
        assert!(text.contains("total"));
    }

    #[test]
    fn stage_bandwidths_reflect_their_mix() {
        let exp = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
        let p = run_profiled(&exp).unwrap();
        let get = |stage: Stage| {
            p.stages
                .iter()
                .find(|s| s.stage == stage)
                .map(StageProfile::bandwidth_bytes_per_s)
        };
        // The write-only camera sweep outruns the turnaround-heavy
        // preprocess stage.
        let camera = get(Stage::CameraIf).unwrap();
        let preprocess = get(Stage::Preprocess).unwrap();
        assert!(
            camera > preprocess * 1.1,
            "camera {camera:.2e} vs preprocess {preprocess:.2e}"
        );
    }
}
