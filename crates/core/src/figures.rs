//! Data builders and text renderers for every table and figure of the
//! paper's evaluation (Section IV), plus the Section II/III tables.
//!
//! Each `figN_data` function runs the corresponding simulation grid; each
//! `render` produces the same rows/series the paper reports, as text.

use serde::Serialize;

use mcm_load::{HdOperatingPoint, Stage, UseCase};
use mcm_power::XdrReference;

use crate::error::CoreError;
use crate::experiment::{Experiment, FrameResult, RealTimeVerdict};
use crate::runner::{BatchRunner, SerialRunner};

/// The clock frequencies of Fig. 3's x-axis (the DDR2 span the paper
/// restricts the interface clock to).
pub const FIG3_CLOCKS_MHZ: [u64; 6] = [200, 266, 333, 400, 466, 533];

/// The channel counts evaluated throughout Section IV.
pub const CHANNELS: [u32; 4] = [1, 2, 4, 8];

/// The Fig. 4/5 clock frequency.
pub const FIG45_CLOCK_MHZ: u64 = 400;

/// One simulated grid cell, distilled for serialization and rendering.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Whether the configuration could be built and hold the frame buffers.
    pub feasible: bool,
    /// Access time for one frame, ms (when feasible).
    pub access_ms: Option<f64>,
    /// Real-time verdict (when feasible).
    pub verdict: Option<String>,
    /// Average DRAM core power over the frame period, mW.
    pub core_mw: Option<f64>,
    /// Interface power (equation 1), mW.
    pub interface_mw: Option<f64>,
    /// Bus efficiency (achieved / peak bandwidth).
    pub efficiency: Option<f64>,
    /// Why the cell is infeasible, if it is.
    pub infeasible_reason: Option<String>,
    marginal: bool,
    fails: bool,
}

impl Cell {
    /// Distills one run result (e.g. out of a [`BatchRunner`] batch) into a
    /// cell, folding capacity overflows into infeasible cells the way the
    /// paper's figures drop such bars.
    pub fn from_result(result: Result<FrameResult, CoreError>) -> Result<Cell, CoreError> {
        match result {
            Ok(r) => Ok(Cell {
                feasible: true,
                access_ms: Some(r.access_time.as_ms_f64()),
                verdict: Some(r.verdict.to_string()),
                core_mw: Some(r.power.core_mw),
                interface_mw: Some(r.power.interface_mw),
                efficiency: Some(r.efficiency()),
                infeasible_reason: None,
                marginal: r.verdict == RealTimeVerdict::Marginal,
                fails: r.verdict == RealTimeVerdict::Fails,
            }),
            // A 2160p frame simply does not fit in one or two 512 Mb
            // channels; the paper's figures leave such bars out too.
            Err(CoreError::Load(mcm_load::LoadError::LayoutOverflow { needed, capacity })) => {
                Ok(Cell {
                    feasible: false,
                    access_ms: None,
                    verdict: None,
                    core_mw: None,
                    interface_mw: None,
                    efficiency: None,
                    infeasible_reason: Some(format!(
                        "frame buffers need {} MiB, capacity is {} MiB",
                        needed >> 20,
                        capacity >> 20
                    )),
                    marginal: false,
                    fails: true,
                })
            }
            Err(e) => Err(e),
        }
    }

    #[cfg(test)]
    pub(crate) fn synthetic_for_tests(access_ms: f64) -> Cell {
        Cell {
            feasible: true,
            access_ms: Some(access_ms),
            verdict: Some("meets".into()),
            core_mw: Some(100.0),
            interface_mw: Some(4.0),
            efficiency: Some(0.75),
            infeasible_reason: None,
            marginal: false,
            fails: false,
        }
    }

    /// The Fig. 5 bar value: total power, suppressed (None) when the
    /// configuration misses real time with the margin.
    pub fn fig5_power_mw(&self) -> Option<f64> {
        if self.fails {
            return None;
        }
        Some(self.core_mw? + self.interface_mw?)
    }

    /// Whether the cell would carry the paper's MARGINAL annotation.
    pub fn is_marginal(&self) -> bool {
        self.marginal
    }
}

/// Fig. 3: access time vs. interface clock for the 720p30 load.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Data {
    /// Clock frequencies, MHz (columns).
    pub clocks_mhz: Vec<u64>,
    /// Channel counts (rows).
    pub channels: Vec<u32>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Cell>>,
    /// The 30 fps real-time requirement, ms.
    pub realtime_ms: f64,
}

/// Runs the Fig. 3 grid: one 720p30 frame per (channel count, clock).
pub fn fig3_data() -> Result<Fig3Data, CoreError> {
    fig3_data_with(&SerialRunner)
}

/// [`fig3_data`] on a caller-chosen executor (e.g. `mcm-sweep`'s parallel,
/// cached runner). The grid is submitted as one batch in row-major order.
pub fn fig3_data_with(runner: &dyn BatchRunner) -> Result<Fig3Data, CoreError> {
    let experiments: Vec<Experiment> = CHANNELS
        .iter()
        .flat_map(|&ch| {
            FIG3_CLOCKS_MHZ
                .iter()
                .map(move |&clk| Experiment::paper(HdOperatingPoint::Hd720p30, ch, clk))
        })
        .collect();
    let mut results = runner.run_batch(&experiments).into_iter();
    let mut cells = Vec::new();
    for _ in &CHANNELS {
        let mut row = Vec::new();
        for _ in &FIG3_CLOCKS_MHZ {
            let Some(result) = results.next() else {
                return Err(CoreError::BadParam {
                    reason: "figure batch returned fewer results than its grid".into(),
                });
            };
            row.push(Cell::from_result(result)?);
        }
        cells.push(row);
    }
    Ok(Fig3Data {
        clocks_mhz: FIG3_CLOCKS_MHZ.to_vec(),
        channels: CHANNELS.to_vec(),
        cells,
        realtime_ms: 1000.0 / 30.0,
    })
}

/// Renders Fig. 3 as the paper's series (one row per channel count).
pub fn render_fig3(d: &Fig3Data) -> String {
    let mut out = String::new();
    out.push_str(
        "Fig. 3 — Effect of memory clock frequency on memory access time.\n\
         One 720p30 frame encoded (H.264/AVC level 3.1). Access time [ms].\n\n",
    );
    out.push_str("  channels |");
    for clk in &d.clocks_mhz {
        out.push_str(&format!(" {clk:>7}"));
    }
    out.push_str(" MHz\n  ---------+");
    out.push_str(&"-".repeat(8 * d.clocks_mhz.len() + 4));
    out.push('\n');
    for (i, ch) in d.channels.iter().enumerate() {
        out.push_str(&format!("  {ch:>8} |"));
        for cell in &d.cells[i] {
            match cell.access_ms {
                Some(ms) => out.push_str(&format!(" {ms:>7.2}")),
                None => out.push_str("       -"),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\n  Real-time requirement for 30 fps: {:.1} ms",
        d.realtime_ms
    ));
    out.push_str(&format!(
        " (with the 15% data-processing margin: {:.2} ms)\n",
        d.realtime_ms * 0.85
    ));
    out
}

/// Fig. 4 (access time) and Fig. 5 (power) share a grid: all five formats ×
/// all channel counts at 400 MHz.
#[derive(Debug, Clone, Serialize)]
pub struct FormatGridData {
    /// Operating-point labels (columns).
    pub points: Vec<String>,
    /// Channel counts (rows).
    pub channels: Vec<u32>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Cell>>,
}

/// Runs the Fig. 4/Fig. 5 grid at 400 MHz.
pub fn format_grid_data() -> Result<FormatGridData, CoreError> {
    format_grid_data_with(&SerialRunner)
}

/// [`format_grid_data`] on a caller-chosen executor; one batch, row-major.
pub fn format_grid_data_with(runner: &dyn BatchRunner) -> Result<FormatGridData, CoreError> {
    let experiments: Vec<Experiment> = CHANNELS
        .iter()
        .flat_map(|&ch| {
            HdOperatingPoint::ALL
                .iter()
                .map(move |&p| Experiment::paper(p, ch, FIG45_CLOCK_MHZ))
        })
        .collect();
    let mut results = runner.run_batch(&experiments).into_iter();
    let mut cells = Vec::new();
    for _ in &CHANNELS {
        let mut row = Vec::new();
        for _ in HdOperatingPoint::ALL {
            let Some(result) = results.next() else {
                return Err(CoreError::BadParam {
                    reason: "figure batch returned fewer results than its grid".into(),
                });
            };
            row.push(Cell::from_result(result)?);
        }
        cells.push(row);
    }
    Ok(FormatGridData {
        points: HdOperatingPoint::ALL
            .iter()
            .map(|p| p.to_string())
            .collect(),
        channels: CHANNELS.to_vec(),
        cells,
    })
}

/// Renders Fig. 4: access time per format at 400 MHz.
pub fn render_fig4(d: &FormatGridData) -> String {
    let mut out = String::new();
    out.push_str(
        "Fig. 4 — Effect of encoding format on memory access time (400 MHz).\n\
         Access time [ms]; '-' = frame buffers exceed capacity.\n\n",
    );
    out.push_str("  channels |");
    for p in &d.points {
        out.push_str(&format!(" {p:>22}"));
    }
    out.push('\n');
    out.push_str("  ---------+");
    out.push_str(&"-".repeat(23 * d.points.len()));
    out.push('\n');
    for (i, ch) in d.channels.iter().enumerate() {
        out.push_str(&format!("  {ch:>8} |"));
        for cell in &d.cells[i] {
            match (cell.access_ms, &cell.verdict) {
                (Some(ms), Some(v)) => out.push_str(&format!(" {:>13.2} ({:>6})", ms, v)),
                _ => out.push_str(&format!(" {:>22}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str("\n  Real-time requirement: 33.3 ms at 30 fps, 16.7 ms at 60 fps.\n");
    out
}

/// Renders Fig. 5: power per format at 400 MHz, interface power stacked,
/// bars suppressed when real time (with margin) is missed.
pub fn render_fig5(d: &FormatGridData) -> String {
    let mut out = String::new();
    out.push_str(
        "Fig. 5 — Effect of encoding format on memory power consumption (400 MHz).\n\
         Total power [mW] = core + interface (eq. 1). 0 = fails real time\n\
         with the 15% data-processing margin (bar suppressed, as in the paper).\n\n",
    );
    out.push_str("  channels |");
    for p in &d.points {
        out.push_str(&format!(" {p:>22}"));
    }
    out.push('\n');
    out.push_str("  ---------+");
    out.push_str(&"-".repeat(23 * d.points.len()));
    out.push('\n');
    for (i, ch) in d.channels.iter().enumerate() {
        out.push_str(&format!("  {ch:>8} |"));
        for cell in &d.cells[i] {
            let text = match cell.fig5_power_mw() {
                Some(mw) => {
                    let tag = if cell.is_marginal() { " MARGINAL" } else { "" };
                    format!(
                        "{:.0} (if {:.0}){tag}",
                        mw,
                        cell.interface_mw.unwrap_or(0.0)
                    )
                }
                None => "0".to_string(),
            };
            out.push_str(&format!(" {text:>22}"));
        }
        out.push('\n');
    }
    out
}

/// The XDR comparison: the 8-channel 400 MHz subsystem against the Cell BE
/// XDR interface (25.6 GB/s, 5 W).
#[derive(Debug, Clone, Serialize)]
pub struct XdrComparison {
    /// Subsystem peak bandwidth, GB/s.
    pub peak_gbps: f64,
    /// XDR bandwidth, GB/s.
    pub xdr_gbps: f64,
    /// Per-format total power, mW, and its fraction of the XDR 5 W.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs the XDR comparison over all feasible formats at 8 × 400 MHz.
pub fn xdr_data() -> Result<XdrComparison, CoreError> {
    xdr_data_with(&SerialRunner)
}

/// [`xdr_data`] on a caller-chosen executor.
pub fn xdr_data_with(runner: &dyn BatchRunner) -> Result<XdrComparison, CoreError> {
    let xdr = XdrReference::cell_be();
    let experiments: Vec<Experiment> = HdOperatingPoint::ALL
        .iter()
        .map(|&p| Experiment::paper(p, 8, FIG45_CLOCK_MHZ))
        .collect();
    let mut rows = Vec::new();
    let mut peak = 0.0;
    for (p, result) in HdOperatingPoint::ALL
        .iter()
        .zip(runner.run_batch(&experiments))
    {
        let r = result?;
        peak = r.peak_bandwidth_bytes_per_s;
        let mw = r.power.total_mw();
        rows.push((p.to_string(), mw, xdr.power_fraction(mw)));
    }
    Ok(XdrComparison {
        peak_gbps: peak / 1e9,
        xdr_gbps: xdr.bandwidth_bytes_per_s / 1e9,
        rows,
    })
}

/// Renders the XDR comparison paragraph's numbers.
pub fn render_xdr(d: &XdrComparison) -> String {
    let mut out = String::new();
    out.push_str("XDR comparison (Section IV):\n");
    out.push_str(&format!(
        "  8 channels @ 400 MHz: {:.1} GB/s peak vs XDR {:.1} GB/s @ 5 W\n\n",
        d.peak_gbps, d.xdr_gbps
    ));
    for (label, mw, frac) in &d.rows {
        out.push_str(&format!(
            "  {label:>22}: {mw:>6.0} mW = {:>4.1}% of XDR\n",
            frac * 100.0
        ));
    }
    out
}

/// Table I: per-stage memory traffic for the five operating points.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Data {
    /// Column labels.
    pub points: Vec<String>,
    /// Stage rows: (label, megabits per frame per point).
    pub stage_mbits: Vec<(String, Vec<f64>)>,
    /// Image-processing subtotal per point, Mb.
    pub image_total_mbits: Vec<f64>,
    /// Video-coding subtotal per point, Mb.
    pub coding_total_mbits: Vec<f64>,
    /// Total load per point, MB/s.
    pub total_mb_per_s: Vec<f64>,
}

/// Computes Table I (pure arithmetic — no simulation).
pub fn table1_data() -> Table1Data {
    let cases: Vec<UseCase> = HdOperatingPoint::ALL
        .iter()
        .map(|&p| UseCase::hd(p))
        .collect();
    let mut stage_mbits: Vec<(String, Vec<f64>)> = Stage::ALL
        .iter()
        .map(|s| (s.label().to_string(), Vec::new()))
        .collect();
    let mut image = Vec::new();
    let mut coding = Vec::new();
    let mut mbs = Vec::new();
    for uc in &cases {
        for (i, t) in uc.stage_traffic().iter().enumerate() {
            stage_mbits[i].1.push(t.total_mbits());
        }
        let row = uc.table_row();
        image.push(row.image_bits_per_frame as f64 / 1e6);
        coding.push(row.coding_bits_per_frame as f64 / 1e6);
        mbs.push(row.mbytes_per_second());
    }
    Table1Data {
        points: HdOperatingPoint::ALL
            .iter()
            .map(|p| p.to_string())
            .collect(),
        stage_mbits,
        image_total_mbits: image,
        coding_total_mbits: coding,
        total_mb_per_s: mbs,
    }
}

/// Renders Table I in the paper's layout.
pub fn render_table1(d: &Table1Data) -> String {
    let mut out = String::new();
    out.push_str(
        "Table I — Memory bandwidth requirement for the stages of the video\n\
         recording use case (bits per frame, in Mb; totals in MB/s).\n\n",
    );
    out.push_str(&format!("  {:<24}", "H.264/AVC level / format"));
    for p in &d.points {
        out.push_str(&format!(" {p:>22}"));
    }
    out.push('\n');
    for (label, vals) in &d.stage_mbits {
        out.push_str(&format!("  {label:<24}"));
        for v in vals {
            out.push_str(&format!(" {v:>22.2}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("  {:<24}", "Image proc. total"));
    for v in &d.image_total_mbits {
        out.push_str(&format!(" {v:>22.2}"));
    }
    out.push('\n');
    out.push_str(&format!("  {:<24}", "Video coding total"));
    for v in &d.coding_total_mbits {
        out.push_str(&format!(" {v:>22.2}"));
    }
    out.push('\n');
    out.push_str(&format!("  {:<24}", "Data mem. load [MB/s]"));
    for v in &d.total_mb_per_s {
        out.push_str(&format!(" {v:>22.0}"));
    }
    out.push('\n');
    out
}

/// Fig. 3 as CSV (`clock_mhz,channels,access_ms,verdict`), for plotting.
pub fn fig3_csv(d: &Fig3Data) -> String {
    let mut out = String::from("clock_mhz,channels,access_ms,verdict\n");
    for (ri, ch) in d.channels.iter().enumerate() {
        for (ci, clk) in d.clocks_mhz.iter().enumerate() {
            let cell = &d.cells[ri][ci];
            out.push_str(&format!(
                "{clk},{ch},{},{}\n",
                cell.access_ms.map_or(String::new(), |v| format!("{v:.4}")),
                cell.verdict.as_deref().unwrap_or("infeasible"),
            ));
        }
    }
    out
}

/// The Fig. 4/5 grid as CSV
/// (`format,channels,access_ms,core_mw,interface_mw,verdict`).
pub fn format_grid_csv(d: &FormatGridData) -> String {
    let mut out = String::from("format,channels,access_ms,core_mw,interface_mw,verdict\n");
    for (ri, ch) in d.channels.iter().enumerate() {
        for (ci, point) in d.points.iter().enumerate() {
            let cell = &d.cells[ri][ci];
            out.push_str(&format!(
                "{point},{ch},{},{},{},{}\n",
                cell.access_ms.map_or(String::new(), |v| format!("{v:.4}")),
                cell.core_mw.map_or(String::new(), |v| format!("{v:.2}")),
                cell.interface_mw
                    .map_or(String::new(), |v| format!("{v:.2}")),
                cell.verdict.as_deref().unwrap_or("infeasible"),
            ));
        }
    }
    out
}

/// Table I as CSV (`stage,<one column per operating point>` in Mb/frame).
pub fn table1_csv(d: &Table1Data) -> String {
    let mut out = String::from("stage");
    for p in &d.points {
        out.push_str(&format!(",{p}"));
    }
    out.push('\n');
    for (label, vals) in &d.stage_mbits {
        out.push_str(label);
        for v in vals {
            out.push_str(&format!(",{v:.3}"));
        }
        out.push('\n');
    }
    out.push_str("total_mb_per_s");
    for v in &d.total_mb_per_s {
        out.push_str(&format!(",{v:.1}"));
    }
    out.push('\n');
    out
}

/// Renders Table II: the memory mapping over channels.
pub fn render_table2(channels: u32) -> String {
    let map = match mcm_channel::InterleaveMap::paper(channels) {
        Ok(m) => m,
        Err(e) => return format!("Table II: {e}\n"),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "Table II — Memory mapping over {channels} channels (16-byte granules).\n\n  "
    ));
    let g = map.granule_bytes();
    for i in 0..(2 * channels as u64) {
        let (ch, _) = map.split(i * g);
        out.push_str(&format!("[{}..{}) -> BC{ch}  ", i * g, (i + 1) * g));
        if (i + 1) % 4 == 0 {
            out.push_str("\n  ");
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Grid tests run one quick cell each; full grids are exercised by the
    // bench harness and the integration suite (release mode).

    #[test]
    fn cell_from_infeasible_config_reports_reason() {
        // 2160p in one 64 MiB channel.
        let exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 1, 400);
        let cell = Cell::from_result(
            exp.run_with(&crate::RunOptions::default())
                .map(|o| o.into_frame().expect("single-frame outcome")),
        )
        .unwrap();
        assert!(!cell.feasible);
        assert_eq!(cell.fig5_power_mw(), None);
        assert!(cell.infeasible_reason.unwrap().contains("MiB"));
    }

    #[test]
    fn cell_from_quick_run() {
        let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        exp.op_limit = Some(20_000);
        let cell = Cell::from_result(
            exp.run_with(&crate::RunOptions::default())
                .map(|o| o.into_frame().expect("single-frame outcome")),
        )
        .unwrap();
        assert!(cell.feasible);
        assert!(cell.access_ms.unwrap() > 0.0);
        assert!(cell.fig5_power_mw().is_some());
    }

    #[test]
    fn table1_matches_use_case_totals() {
        let d = table1_data();
        assert_eq!(d.points.len(), 5);
        assert_eq!(d.stage_mbits.len(), 11);
        // 720p30 ≈ 1.9 GB/s; 1080p60 ≈ 8.6 GB/s (paper's prose anchors).
        assert!((1_700.0..2_100.0).contains(&d.total_mb_per_s[0]));
        assert!((7_700.0..9_200.0).contains(&d.total_mb_per_s[3]));
        let rendered = render_table1(&d);
        assert!(rendered.contains("Video encoder"));
        assert!(rendered.contains("MB/s"));
    }

    #[test]
    fn fig3_and_fig4_render_synthetic_grids() {
        let d = Fig3Data {
            clocks_mhz: vec![200, 400],
            channels: vec![1, 2],
            cells: vec![
                vec![
                    Cell::synthetic_for_tests(46.9),
                    Cell::synthetic_for_tests(26.2),
                ],
                vec![
                    Cell::synthetic_for_tests(23.4),
                    Cell::synthetic_for_tests(13.1),
                ],
            ],
            realtime_ms: 33.3,
        };
        let text = render_fig3(&d);
        assert!(text.contains("46.88") || text.contains("46.90"), "{text}");
        assert!(text.contains("Real-time requirement"));
        assert!(text.contains("200"));

        let grid = FormatGridData {
            points: vec!["720p30".into(), "1080p30".into()],
            channels: vec![1, 2],
            cells: vec![
                vec![
                    Cell::synthetic_for_tests(26.2),
                    Cell::synthetic_for_tests(56.9),
                ],
                vec![
                    Cell::synthetic_for_tests(13.1),
                    Cell::synthetic_for_tests(28.5),
                ],
            ],
        };
        let f4 = render_fig4(&grid);
        assert!(f4.contains("720p30") && f4.contains("56.90"), "{f4}");
        let f5 = render_fig5(&grid);
        assert!(f5.contains("104")); // synthetic 100 core + 4 interface
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let t1 = table1_data();
        let csv = table1_csv(&t1);
        let lines: Vec<&str> = csv.lines().collect();
        let cols = lines[0].split(',').count();
        assert_eq!(cols, 6); // stage + 5 points
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
        assert!(csv.contains("Video encoder"));

        let d = Fig3Data {
            clocks_mhz: vec![200, 400],
            channels: vec![1, 2],
            cells: vec![
                vec![
                    Cell::synthetic_for_tests(46.9),
                    Cell::synthetic_for_tests(26.2),
                ],
                vec![
                    Cell::synthetic_for_tests(23.4),
                    Cell::synthetic_for_tests(13.1),
                ],
            ],
            realtime_ms: 33.3,
        };
        let csv = fig3_csv(&d);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("400,1,26.2000,meets"));
    }

    #[test]
    fn table2_renders_rotation() {
        let t = render_table2(4);
        assert!(t.contains("[0..16) -> BC0"));
        assert!(t.contains("[16..32) -> BC1"));
        assert!(t.contains("[64..80) -> BC0"));
    }

    #[test]
    fn xdr_render_shape() {
        // Use the real XDR math on fabricated rows to keep the test quick.
        let d = XdrComparison {
            peak_gbps: 25.6,
            xdr_gbps: 25.6,
            rows: vec![("720p".into(), 205.0, 0.041)],
        };
        let s = render_xdr(&d);
        assert!(s.contains("4.1% of XDR"));
    }
}
